//! Field-experiment replay: the paper's 5-charger / 8-node testbed,
//! executed under physical noise (detours, speed jitter, WPT losses).
//!
//! Prints planned vs realized comprehensive cost per trial and the
//! aggregate CCSA-vs-NCP saving — the reproduction of the paper's field
//! headline ("CCSA outperforms the noncooperation algorithm by 42.9% ...
//! on average").
//!
//! ```text
//! cargo run --release --example field_testbed
//! ```

use ccs_repro::prelude::*;

fn main() {
    let trials = 10u64;
    let noise = NoiseModel::field();
    println!(
        "field testbed: 8 nodes, 5 chargers, {} noisy trials\n",
        trials
    );
    println!(
        "{:>5} {:>13} {:>13} {:>13} {:>13} {:>10} {:>10}",
        "trial", "ccsa plan $", "ccsa real $", "ncp plan $", "ncp real $", "wait s", "makespan s"
    );

    let mut coop_total = Cost::ZERO;
    let mut solo_total = Cost::ZERO;
    for trial in 0..trials {
        let problem = field_problem(trial);
        let coop = ccsa(&problem, &EqualShare, CcsaOptions::default());
        let solo = noncooperation(&problem, &EqualShare);

        let coop_run = execute(&problem, &coop, &EqualShare, &noise, trial);
        let solo_run = execute(&problem, &solo, &EqualShare, &noise, trial);
        coop_total += coop_run.total_cost();
        solo_total += solo_run.total_cost();

        println!(
            "{:>5} {:>13.2} {:>13.2} {:>13.2} {:>13.2} {:>10.1} {:>10.1}",
            trial,
            coop.total_cost().value(),
            coop_run.total_cost().value(),
            solo.total_cost().value(),
            solo_run.total_cost().value(),
            coop_run.average_wait().value(),
            coop_run.makespan.value(),
        );
    }

    println!(
        "\naverage realized comprehensive cost: CCSA {:.2} $, NCP {:.2} $",
        (coop_total / trials as f64).value(),
        (solo_total / trials as f64).value(),
    );
    println!(
        "field saving of CCSA over noncooperation: {:.1}% (paper reports 42.9%)",
        saving_percent(coop_total, solo_total)
    );
}
