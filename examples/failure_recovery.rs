//! Closed-loop failure recovery: deliver the service, don't write it off.
//!
//! Replays the paper's 5-charger / 8-node field testbed under a harsh
//! failure model (20% charger breakdowns, 10% device no-shows) and compares
//! the write-off baseline against the recovery loop: unserved devices are
//! re-planned with the same algorithm from wherever they ended up, up to 3
//! extra rounds, then degraded to dedicated solo dispatches — so every
//! device is served, at a visible price.
//!
//! ```text
//! cargo run --release --example failure_recovery
//! ```

use ccs_repro::prelude::*;

fn main() {
    let trials = 10u64;
    let noise = NoiseModel::field();
    let failures = FailureModel {
        charger_breakdown_prob: 0.2,
        device_no_show_prob: 0.1,
    };
    let config = RecoveryConfig {
        max_rounds: 3,
        degrade: true,
    };
    println!(
        "failure recovery: 8 nodes, 5 chargers, breakdown 20%, no-show 10%, {trials} trials\n"
    );
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>12} {:>7} {:>9}",
        "trial", "off served", "on served", "off $", "on $", "rounds", "degraded"
    );

    let mut off_served = 0usize;
    let mut on_served = 0usize;
    let mut devices = 0usize;
    let mut off_total = Cost::ZERO;
    let mut on_total = Cost::ZERO;
    for trial in 0..trials {
        let problem = field_problem(trial);
        let plan = ccsa(&problem, &EqualShare, CcsaOptions::default());

        // Baseline: one faulty replay, losses written off.
        let off = execute_with_failures(&problem, &plan, &EqualShare, &noise, &failures, trial);
        // Recovery: same replay as round 0, then close the loop.
        let on = recover(
            &problem,
            &plan,
            Policy::Ccsa(CcsaOptions::default()),
            &EqualShare,
            &noise,
            &failures,
            trial,
            &config,
        );

        let n = problem.num_devices();
        let off_n = off.served.iter().filter(|s| **s).count();
        let on_n = on.served.iter().filter(|s| **s).count();
        off_served += off_n;
        on_served += on_n;
        devices += n;
        off_total += off.total_cost();
        on_total += on.total_cost();
        println!(
            "{:>5} {:>9}/{} {:>9}/{} {:>12.2} {:>12.2} {:>7} {:>9}",
            trial,
            off_n,
            n,
            on_n,
            n,
            off.total_cost().value(),
            on.total_cost().value(),
            on.recovery_rounds(),
            if on.degraded { "yes" } else { "no" },
        );
    }

    let premium = (on_total.value() / off_total.value() - 1.0) * 100.0;
    println!(
        "\nwrite-off serves {off_served}/{devices} devices for {:.2} $; \
         recovery serves {on_served}/{devices} for {:.2} $ (+{premium:.1}%)",
        off_total.value(),
        on_total.value(),
    );
    println!("every unserved device is a broken service promise — recovery keeps all of them.");
}
