//! Large-scale scheduling: CCSGA's coalition-formation dynamics against
//! CCSA's greedy approximation as the network grows.
//!
//! Reproduces the paper's scalability argument — "CCSGA is much faster
//! than the approximation algorithm and is more suitable for large-scale
//! cooperative charging scheduling" — by timing both on the same growing
//! instances and showing CCSGA's cost stays competitive.
//!
//! ```text
//! cargo run --release --example large_scale_game
//! ```

use ccs_repro::prelude::*;
use std::time::Instant;

fn main() {
    println!(
        "{:>6} {:>12} {:>12} {:>11} {:>11} {:>9} {:>9} {:>6}",
        "n", "ccsa $", "ccsga $", "ccsa ms", "ccsga ms", "switches", "rounds", "NE?"
    );

    for &n in &[50usize, 100, 200, 400] {
        let scenario = ScenarioGenerator::new(n as u64)
            .devices(n)
            .chargers(n / 10)
            .field_side(500.0)
            .generate();
        let problem = CcsProblem::new(scenario);

        let t0 = Instant::now();
        let greedy = ccsa(&problem, &EqualShare, CcsaOptions::default());
        let ccsa_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let game = ccsga(&problem, &EqualShare, CcsgaOptions::default());
        let ccsga_ms = t1.elapsed().as_secs_f64() * 1e3;

        greedy.validate(&problem).expect("valid ccsa schedule");
        game.schedule
            .validate(&problem)
            .expect("valid ccsga schedule");

        println!(
            "{:>6} {:>12.1} {:>12.1} {:>11.1} {:>11.1} {:>9} {:>9} {:>6}",
            n,
            greedy.total_cost().value(),
            game.schedule.total_cost().value(),
            ccsa_ms,
            ccsga_ms,
            game.switches,
            game.rounds,
            game.nash_stable,
        );
    }

    println!("\n(run with --release; debug-profile timings exaggerate the gap)");
}
