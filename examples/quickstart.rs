//! Quickstart: generate a workload, run every scheduler, compare costs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ccs_repro::prelude::*;

fn main() {
    // A 300 m × 300 m field with 12 rechargeable devices and 4 mobile
    // charging-service providers, deterministic from the seed.
    let scenario = ScenarioGenerator::new(2024)
        .devices(12)
        .chargers(4)
        .generate();
    let problem = CcsProblem::new(scenario);

    println!(
        "CCS instance: {} devices, {} chargers, field {:.0} m square\n",
        problem.num_devices(),
        problem.num_chargers(),
        problem.scenario().field().width(),
    );

    // The paper's schedulers plus both baselines, on the same instance and
    // sharing scheme.
    let sharing = EqualShare;
    let solo = noncooperation(&problem, &sharing);
    let clu = clustering(&problem, &sharing, ClusterOptions::default());
    let greedy = ccsa(&problem, &sharing, CcsaOptions::default());
    let game = ccsga(&problem, &sharing, CcsgaOptions::default());
    let exact = optimal(&problem, &sharing, OptimalOptions::default())
        .expect("12 devices is within the exact solver's budget");

    println!(
        "{:<8} {:>12} {:>10} {:>8} {:>14} {:>12}",
        "algo", "total $", "avg $", "groups", "save vs NCP %", "gap vs OPT %"
    );
    for schedule in [&solo, &clu, &greedy, &game.schedule, &exact] {
        let row = compare(schedule, Some(&solo), Some(&exact));
        println!(
            "{:<8} {:>12.2} {:>10.2} {:>8} {:>14.1} {:>12.1}",
            row.algorithm,
            row.total.value(),
            row.average.value(),
            row.groups,
            row.saving_vs_ncp.unwrap_or(0.0),
            row.gap_vs_opt.unwrap_or(0.0),
        );
    }

    println!(
        "\nCCSGA dynamics: {} switches over {} rounds, converged={}, Nash-stable={}",
        game.switches, game.rounds, game.converged, game.nash_stable
    );

    println!("\nCCSA schedule detail:\n{greedy}");
}
