//! Precision-agriculture scenario: soil-moisture sensors clustered around
//! irrigation pivots buy charging as a service, and we compare how the
//! intragroup cost-sharing schemes split the bills.
//!
//! This is the kind of deployment the paper's introduction motivates:
//! devices are *mobile enough to meet a charger* but every meter costs
//! energy, and a commercial charging operator bills per hire — so whether
//! cooperation is sustainable hinges on the sharing scheme being fair.
//!
//! ```text
//! cargo run --release --example precision_agriculture
//! ```

use ccs_repro::prelude::*;

fn main() {
    // Sensors cluster around 4 irrigation pivots in a 400 m field; the
    // charging operator charges a steep per-dispatch fee, which is what
    // makes group charging economical.
    let scenario = ScenarioGenerator::new(77)
        .devices(24)
        .chargers(6)
        .field_side(400.0)
        .device_placement(Placement::Clustered {
            count: 4,
            sigma: 25.0,
        })
        .base_fee_range(ParamRange::new(35.0, 55.0))
        .demand_range(ParamRange::new(3_000.0, 9_000.0))
        .generate();
    let problem = CcsProblem::new(scenario);

    let solo = noncooperation(&problem, &EqualShare);
    println!(
        "noncooperation total: {:.2} $ across {} solo hires\n",
        solo.total_cost().value(),
        solo.groups().len()
    );

    for scheme in all_schemes() {
        let schedule = ccsa(&problem, scheme.as_ref(), CcsaOptions::default());
        schedule
            .validate(&problem)
            .expect("ccsa produces valid schedules");
        let costs = schedule.device_costs(problem.num_devices());
        let fairness = jain_fairness(&costs);
        let min = costs
            .iter()
            .copied()
            .fold(Cost::new(f64::INFINITY), Cost::min);
        let max = costs.iter().copied().fold(Cost::ZERO, Cost::max);
        println!(
            "{:<14} total {:>9.2} $  saving {:>5.1}%  groups {:>2}  fairness {:.3}  per-device [{:.2}, {:.2}]",
            scheme.name(),
            schedule.total_cost().value(),
            saving_percent(schedule.total_cost(), solo.total_cost()),
            schedule.groups().len(),
            fairness,
            min.value(),
            max.value(),
        );
    }

    // Drill into one group under equal sharing: who pays what, and why no
    // member would rather go solo (individual rationality).
    let schedule = ccsa(&problem, &EqualShare, CcsaOptions::default());
    let biggest = schedule
        .groups()
        .iter()
        .max_by_key(|g| g.members.len())
        .expect("schedule has groups");
    println!(
        "\nlargest group: charger {} at {}, {} members, bill {:.2} $",
        biggest.charger,
        biggest.gathering_point,
        biggest.members.len(),
        biggest.bill.total().value(),
    );
    println!(
        "{:<6} {:>10} {:>10} {:>12} {:>12}",
        "device", "share $", "move $", "combined $", "solo $"
    );
    for (idx, &d) in biggest.members.iter().enumerate() {
        let combined = biggest.member_cost(idx);
        let solo_cost = solo.device_cost(d).expect("ncp schedules everyone");
        println!(
            "{:<6} {:>10.2} {:>10.2} {:>12.2} {:>12.2}",
            d.to_string(),
            biggest.shares[idx].value(),
            biggest.moving[idx].value(),
            combined.value(),
            solo_cost.value(),
        );
        assert!(
            combined <= solo_cost + Cost::new(1e-6),
            "cooperation must be individually rational"
        );
    }
}
