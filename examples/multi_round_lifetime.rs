//! Multi-round operation: charging as a *recurring* service.
//!
//! Simulates a season of operation — sensing drains batteries, devices buy
//! refills whenever they drop below threshold — and compares the cumulative
//! operating expenditure (OPEX) of the three scheduling policies on the
//! exact same consumption sequence.
//!
//! ```text
//! cargo run --release --example multi_round_lifetime
//! ```

use ccs_repro::prelude::*;

fn main() {
    let scenario = ScenarioGenerator::new(314)
        .devices(24)
        .chargers(6)
        .field_side(250.0)
        .generate();
    let config = LifetimeConfig {
        rounds: 40,
        ..Default::default()
    };
    println!(
        "24 devices, 6 chargers, {} rounds, refill below {:.0}% up to {:.0}%\n",
        config.rounds,
        config.refill_threshold * 100.0,
        config.target_soc * 100.0,
    );

    let policies = [
        Policy::Noncooperative,
        Policy::Ccsa(CcsaOptions::default()),
        Policy::Ccsga(CcsgaOptions::default()),
    ];
    println!(
        "{:<8} {:>12} {:>8} {:>14} {:>14} {:>12}",
        "policy", "OPEX $", "hires", "$/hire", "energy kJ", "survival %"
    );
    let mut baseline = None;
    for policy in policies {
        let report = run_lifetime(
            &scenario,
            &CostParams::default(),
            &EqualShare,
            policy,
            &config,
        );
        println!(
            "{:<8} {:>12.2} {:>8} {:>14.2} {:>14.1} {:>12.1}",
            policy.name(),
            report.total_cost.value(),
            report.hires,
            report.total_cost.value() / report.hires.max(1) as f64,
            report.energy_purchased.value() / 1000.0,
            report.survival_rate * 100.0,
        );
        match &baseline {
            None => baseline = Some(report.total_cost),
            Some(ncp) => println!(
                "{:<8} season saving over noncooperation: {:.1}%",
                "",
                saving_percent(report.total_cost, *ncp)
            ),
        }
    }

    // Show the per-round rhythm of the cooperative policy.
    let report = run_lifetime(
        &scenario,
        &CostParams::default(),
        &EqualShare,
        Policy::Ccsa(CcsaOptions::default()),
        &config,
    );
    let busy_rounds = report
        .per_round_cost
        .iter()
        .filter(|c| **c > Cost::ZERO)
        .count();
    println!(
        "\nccsa bought charging in {busy_rounds}/{} rounds; peak round {:.2} $",
        config.rounds,
        report
            .per_round_cost
            .iter()
            .copied()
            .fold(Cost::ZERO, Cost::max)
            .value(),
    );
}
