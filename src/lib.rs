//! # ccs-repro — Cooperative Charging as Service (ICDCS'21), reproduced in Rust
//!
//! Facade over the reproduction stack:
//!
//! * [`ccs_wrsn`] — WRSN world model (units, geometry, energy, WPT,
//!   entities, scenario generation);
//! * [`ccs_submodular`] — submodular optimization toolkit (Fujishige–Wolfe
//!   SFM, Lovász extension, Dinkelbach density search);
//! * [`ccs_coalition`] — coalition-formation game engine;
//! * [`ccs_core`] — the CCS problem, cost model, cost sharing, and the
//!   CCSA / CCSGA / NCP / OPT algorithms;
//! * [`ccs_testbed`] — discrete-event replay of the paper's 5-charger /
//!   8-node field testbed;
//! * [`ccs_telemetry`] — counters, spans, and JSONL run reports shared by
//!   every layer above (disabled by default; the `ccs` CLI's `--report` /
//!   `--trace-json` flags switch it on);
//! * [`ccs_par`] — the deterministic scoped-thread parallel layer the hot
//!   paths fan out over (`CCS_THREADS` env / `--threads` CLI knob; results
//!   are bit-identical at any thread count);
//! * [`ccs_serve`] — the long-running service mode behind `ccs serve`:
//!   JSONL requests in, JSONL responses out, with bounded admission,
//!   per-scenario caching, and panic-proof request handling;
//! * [`ccs_gateway`] — the multi-tenant HTTP front end behind
//!   `ccs gateway`: a vendored HTTP/1.1 shim over `TcpListener`, per-tenant
//!   byte-budgeted caches and rate-limit tiers, scenario-hash-sharded
//!   worker pools, and request batching — plan responses stay
//!   byte-identical to the JSONL daemon's (and to `ccs plan`).
//!
//! # Quickstart
//!
//! ```
//! use ccs_repro::prelude::*;
//!
//! let scenario = ScenarioGenerator::new(7).devices(20).chargers(5).generate();
//! let problem = CcsProblem::new(scenario);
//!
//! let cooperative = ccsa(&problem, &EqualShare, CcsaOptions::default());
//! let baseline = noncooperation(&problem, &EqualShare);
//! let saving = saving_percent(cooperative.total_cost(), baseline.total_cost());
//! assert!(saving >= 0.0, "cooperation never hurts");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use ccs_coalition;
pub use ccs_core;
pub use ccs_gateway;
pub use ccs_par;
pub use ccs_serve;
pub use ccs_submodular;
pub use ccs_telemetry;
pub use ccs_testbed;
pub use ccs_wrsn;

/// One-stop imports for applications built on the stack.
pub mod prelude {
    pub use ccs_coalition::prelude::*;
    pub use ccs_core::prelude::*;
    pub use ccs_submodular::prelude::*;
    pub use ccs_testbed::prelude::*;
    pub use ccs_wrsn::prelude::*;
}
