//! `ccs` — command-line front end of the CCS reproduction stack.
//!
//! ```text
//! ccs gen  --seed 1 --devices 20 --chargers 5 [--field 300] -o scenario.json
//! ccs plan --scenario scenario.json [--algo ccsa|ccsga|ncp|opt]
//!          [--sharing equal|proportional|shapley] [-o schedule.json]
//! ccs replay --scenario scenario.json [--noise ideal|field]
//!            [--breakdown P] [--noshow P] [--seed S]
//!            [--recover R] [--degrade true|false]
//! ccs lifetime --scenario scenario.json [--rounds R] [--policy ccsa|ccsga|ncp]
//!              [--noise ideal|field] [--breakdown P] [--noshow P]
//!              [--recover R] [--degrade true|false]
//! ccs online --scenario scenario.json [--policy ccsga|fcfs] [--sharing S]
//!            [--rate R] [--horizon S] [--slack S]
//!            [--profile poisson|hotspot|burst] [--stream-seed N]
//!            [--battery-cap J] [--ecr-move JPM] [--ecr-charge R] [--json true]
//! ccs serve  [--socket PATH] [--workers N] [--queue-depth N] [--stats-every S]
//!            [--stats-human true] [--metrics-file FILE] [--trace-requests FILE]
//!            [--trace-max-bytes N] [--slow-ms MS] [--max-line-bytes N]
//!            [--cache-mb MB]
//! ccs gateway [--addr HOST:PORT] [--shards N] [--workers-per-shard N]
//!             [--queue-depth N] [--max-body-mb MB] [--batch-max N]
//!             [--cache-mb MB] [--rate R] [--burst B] [--tenants-file FILE]
//!             [--admin-token TOK] [--max-tenants N] [--idle-secs S]
//! ccs stats  --socket PATH [--json true]
//! ```
//!
//! Scenarios are plain JSON (the `ccs-wrsn` serde format), so workloads can
//! be generated once and replayed across machines and algorithms.
//!
//! `plan`, `replay`, and `lifetime` additionally accept `--report FILE`
//! (write a `ccs-telemetry` [`RunReport`](ccs_repro::ccs_telemetry::RunReport)
//! snapshot as JSON) and `--trace-json FILE` (stream telemetry events as
//! JSONL while the run executes). Either flag enables the otherwise-dormant
//! global telemetry registry.
//!
//! Every command accepts `--threads N` to pin the worker count of the
//! deterministic parallel evaluation layer (`ccs-par`); `CCS_THREADS` is
//! the environment equivalent. Schedules are bit-identical at any setting.
//!
//! Human-readable results go to stdout; stderr carries errors and
//! diagnostics only.

use ccs_repro::prelude::*;
use std::collections::HashMap;
use std::fs;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if matches!(command.as_str(), "--help" | "-h" | "help") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let result = parse_flags(rest)
        .and_then(|opts| {
            validate_flags(command, &opts)?;
            Ok(opts)
        })
        .and_then(|opts| {
            // Global knob: worker threads for the parallel evaluation
            // batches (default: CCS_THREADS env, then available
            // parallelism; results are deterministic at any setting, `1`
            // forces the exact serial path).
            let n: usize = get(&opts, "threads", 0)?;
            if n > 0 {
                ccs_repro::ccs_par::set_threads(n);
            }
            match command.as_str() {
                "gen" => cmd_gen(&opts),
                "plan" => cmd_plan(&opts),
                "replay" => cmd_replay(&opts),
                "lifetime" => cmd_lifetime(&opts),
                "online" => cmd_online(&opts),
                "serve" => cmd_serve(&opts),
                "gateway" => cmd_gateway(&opts),
                "stats" => cmd_stats(&opts),
                other => Err(format!("unknown command '{other}'")),
            }
        });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err} (run 'ccs help' for usage)");
            ExitCode::FAILURE
        }
    }
}

/// The flags each command understands (besides the global `--threads`).
/// Anything else is a hard error — a typo like `--sede` must not silently
/// fall back to a default.
fn validate_flags(command: &str, opts: &Flags) -> Result<(), String> {
    const TELEMETRY: [&str; 2] = ["report", "trace-json"];
    let allowed: &[&str] = match command {
        "gen" => &["seed", "devices", "chargers", "field", "o"],
        "plan" => &["scenario", "algo", "sharing", "o"],
        "replay" => &[
            "scenario",
            "sharing",
            "noise",
            "breakdown",
            "noshow",
            "seed",
            "recover",
            "degrade",
        ],
        "lifetime" => &[
            "scenario",
            "sharing",
            "rounds",
            "policy",
            "seed",
            "noise",
            "breakdown",
            "noshow",
            "recover",
            "degrade",
        ],
        "online" => &[
            "scenario",
            "policy",
            "sharing",
            "rate",
            "horizon",
            "slack",
            "profile",
            "stream-seed",
            "battery-cap",
            "ecr-move",
            "ecr-charge",
            "json",
        ],
        "serve" => &[
            "socket",
            "workers",
            "queue-depth",
            "stats-every",
            "stats-human",
            "metrics-file",
            "trace-requests",
            "trace-max-bytes",
            "slow-ms",
            "max-line-bytes",
            "cache-mb",
        ],
        "gateway" => &[
            "addr",
            "shards",
            "workers-per-shard",
            "queue-depth",
            "max-body-mb",
            "batch-max",
            "cache-mb",
            "rate",
            "burst",
            "tenants-file",
            "admin-token",
            "max-tenants",
            "idle-secs",
        ],
        "stats" => &["socket", "json"],
        // Unknown commands fail later with their own message; don't let a
        // flag complaint mask it.
        _ => return Ok(()),
    };
    let telemetry_ok = command != "gen";
    for key in opts.keys() {
        let known = key == "threads"
            || allowed.contains(&key.as_str())
            || (telemetry_ok && TELEMETRY.contains(&key.as_str()));
        if !known {
            return Err(format!("unknown flag '--{key}' for 'ccs {command}'"));
        }
    }
    Ok(())
}

const USAGE: &str = "\
usage: ccs <command> [flags]

commands:
  gen       generate a scenario        --seed N --devices N --chargers N [--field M] [-o FILE]
  plan      schedule a scenario        --scenario FILE [--algo ccsa|ccsga|ncp|opt] [--sharing S] [-o FILE]
  replay    execute on the testbed     --scenario FILE [--noise ideal|field] [--breakdown P] [--noshow P] [--seed N]
  lifetime  multi-round operation      --scenario FILE [--rounds N] [--policy ccsa|ccsga|ncp] [--seed N]
  online    streaming request service  --scenario FILE [--policy ccsga|fcfs] [--rate R] [--horizon S]
  serve     long-running JSONL daemon  [--socket PATH] [--workers N] [--queue-depth N] [--stats-every SECS]
  gateway   multi-tenant HTTP service  [--addr HOST:PORT] [--shards N] [--tenants-file FILE] [--rate R]
  stats     query a running daemon     --socket PATH [--json true]

service mode (serve):
  reads one JSON request per line from stdin (or connections on --socket),
  writes one JSON response per line; `{\"cmd\":\"shutdown\"}` or EOF drains
  in-flight work and exits. --workers 0 = auto, --stats-every 0 = silent.
  --max-line-bytes N caps one request line (default 4 MiB); --cache-mb MB
  caps the plan/scenario cache byte budget (default 256 MiB).

gateway mode (gateway):
  HTTP/1.1 on a TcpListener: POST /v1/plan (one daemon request body, the
  response body is byte-identical to the daemon's response line),
  POST /v1/batch ({\"requests\":[...]} grouped by scenario hash so each
  group amortizes one tables build), GET /v1/stats, GET /healthz, and
  POST /v1/shutdown (drain and exit; requires --admin-token or the
  tenants file's \"admin_token\" when set, else any configured bearer
  token — open only when no credentials are configured at all).
  Tenancy: `Authorization: Bearer` tokens map to named tenants via
  --tenants-file ({\"tenants\":[{\"name\",\"token\",\"rate\",\"burst\"}]},
  names reserved from X-Tenant); the X-Tenant header self-declares a
  tenant on the default tier (--rate/--burst, rate 0 = unlimited), and
  requests with neither header share the 'default' tenant on that same
  tier. Every tenant gets a private --cache-mb cache and its own token
  bucket. --shards 0 = auto; --max-tenants caps distinct tenants
  (default 256); --idle-secs drops silent keep-alive connections.

observability (serve):
  --stats-every S       period of the stats line on stderr (JSON snapshot)
  --stats-human BOOL    render the stats line as prose instead of JSON
  --metrics-file FILE   atomically rewrite FILE with Prometheus text metrics
                        every stats period and at drain
  --trace-requests FILE append one JSONL trace line per request (req_id,
                        phase breakdown, status); size-capped with rotation
  --trace-max-bytes N   active trace file cap before rotation (default 16 MiB)
  --slow-ms MS          count+log requests slower end-to-end than MS
  `{\"cmd\":\"stats\"}` returns the live snapshot; `ccs stats --socket PATH`
  pretty-prints it.

online mode (online):
  a seeded request stream (arrivals + deadlines) over the scenario's
  devices, served event-by-event with finite charger tanks and depot
  refills. --rate R requests/s over --horizon S seconds, each with
  --slack S seconds of deadline; --profile hotspot concentrates traffic
  on 20% of devices, --profile burst pulses the rate 8x every 60 s.
  --policy ccsga re-plans incrementally via the coalition game; fcfs is
  the first-come-first-served baseline. --json true prints the metrics
  as machine-readable JSON (used by CI).

failures and recovery (replay, lifetime):
  --breakdown P      probability a hired charger breaks down per leg
  --noshow P         probability a device turns around en route
  --recover R        closed-loop recovery: re-plan unserved devices up to
                     R extra rounds (0 = off, report losses only)
  --degrade BOOL     after R rounds, degrade stragglers to dedicated solo
                     dispatches so everyone is served (default true)

telemetry (plan, replay, lifetime):
  --report FILE      write a JSON RunReport (counters, timers, span timings)
  --trace-json FILE  stream telemetry events to FILE as JSON Lines

performance (all commands):
  --threads N        worker threads for parallel evaluation batches
                     (default: CCS_THREADS env, then available cores;
                     1 = exact serial path; results are identical at any N)";

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let key = flag
            .strip_prefix("--")
            .or_else(|| flag.strip_prefix('-'))
            .ok_or_else(|| format!("expected a flag, got '{flag}'"))?;
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
    }
    Ok(flags)
}

fn get<T: std::str::FromStr>(opts: &Flags, key: &str, default: T) -> Result<T, String> {
    match opts.get(key) {
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid value '{raw}' for --{key}")),
        None => Ok(default),
    }
}

fn load_scenario(opts: &Flags) -> Result<Scenario, String> {
    let path = opts
        .get("scenario")
        .ok_or("missing --scenario FILE".to_string())?;
    let json = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| format!("parsing {path}: {e}"))
}

/// Arms the global telemetry registry when `--report` or `--trace-json` is
/// present. Returns the `--report` path so the command can snapshot at exit
/// via [`write_report`].
fn telemetry_setup(opts: &Flags) -> Result<Option<String>, String> {
    let report = opts.get("report").cloned();
    let trace = opts.get("trace-json");
    if report.is_none() && trace.is_none() {
        return Ok(None);
    }
    let registry = ccs_repro::ccs_telemetry::global();
    if let Some(path) = trace {
        let sink = ccs_repro::ccs_telemetry::sink::EventSink::create(path)
            .map_err(|e| format!("creating {path}: {e}"))?;
        registry.set_sink(sink);
    }
    registry.enable();
    Ok(report)
}

/// Writes the global registry's [`RunReport`](ccs_repro::ccs_telemetry::RunReport)
/// snapshot to `path` as pretty JSON.
fn write_report(path: &str) -> Result<(), String> {
    let report = ccs_repro::ccs_telemetry::global().report();
    let json = report.to_json_pretty();
    fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
    println!("wrote telemetry report to {path}");
    // The flat self-time profile, for eyes (stderr keeps stdout contracts
    // intact); the same rows are in the report's `profile` array.
    let table = report.profile_table();
    if !table.is_empty() {
        eprint!("self-time profile:\n{table}");
    }
    Ok(())
}

fn sharing_from(opts: &Flags) -> Result<Box<dyn CostSharing>, String> {
    match opts.get("sharing").map(String::as_str).unwrap_or("equal") {
        "equal" => Ok(Box::new(EqualShare)),
        "proportional" => Ok(Box::new(ProportionalShare)),
        "shapley" => Ok(Box::new(ShapleyShare)),
        other => Err(format!("unknown sharing scheme '{other}'")),
    }
}

fn cmd_gen(opts: &Flags) -> Result<(), String> {
    let seed: u64 = get(opts, "seed", 0)?;
    let devices: usize = get(opts, "devices", 20)?;
    let chargers: usize = get(opts, "chargers", 5)?;
    let field: f64 = get(opts, "field", 300.0)?;
    let scenario = ScenarioGenerator::new(seed)
        .devices(devices)
        .chargers(chargers)
        .field_side(field)
        .generate();
    let json = serde_json::to_string_pretty(&scenario).map_err(|e| e.to_string())?;
    match opts.get("o") {
        Some(path) => {
            fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
            println!(
                "wrote scenario ({devices} devices, {chargers} chargers, seed {seed}) to {path}"
            );
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn cmd_plan(opts: &Flags) -> Result<(), String> {
    let report_path = telemetry_setup(opts)?;
    let scenario = load_scenario(opts)?;
    let problem = CcsProblem::new(scenario);
    let sharing = sharing_from(opts)?;
    let algo = opts.get("algo").map(String::as_str).unwrap_or("ccsa");
    let schedule = match algo {
        "ccsa" => ccsa(&problem, sharing.as_ref(), CcsaOptions::default()),
        "ccsga" => {
            let out = ccsga(&problem, sharing.as_ref(), CcsgaOptions::default());
            eprintln!(
                "ccsga: {} switches, {} rounds, Nash-stable: {}",
                out.switches, out.rounds, out.nash_stable
            );
            out.schedule
        }
        "ncp" => noncooperation(&problem, sharing.as_ref()),
        "opt" => optimal(&problem, sharing.as_ref(), OptimalOptions::default())
            .map_err(|e| e.to_string())?,
        other => return Err(format!("unknown algorithm '{other}'")),
    };
    schedule.validate(&problem).map_err(|e| e.to_string())?;
    println!("{schedule}");
    if let Some(path) = opts.get("o") {
        let json = serde_json::to_string_pretty(&schedule).map_err(|e| e.to_string())?;
        fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote schedule to {path}");
    }
    if let Some(path) = report_path {
        write_report(&path)?;
    }
    Ok(())
}

fn noise_from(opts: &Flags) -> Result<NoiseModel, String> {
    match opts.get("noise").map(String::as_str).unwrap_or("field") {
        "ideal" => Ok(NoiseModel::ideal()),
        "field" => Ok(NoiseModel::field()),
        other => Err(format!("unknown noise model '{other}'")),
    }
}

fn failures_from(opts: &Flags) -> Result<FailureModel, String> {
    Ok(FailureModel {
        charger_breakdown_prob: get(opts, "breakdown", 0.0)?,
        device_no_show_prob: get(opts, "noshow", 0.0)?,
    })
}

/// `--recover R [--degrade BOOL]` → a recovery config, or `None` when off.
fn recovery_from(opts: &Flags) -> Result<Option<RecoveryConfig>, String> {
    let max_rounds: usize = get(opts, "recover", 0)?;
    if max_rounds == 0 {
        return Ok(None);
    }
    Ok(Some(RecoveryConfig {
        max_rounds,
        degrade: get(opts, "degrade", true)?,
    }))
}

fn cmd_replay(opts: &Flags) -> Result<(), String> {
    let report_path = telemetry_setup(opts)?;
    let scenario = load_scenario(opts)?;
    let problem = CcsProblem::new(scenario);
    let sharing = sharing_from(opts)?;
    let seed: u64 = get(opts, "seed", 0)?;
    let noise = noise_from(opts)?;
    let failures = failures_from(opts)?;
    let plan = ccsa(&problem, sharing.as_ref(), CcsaOptions::default());
    let run = execute_with_failures(&problem, &plan, sharing.as_ref(), &noise, &failures, seed);
    println!(
        "planned {:.2} $, realized {:.2} $, served {}/{} devices, makespan {:.1} s, mean wait {:.1} s",
        plan.total_cost().value(),
        run.total_cost().value(),
        run.served.iter().filter(|s| **s).count(),
        run.served.len(),
        run.makespan.value(),
        run.average_wait().value(),
    );
    if let Some(config) = recovery_from(opts)? {
        let out = recover(
            &problem,
            &plan,
            Policy::Ccsa(CcsaOptions::default()),
            sharing.as_ref(),
            &noise,
            &failures,
            seed,
            &config,
        );
        for round in &out.rounds[1..] {
            println!(
                "  recovery round {}: {} device(s) re-planned{}, {} now served",
                round.round,
                round.devices.len(),
                if round.mode == RoundMode::Degraded {
                    " (degraded to solo dispatches)"
                } else {
                    ""
                },
                round.execution.served.iter().filter(|s| **s).count(),
            );
        }
        println!(
            "recovered: served {:.0}% of devices in {} extra round(s), total {:.2} $",
            out.served_fraction() * 100.0,
            out.recovery_rounds(),
            out.total_cost().value(),
        );
    }
    if let Some(path) = report_path {
        write_report(&path)?;
    }
    Ok(())
}

fn cmd_lifetime(opts: &Flags) -> Result<(), String> {
    let report_path = telemetry_setup(opts)?;
    let scenario = load_scenario(opts)?;
    let sharing = sharing_from(opts)?;
    let rounds: usize = get(opts, "rounds", 20)?;
    let seed: u64 = get(opts, "seed", 0)?;
    let policy = match opts.get("policy").map(String::as_str).unwrap_or("ccsa") {
        "ccsa" => Policy::Ccsa(CcsaOptions::default()),
        "ccsga" => Policy::Ccsga(CcsgaOptions::default()),
        "ncp" => Policy::Noncooperative,
        other => return Err(format!("unknown policy '{other}'")),
    };
    let config = LifetimeConfig {
        rounds,
        seed,
        ..Default::default()
    };
    // With failure flags the rounds replay on the testbed (unserved devices
    // re-request next round); otherwise planning is trusted verbatim.
    let failures = failures_from(opts)?;
    let recovery = recovery_from(opts)?;
    let faulty =
        failures != FailureModel::none() || recovery.is_some() || opts.contains_key("noise");
    let report = if faulty {
        let noise = noise_from(opts)?;
        let mut driver =
            TestbedDriver::new(&noise, &failures, sharing.as_ref(), policy, recovery, seed);
        run_lifetime_with(
            &scenario,
            &CostParams::default(),
            sharing.as_ref(),
            policy,
            &config,
            &mut driver,
        )
    } else {
        run_lifetime(
            &scenario,
            &CostParams::default(),
            sharing.as_ref(),
            policy,
            &config,
        )
    };
    println!(
        "{} over {rounds} rounds: OPEX {:.2} $, {} hires, {:.1} kJ purchased, survival {:.1}%",
        policy.name(),
        report.total_cost.value(),
        report.hires,
        report.energy_purchased.value() / 1000.0,
        report.survival_rate * 100.0,
    );
    if faulty {
        println!(
            "  testbed delivery: {} refill request(s) went unserved",
            report.unserved_requests
        );
    }
    if let Some(path) = report_path {
        write_report(&path)?;
    }
    Ok(())
}

/// `ccs online` — the event-driven online mode (see `ccs_core::online`):
/// replays a seeded arrival stream over the scenario's devices and prints
/// the service metrics.
fn cmd_online(opts: &Flags) -> Result<(), String> {
    let report_path = telemetry_setup(opts)?;
    let scenario = load_scenario(opts)?;
    let sharing = sharing_from(opts)?;
    let policy_name = opts.get("policy").map(String::as_str).unwrap_or("ccsga");
    let policy = match policy_name {
        "ccsga" => OnlinePolicy::Ccsga(CcsgaOptions {
            worklist: true,
            ..CcsgaOptions::default()
        }),
        "fcfs" => OnlinePolicy::Fcfs,
        other => return Err(format!("unknown online policy '{other}'")),
    };
    let profile = match opts.get("profile").map(String::as_str).unwrap_or("poisson") {
        "poisson" => ArrivalProfile::Poisson,
        "hotspot" => ArrivalProfile::Hotspot {
            fraction: 0.2,
            share: 0.8,
        },
        "burst" => ArrivalProfile::Burst {
            period: 60.0,
            width: 10.0,
            factor: 8.0,
        },
        other => return Err(format!("unknown arrival profile '{other}'")),
    };
    let defaults = EnergyModel::default();
    let energy = EnergyModel {
        battery_cap: Joules::new(get(opts, "battery-cap", defaults.battery_cap.value())?),
        ecr_move: get(opts, "ecr-move", defaults.ecr_move)?,
        ecr_charge: get(opts, "ecr-charge", defaults.ecr_charge)?,
    };
    energy.validate();
    let stream = ArrivalGenerator::new(get(opts, "stream-seed", 0)?)
        .rate(get(opts, "rate", 0.2)?)
        .horizon(get(opts, "horizon", 200.0)?)
        .slack(get(opts, "slack", 600.0)?)
        .profile(profile)
        .generate(scenario.devices().len());
    let config = OnlineConfig { policy, energy };
    let problem = CcsProblem::new(scenario);
    let report = OnlineSim::new(problem, stream, sharing.as_ref(), config).run();
    let m = &report.metrics;
    if get(opts, "json", false)? {
        let json = serde_json::to_string_pretty(m).map_err(|e| e.to_string())?;
        println!("{json}");
    } else {
        println!(
            "online {policy_name}: {} arrival(s), {} served, {} missed (miss rate {:.1}%)",
            m.arrivals,
            m.served,
            m.missed,
            m.miss_rate * 100.0,
        );
        println!(
            "  fleet: utilization {:.1}%, {} replan(s), {} depot cycle(s), makespan {:.1} s",
            m.charger_utilization * 100.0,
            m.replans,
            m.depot_cycles,
            m.makespan.value(),
        );
        println!(
            "  energy: {:.1} kJ delivered, {:.1} kJ consumed ({:.1} kJ per served request)",
            m.energy_delivered.value() / 1000.0,
            m.energy_consumed.value() / 1000.0,
            m.energy_per_served / 1000.0,
        );
    }
    if let Some(path) = report_path {
        write_report(&path)?;
    }
    Ok(())
}

/// `ccs serve` — the long-running daemon (see `ccs_serve` for the
/// protocol). Serves stdin→stdout, or a Unix socket with `--socket PATH`.
fn cmd_serve(opts: &Flags) -> Result<(), String> {
    use ccs_repro::ccs_serve::prelude::*;
    let report_path = telemetry_setup(opts)?;
    let stats_secs: u64 = get(opts, "stats-every", 10)?;
    let slow_ms: u64 = get(opts, "slow-ms", 0)?;
    let config = ServeConfig {
        workers: get(opts, "workers", 0)?,
        queue_depth: get(opts, "queue-depth", 64)?,
        stats_every: (stats_secs > 0).then(|| std::time::Duration::from_secs(stats_secs)),
        stats_human: get(opts, "stats-human", false)?,
        metrics_file: opts.get("metrics-file").cloned(),
        trace_requests: opts.get("trace-requests").cloned(),
        trace_max_bytes: get(opts, "trace-max-bytes", 16 << 20)?,
        slow_ms: (slow_ms > 0).then_some(slow_ms),
        max_line_bytes: get(opts, "max-line-bytes", 4usize << 20)?,
        cache_bytes: mb_to_bytes(get(
            opts,
            "cache-mb",
            ccs_repro::ccs_serve::DEFAULT_CACHE_BYTES >> 20,
        )?),
    };
    let summary = match opts.get("socket") {
        Some(path) => serve_unix(path, &config).map_err(|e| format!("socket {path}: {e}"))?,
        None => serve_stdio(&config),
    };
    // The daemon exits 0 after a drain even if individual requests failed:
    // every failure was answered in-band as a structured error response.
    let _ = summary;
    if let Some(path) = report_path {
        write_report(&path)?;
    }
    Ok(())
}

/// `--cache-mb` and `--max-body-mb` are declared in MiB (0 floors to 1).
fn mb_to_bytes(mb: usize) -> usize {
    mb.max(1).saturating_mul(1 << 20)
}

/// `ccs gateway` — the multi-tenant HTTP front end (see `ccs_gateway` for
/// the routes, the tenancy model, and the vendored HTTP/1.1 shim's scope).
fn cmd_gateway(opts: &Flags) -> Result<(), String> {
    use ccs_repro::ccs_gateway::prelude::*;
    let config = GatewayConfig {
        addr: opts
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:7077".to_string()),
        shards: get(opts, "shards", 0)?,
        workers_per_shard: get(opts, "workers-per-shard", 1)?,
        queue_depth: get(opts, "queue-depth", 64)?,
        max_body_bytes: mb_to_bytes(get(opts, "max-body-mb", 4)?),
        batch_max: get(opts, "batch-max", 64)?,
        cache_bytes: mb_to_bytes(get(opts, "cache-mb", 32)?),
        rate: get(opts, "rate", 0.0)?,
        burst: get(opts, "burst", 0.0)?,
        tenants_file: opts.get("tenants-file").cloned(),
        admin_token: opts.get("admin-token").cloned(),
        max_tenants: get(opts, "max-tenants", 256)?,
        idle_timeout: std::time::Duration::from_secs(get(opts, "idle-secs", 5)?),
    };
    // The drain summary line comes from `run_gateway_on` itself.
    let _summary = run_gateway(&config).map_err(|e| format!("gateway: {e}"))?;
    Ok(())
}

/// `ccs stats` — queries a running daemon's `{"cmd":"stats"}` snapshot
/// over its Unix socket and pretty-prints it (`--json true` for the raw
/// snapshot).
fn cmd_stats(opts: &Flags) -> Result<(), String> {
    use serde_json::{Number, Value};
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let socket = opts
        .get("socket")
        .ok_or("missing --socket PATH (the running daemon's socket)".to_string())?;
    let stream = UnixStream::connect(socket).map_err(|e| format!("connecting to {socket}: {e}"))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("socket clone: {e}"))?,
    );
    let mut writer = stream;
    writeln!(writer, r#"{{"id":"ccs-stats","cmd":"stats"}}"#)
        .map_err(|e| format!("sending stats request: {e}"))?;
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("reading stats response: {e}"))?;
    let response: Value =
        serde_json::from_str(&line).map_err(|e| format!("parsing stats response: {e}"))?;
    if response.field("ok") != &Value::Bool(true) {
        return Err(format!("daemon returned an error: {}", line.trim()));
    }
    let snapshot = response.field("result");
    if get(opts, "json", false)? {
        println!(
            "{}",
            serde_json::to_string_pretty(snapshot).map_err(|e| e.to_string())?
        );
        return Ok(());
    }

    let uint = |v: &Value| -> u64 {
        match v {
            Value::Number(Number::PosInt(u)) => *u,
            _ => 0,
        }
    };
    let float = |v: &Value| -> f64 {
        match v {
            Value::Number(n) => n.as_f64(),
            _ => 0.0,
        }
    };
    let schema = match snapshot.field("schema") {
        Value::String(s) => s.as_str(),
        _ => "?",
    };
    println!(
        "{schema} — uptime {:.1} s",
        float(snapshot.field("uptime_s"))
    );
    let r = snapshot.field("requests");
    println!(
        "requests: admitted {} completed {} errors {} (bad_request {}, expired {}, \
         failed {}, panics {}) rejected {} slow {}",
        uint(r.field("admitted")),
        uint(r.field("completed")),
        uint(r.field("errors")),
        uint(r.field("bad_request")),
        uint(r.field("expired")),
        uint(r.field("failed")),
        uint(r.field("panics")),
        uint(r.field("rejected")),
        uint(r.field("slow")),
    );
    let q = snapshot.field("queue");
    println!(
        "queue: depth {} / {} (high water {})",
        uint(q.field("depth")),
        uint(q.field("capacity")),
        uint(q.field("high_water")),
    );
    let c = snapshot.field("cache");
    println!(
        "cache: {} scenarios, {} plans (hits: scenario {}, plan {})",
        uint(c.field("scenarios")),
        uint(c.field("plans")),
        uint(c.field("scenario_hits")),
        uint(c.field("plan_hits")),
    );
    if let Value::Object(series) = snapshot.field("latency_us") {
        println!(
            "{:<18} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "latency (us)", "count", "p50", "p90", "p99", "p999", "max"
        );
        for (name, entry) in series {
            if uint(entry.field("count")) == 0 {
                continue;
            }
            println!(
                "  {:<16} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
                name,
                uint(entry.field("count")),
                uint(entry.field("p50")),
                uint(entry.field("p90")),
                uint(entry.field("p99")),
                uint(entry.field("p999")),
                uint(entry.field("max")),
            );
        }
    }
    Ok(())
}
