//! Determinism guarantees: every component of the stack must be a pure
//! function of its seed and inputs, or experiments are not reproducible.

use ccs_repro::prelude::*;

#[test]
fn scenario_generation_is_reproducible() {
    for seed in [0u64, 1, 99, u64::MAX] {
        let a = ScenarioGenerator::new(seed)
            .devices(25)
            .chargers(6)
            .generate();
        let b = ScenarioGenerator::new(seed)
            .devices(25)
            .chargers(6)
            .generate();
        assert_eq!(a, b, "seed {seed}");
    }
}

#[test]
fn all_schedulers_are_deterministic() {
    let make = || {
        CcsProblem::new(
            ScenarioGenerator::new(13)
                .devices(16)
                .chargers(5)
                .generate(),
        )
    };
    let p1 = make();
    let p2 = make();

    assert_eq!(
        noncooperation(&p1, &EqualShare),
        noncooperation(&p2, &EqualShare)
    );
    assert_eq!(
        ccsa(&p1, &EqualShare, CcsaOptions::default()),
        ccsa(&p2, &EqualShare, CcsaOptions::default())
    );
    let g1 = ccsga(&p1, &EqualShare, CcsgaOptions::default());
    let g2 = ccsga(&p2, &EqualShare, CcsgaOptions::default());
    assert_eq!(g1.schedule, g2.schedule);
    assert_eq!(g1.switches, g2.switches);
    assert_eq!(g1.rounds, g2.rounds);
    let o1 = optimal(&p1, &EqualShare, OptimalOptions::default()).unwrap();
    let o2 = optimal(&p2, &EqualShare, OptimalOptions::default()).unwrap();
    assert_eq!(o1, o2);
}

#[test]
fn testbed_replay_is_deterministic_per_seed() {
    let p = field_problem(3);
    let plan = ccsa(&p, &EqualShare, CcsaOptions::default());
    let a = execute(&p, &plan, &EqualShare, &NoiseModel::field(), 5);
    let b = execute(&p, &plan, &EqualShare, &NoiseModel::field(), 5);
    assert_eq!(a.device_costs, b.device_costs);
    assert_eq!(a.device_wait, b.device_wait);
    assert_eq!(a.group_bills, b.group_bills);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.energy_transmitted, b.energy_transmitted);
}

#[test]
fn different_seeds_change_the_world_not_the_invariants() {
    let mut distinct = 0;
    let reference = ccsa(
        &CcsProblem::new(ScenarioGenerator::new(0).devices(12).chargers(4).generate()),
        &EqualShare,
        CcsaOptions::default(),
    );
    for seed in 1..=5 {
        let p = CcsProblem::new(
            ScenarioGenerator::new(seed)
                .devices(12)
                .chargers(4)
                .generate(),
        );
        let s = ccsa(&p, &EqualShare, CcsaOptions::default());
        s.validate(&p).unwrap();
        if s != reference {
            distinct += 1;
        }
    }
    assert!(distinct >= 4, "seeds should actually vary the workload");
}

#[test]
fn submodular_minimizer_is_deterministic() {
    let weights: Vec<f64> = (0..30).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
    let f = SeparableFn::new(weights, 8.0, CardinalityCurve::Sqrt, 2.0);
    let pen = CardinalityPenalized::new(f.clone(), 1.5);
    let a = minimize(&pen, MnpOptions::default());
    let b = minimize(&pen, MnpOptions::default());
    assert_eq!(a.minimizer, b.minimizer);
    assert_eq!(a.value, b.value);
    let da = min_density_separable(&f).unwrap();
    let db = min_density_separable(&f).unwrap();
    assert_eq!(da.minimizer, db.minimizer);
    assert_eq!(da.density, db.density);
}
