//! Property-based tests (proptest) on the cross-crate invariants listed in
//! `DESIGN.md` §6.

use ccs_repro::prelude::*;
use ccs_submodular::check::{brute_force_min, brute_force_min_density, is_submodular};
use ccs_submodular::set_fn::SetFunction;
use ccs_wrsn::geometry::{weighted_distance_sum, weighted_geometric_median, WeiszfeldOptions};
use proptest::prelude::*;

/// A small random CCS problem described by plain values proptest can shrink.
fn arb_problem() -> impl Strategy<Value = (u64, usize, usize)> {
    (0u64..10_000, 2usize..10, 1usize..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn group_bill_is_submodular_on_random_scenarios(
        (seed, n, m) in arb_problem(),
        px in 0.0f64..300.0,
        py in 0.0f64..300.0,
        charger_idx in 0usize..4,
    ) {
        let scenario = ScenarioGenerator::new(seed).devices(n).chargers(m).generate();
        let problem = CcsProblem::new(scenario);
        let charger = ChargerId::new((charger_idx % m) as u32);
        let point = Point::new(px, py);
        let ids: Vec<DeviceId> = problem.scenario().device_ids().collect();
        let pc = problem.clone();
        let f = FnSetFunction::new(n, move |s| {
            if s.is_empty() {
                return 0.0;
            }
            let members: Vec<DeviceId> = s.iter().map(|i| ids[i]).collect();
            ccs_core::cost::group_bill(&pc, charger, &members, &point)
                .total()
                .value()
        });
        prop_assert!(is_submodular(&f, 1e-9));
    }

    #[test]
    fn mnp_matches_brute_force_on_random_penalized_bills(
        weights in proptest::collection::vec(-6.0f64..6.0, 1..9),
        fee in 0.0f64..10.0,
        scale in 0.0f64..4.0,
        lambda in 0.0f64..6.0,
    ) {
        let n = weights.len();
        let bill = SeparableFn::new(weights, fee, CardinalityCurve::Sqrt, scale);
        let f = CardinalityPenalized::new(bill, lambda);
        let got = minimize(&f, MnpOptions::default());
        let (_, expected) = brute_force_min(&f);
        prop_assert!((got.value - expected).abs() < 1e-7,
            "mnp {} vs brute {} (n={n})", got.value, expected);
    }

    #[test]
    fn density_search_matches_brute_force(
        weights in proptest::collection::vec(0.0f64..6.0, 1..9),
        fee in 0.0f64..10.0,
        scale in 0.0f64..3.0,
    ) {
        let bill = SeparableFn::new(weights, fee, CardinalityCurve::Log1p, scale);
        let got = min_density_separable(&bill).unwrap();
        let (_, expected) = brute_force_min_density(&bill);
        prop_assert!((got.density - expected).abs() < 1e-7);
        // The reported set really has the reported density.
        let check = bill.eval(&got.minimizer) / got.minimizer.len() as f64;
        prop_assert!((check - got.density).abs() < 1e-9);
    }

    #[test]
    fn schedules_are_partitions_and_budget_balanced((seed, n, m) in arb_problem()) {
        let problem = CcsProblem::new(
            ScenarioGenerator::new(seed).devices(n).chargers(m).generate(),
        );
        for schedule in [
            noncooperation(&problem, &ProportionalShare),
            ccsa(&problem, &ProportionalShare, CcsaOptions::default()),
            ccsga(&problem, &ProportionalShare, CcsgaOptions::default()).schedule,
        ] {
            prop_assert!(schedule.validate(&problem).is_ok(),
                "{} schedule invalid", schedule.algorithm());
        }
    }

    #[test]
    fn ccsa_is_individually_rational((seed, n, m) in arb_problem()) {
        let problem = CcsProblem::new(
            ScenarioGenerator::new(seed).devices(n).chargers(m).generate(),
        );
        let schedule = ccsa(&problem, &EqualShare, CcsaOptions::default());
        for d in problem.scenario().device_ids() {
            let coop = schedule.device_cost(d).unwrap();
            let solo = ccs_core::algo::noncoop::solo_cost(&problem, d);
            prop_assert!(coop <= solo + Cost::new(1e-6),
                "device {d} pays {coop} > solo {solo}");
        }
    }

    #[test]
    fn cooperation_never_costs_more_than_noncooperation((seed, n, m) in arb_problem()) {
        let problem = CcsProblem::new(
            ScenarioGenerator::new(seed).devices(n).chargers(m).generate(),
        );
        let solo = noncooperation(&problem, &EqualShare);
        let coop = ccsa(&problem, &EqualShare, CcsaOptions::default());
        prop_assert!(coop.total_cost() <= solo.total_cost() + Cost::new(1e-6));
    }

    #[test]
    fn weiszfeld_beats_fine_grid(
        seed in 0u64..1_000,
        k in 1usize..8,
    ) {
        let scenario = ScenarioGenerator::new(seed).devices(k).chargers(1).generate();
        let anchors: Vec<Point> = scenario.devices().iter().map(|d| d.position()).collect();
        let weights: Vec<f64> = scenario
            .devices()
            .iter()
            .map(|d| d.move_cost_rate().value())
            .collect();
        let median =
            weighted_geometric_median(&anchors, &weights, WeiszfeldOptions::default()).unwrap();
        let best_grid = scenario
            .field()
            .grid(40)
            .iter()
            .map(|p| weighted_distance_sum(p, &anchors, &weights))
            .fold(f64::INFINITY, f64::min);
        prop_assert!(median.objective <= best_grid + 1e-6);
        prop_assert!(median.point.is_finite());
    }

    #[test]
    fn ideal_replay_reproduces_any_valid_plan((seed, n, m) in arb_problem()) {
        let problem = CcsProblem::new(
            ScenarioGenerator::new(seed).devices(n).chargers(m).generate(),
        );
        let plan = ccsga(&problem, &EqualShare, CcsgaOptions::default()).schedule;
        let run = execute(&problem, &plan, &EqualShare, &NoiseModel::ideal(), seed);
        prop_assert!((run.total_cost() - plan.total_cost()).abs() < Cost::new(1e-6));
    }

    #[test]
    fn shares_are_nonnegative_and_balanced(
        (seed, n, m) in arb_problem(),
        group_bits in 1u32..255,
    ) {
        let problem = CcsProblem::new(
            ScenarioGenerator::new(seed).devices(n).chargers(m).generate(),
        );
        let members: Vec<DeviceId> = (0..n)
            .filter(|i| group_bits & (1 << (i % 8)) != 0 || *i == 0)
            .map(|i| DeviceId::new(i as u32))
            .collect();
        let facility = best_facility(&problem, &members);
        for scheme in all_schemes() {
            let shares = scheme.shares(
                &problem,
                facility.charger,
                &members,
                &facility.point,
                &facility.bill,
            );
            let total: Cost = shares.iter().copied().sum();
            prop_assert!((total - facility.bill.total()).abs() < Cost::new(1e-6),
                "{} not budget balanced", scheme.name());
            prop_assert!(shares.iter().all(|s| *s >= Cost::new(-1e-9)),
                "{} produced a negative share", scheme.name());
        }
    }
}
