//! End-to-end integration tests: the full pipeline from scenario
//! generation through every scheduler to testbed replay, spanning all
//! crates of the workspace.

use ccs_repro::prelude::*;

fn problem(seed: u64, n: usize, m: usize) -> CcsProblem {
    CcsProblem::new(
        ScenarioGenerator::new(seed)
            .devices(n)
            .chargers(m)
            .generate(),
    )
}

#[test]
fn cost_ordering_opt_le_heuristics_le_ncp() {
    for seed in 1..=10 {
        let p = problem(seed, 9, 3);
        let opt = optimal(&p, &EqualShare, OptimalOptions::default()).unwrap();
        let greedy = ccsa(&p, &EqualShare, CcsaOptions::default());
        let game = ccsga(&p, &EqualShare, CcsgaOptions::default());
        let solo = noncooperation(&p, &EqualShare);
        let eps = Cost::new(1e-6);
        assert!(
            opt.total_cost() <= greedy.total_cost() + eps,
            "seed {seed}: OPT > CCSA"
        );
        assert!(
            opt.total_cost() <= game.schedule.total_cost() + eps,
            "seed {seed}: OPT > CCSGA"
        );
        assert!(
            greedy.total_cost() <= solo.total_cost() + eps,
            "seed {seed}: CCSA > NCP"
        );
        assert!(
            game.schedule.total_cost() <= solo.total_cost() + eps,
            "seed {seed}: CCSGA > NCP"
        );
    }
}

#[test]
fn every_scheduler_emits_valid_schedules() {
    for seed in [3, 17, 99] {
        let p = problem(seed, 14, 5);
        for schedule in [
            noncooperation(&p, &EqualShare),
            ccsa(&p, &EqualShare, CcsaOptions::default()),
            ccsga(&p, &EqualShare, CcsgaOptions::default()).schedule,
        ] {
            schedule
                .validate(&p)
                .unwrap_or_else(|e| panic!("seed {seed} {}: {e}", schedule.algorithm()));
        }
    }
}

#[test]
fn headline_shape_simulation() {
    // H1/H2 shape at integration scale: across seeds, CCSA saves a
    // substantial fraction over NCP and stays close to OPT.
    let mut savings = Vec::new();
    let mut gaps = Vec::new();
    for seed in 1..=15 {
        let p = problem(seed, 10, 4);
        let opt = optimal(&p, &EqualShare, OptimalOptions::default()).unwrap();
        let greedy = ccsa(&p, &EqualShare, CcsaOptions::default());
        let solo = noncooperation(&p, &EqualShare);
        savings.push(saving_percent(greedy.total_cost(), solo.total_cost()));
        gaps.push(gap_above_optimal_percent(
            greedy.total_cost(),
            opt.total_cost(),
        ));
    }
    let avg_saving = savings.iter().sum::<f64>() / savings.len() as f64;
    let avg_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
    assert!(
        avg_saving > 15.0,
        "expected substantial cooperative saving, got {avg_saving:.1}%"
    );
    assert!(
        avg_gap < 15.0,
        "expected near-optimal CCSA, got {avg_gap:.1}% above OPT"
    );
    assert!(avg_gap >= 0.0);
}

#[test]
fn headline_shape_field_experiment() {
    // H3 shape: the realized field saving exceeds the planner's simulated
    // saving band lower end, and stays positive on every trial batch.
    let mut coop = Cost::ZERO;
    let mut solo = Cost::ZERO;
    for trial in 0..6 {
        let p = field_problem(trial);
        let plan = ccsa(&p, &EqualShare, CcsaOptions::default());
        let base = noncooperation(&p, &EqualShare);
        coop += execute(&p, &plan, &EqualShare, &NoiseModel::field(), trial).total_cost();
        solo += execute(&p, &base, &EqualShare, &NoiseModel::field(), trial).total_cost();
    }
    let saving = saving_percent(coop, solo);
    assert!(saving > 20.0, "field saving too small: {saving:.1}%");
}

#[test]
fn ccsga_converges_to_nash_equilibrium_at_scale() {
    let p = problem(5, 60, 8);
    let out = ccsga(&p, &EqualShare, CcsgaOptions::default());
    assert!(out.converged, "CCSGA must converge");
    assert!(out.nash_stable, "CCSGA must end in a pure Nash equilibrium");
    out.schedule.validate(&p).unwrap();
}

#[test]
fn testbed_replay_matches_plan_without_noise() {
    let p = problem(8, 12, 4);
    for schedule in [
        ccsa(&p, &EqualShare, CcsaOptions::default()),
        noncooperation(&p, &EqualShare),
    ] {
        let run = execute(&p, &schedule, &EqualShare, &NoiseModel::ideal(), 0);
        assert!(
            (run.total_cost() - schedule.total_cost()).abs() < Cost::new(1e-6),
            "{}: ideal replay {} vs plan {}",
            schedule.algorithm(),
            run.total_cost(),
            schedule.total_cost()
        );
    }
}

#[test]
fn sharing_schemes_preserve_group_totals() {
    // Budget balance means the scheme changes who pays, never how much in
    // total: the schedule total is scheme-invariant for fixed groupings.
    let p = problem(9, 12, 4);
    // Fix groupings by disabling the IR repair (it depends on the scheme).
    let options = CcsaOptions {
        ir_repair: false,
        ..Default::default()
    };
    let totals: Vec<Cost> = all_schemes()
        .into_iter()
        .map(|scheme| ccsa(&p, scheme.as_ref(), options).total_cost())
        .collect();
    for pair in totals.windows(2) {
        assert!(
            (pair[0] - pair[1]).abs() < Cost::new(1e-6),
            "totals differ across schemes: {totals:?}"
        );
    }
}

#[test]
fn scenario_serde_preserves_scheduling_results() {
    let p = problem(11, 10, 3);
    let json = serde_json::to_string(p.scenario()).unwrap();
    let back: ccs_wrsn::scenario::Scenario = serde_json::from_str(&json).unwrap();
    let p2 = CcsProblem::new(back);
    let a = ccsa(&p, &EqualShare, CcsaOptions::default());
    let b = ccsa(&p2, &EqualShare, CcsaOptions::default());
    assert_eq!(a, b, "scheduling must be invariant under serde round-trip");
}

/// Runs the `ccs` binary with `--report` and parses the emitted JSON into a
/// typed [`ccs_repro::ccs_telemetry::RunReport`]. Separate processes give
/// each run a fresh (process-wide) telemetry registry.
fn run_report_for(algo: &str) -> ccs_repro::ccs_telemetry::RunReport {
    use std::process::Command;
    let dir = std::env::temp_dir();
    let scenario = dir.join(format!(
        "ccs_e2e_{}_{algo}_scenario.json",
        std::process::id()
    ));
    let report = dir.join(format!("ccs_e2e_{}_{algo}_report.json", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_ccs"))
        .args(["gen", "--seed", "3", "--devices", "12", "--chargers", "4"])
        .args(["-o", scenario.to_str().unwrap()])
        .output()
        .expect("gen runs");
    assert!(out.status.success(), "gen failed: {out:?}");
    let out = Command::new(env!("CARGO_BIN_EXE_ccs"))
        .args(["plan", "--scenario", scenario.to_str().unwrap()])
        .args(["--algo", algo, "--report", report.to_str().unwrap()])
        .output()
        .expect("plan runs");
    assert!(out.status.success(), "plan --algo {algo} failed: {out:?}");
    let json = std::fs::read_to_string(&report).expect("report written");
    let _ = std::fs::remove_file(&scenario);
    let _ = std::fs::remove_file(&report);
    serde_json::from_str(&json).expect("report parses as a RunReport")
}

#[test]
fn ccsga_run_report_records_game_dynamics() {
    let report = run_report_for("ccsga");
    assert!(
        report.counter("coalition.switch_ops") > 0,
        "expected switch operations, got {:?}",
        report.counters
    );
    assert!(
        report.counter("coalition.rounds") > 0,
        "{:?}",
        report.counters
    );
    // Phase wall-clock timings: the outer algorithm span and the nested
    // engine span must both be present with real durations.
    for span in ["ccsga", "ccsga/coalition_run"] {
        let stats = report.spans.get(span).unwrap_or_else(|| {
            panic!(
                "missing span {span:?} in {:?}",
                report.spans.keys().collect::<Vec<_>>()
            )
        });
        assert_eq!(stats.count, 1, "{span} opened once");
        assert!(stats.total_ms > 0.0, "{span} has wall-clock time");
    }
}

#[test]
fn ccsa_run_report_records_facility_pricing() {
    let report = run_report_for("ccsa");
    // The production prefix-scan minimizer is oracle-free since the
    // evaluation kernel landed: the congestion term is tabulated instead of
    // reconstructed from `SetFunction::eval` round-trips.
    assert_eq!(
        report.counter("sfm.oracle_evals"),
        0,
        "the prefix-scan path must not burn oracle evaluations, got {:?}",
        report.counters
    );
    assert!(
        report.counter("ccsa.facility_evals") > 0,
        "{:?}",
        report.counters
    );
    assert!(report.counter("ccsa.rounds") > 0, "{:?}", report.counters);
    assert!(
        report.spans.contains_key("ccsa/greedy"),
        "{:?}",
        report.spans.keys().collect::<Vec<_>>()
    );
}

#[test]
fn telemetry_stays_dormant_without_opt_in() {
    // Library calls must not accumulate anything unless a surface enables
    // the global registry: the schedulers above ran in this process, so an
    // empty report here proves the disabled path really is a no-op.
    let p = problem(2, 8, 3);
    let _ = ccsa(&p, &EqualShare, CcsaOptions::default());
    let report = ccs_repro::ccs_telemetry::global().report();
    assert_eq!(report.counter("sfm.oracle_evals"), 0);
    assert!(report.spans.is_empty());
}

#[test]
fn larger_mixed_pipeline_smoke() {
    // One bigger end-to-end pass exercising everything together.
    let p = problem(42, 40, 6);
    let greedy = ccsa(&p, &ProportionalShare, CcsaOptions::default());
    greedy.validate(&p).unwrap();
    let game = ccsga(&p, &ProportionalShare, CcsgaOptions::default());
    game.schedule.validate(&p).unwrap();
    let run = execute(&p, &greedy, &ProportionalShare, &NoiseModel::field(), 1);
    assert!(run.total_cost() > Cost::ZERO);
    assert!(run.makespan > Seconds::ZERO);
    assert_eq!(run.device_costs.len(), 40);
    let fairness = jain_fairness(&run.device_costs);
    assert!(fairness > 0.0 && fairness <= 1.0);
}
