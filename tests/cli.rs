//! Integration tests of the `ccs` command-line binary: gen → plan →
//! replay → lifetime, end to end through real process invocations.

use std::path::PathBuf;
use std::process::{Command, Output};

fn ccs(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ccs"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ccs_cli_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn gen_plan_replay_lifetime_pipeline() {
    let scenario = temp_path("scenario.json");
    let schedule = temp_path("schedule.json");
    let scenario_str = scenario.to_str().unwrap();
    let schedule_str = schedule.to_str().unwrap();

    // gen
    let out = ccs(&[
        "gen",
        "--seed",
        "7",
        "--devices",
        "10",
        "--chargers",
        "3",
        "-o",
        scenario_str,
    ]);
    assert!(out.status.success(), "gen failed: {out:?}");
    let json = std::fs::read_to_string(&scenario).unwrap();
    let parsed: ccs_wrsn::scenario::Scenario = serde_json::from_str(&json).unwrap();
    assert_eq!(parsed.devices().len(), 10);

    // plan (every algorithm)
    for algo in ["ccsa", "ccsga", "ncp", "opt"] {
        let out = ccs(&[
            "plan",
            "--scenario",
            scenario_str,
            "--algo",
            algo,
            "-o",
            schedule_str,
        ]);
        assert!(out.status.success(), "plan --algo {algo} failed: {out:?}");
        // Human-readable results belong on stdout; stderr is reserved for
        // errors and diagnostics.
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("schedule"), "{algo}: {stdout}");
        let schedule_json = std::fs::read_to_string(&schedule).unwrap();
        assert!(schedule_json.contains("groups"), "{algo} wrote a schedule");
    }

    // replay
    let out = ccs(&[
        "replay",
        "--scenario",
        scenario_str,
        "--noise",
        "ideal",
        "--seed",
        "1",
    ]);
    assert!(out.status.success(), "replay failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("served 10/10 devices"), "{stdout}");

    // replay with failures serves fewer
    let out = ccs(&[
        "replay",
        "--scenario",
        scenario_str,
        "--noshow",
        "1.0",
        "--seed",
        "1",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("served 0/10 devices"), "{stdout}");

    // replay with recovery closes the loop: every no-show is re-planned
    // until the degraded round serves it.
    let out = ccs(&[
        "replay",
        "--scenario",
        scenario_str,
        "--noshow",
        "1.0",
        "--seed",
        "1",
        "--recover",
        "2",
    ]);
    assert!(out.status.success(), "replay --recover failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("recovered: served 100%"), "{stdout}");
    assert!(stdout.contains("degraded to solo dispatches"), "{stdout}");

    // lifetime
    let out = ccs(&[
        "lifetime",
        "--scenario",
        scenario_str,
        "--rounds",
        "5",
        "--policy",
        "ccsga",
    ]);
    assert!(out.status.success(), "lifetime failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("over 5 rounds"), "{stdout}");
    assert!(
        !stdout.contains("testbed delivery"),
        "planner-faithful lifetime must not claim testbed delivery: {stdout}"
    );

    // lifetime on the testbed: failure flags are honoured (the help used to
    // advertise them while cmd_lifetime silently ignored them).
    let out = ccs(&[
        "lifetime",
        "--scenario",
        scenario_str,
        "--rounds",
        "5",
        "--breakdown",
        "0.5",
        "--noshow",
        "0.2",
        "--seed",
        "3",
    ]);
    assert!(out.status.success(), "faulty lifetime failed: {out:?}");
    let faulty = String::from_utf8_lossy(&out.stdout);
    assert!(
        faulty.contains("refill request(s) went unserved"),
        "{faulty}"
    );

    // ... and --recover drives unserved requests back to zero.
    let out = ccs(&[
        "lifetime",
        "--scenario",
        scenario_str,
        "--rounds",
        "5",
        "--breakdown",
        "0.5",
        "--noshow",
        "0.2",
        "--seed",
        "3",
        "--recover",
        "3",
    ]);
    assert!(out.status.success(), "recovering lifetime failed: {out:?}");
    let recovered = String::from_utf8_lossy(&out.stdout);
    assert!(
        recovered.contains("0 refill request(s) went unserved"),
        "{recovered}"
    );

    let _ = std::fs::remove_file(&scenario);
    let _ = std::fs::remove_file(&schedule);
}

#[test]
fn bad_input_yields_clean_errors() {
    // Unknown command.
    let out = ccs(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing scenario file.
    let out = ccs(&["plan", "--scenario", "/nonexistent/file.json"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("reading"));

    // Bad algorithm name.
    let scenario = temp_path("err_scenario.json");
    let scenario_str = scenario.to_str().unwrap();
    assert!(ccs(&[
        "gen",
        "--devices",
        "4",
        "--chargers",
        "2",
        "-o",
        scenario_str
    ])
    .status
    .success());
    let out = ccs(&["plan", "--scenario", scenario_str, "--algo", "nope"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));

    // Flag without a value.
    let out = ccs(&["gen", "--seed"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs a value"));

    let _ = std::fs::remove_file(&scenario);
}

#[test]
fn report_and_trace_flags_emit_telemetry_files() {
    let scenario = temp_path("telemetry_scenario.json");
    let report = temp_path("telemetry_report.json");
    let trace = temp_path("telemetry_trace.jsonl");
    let scenario_str = scenario.to_str().unwrap();

    assert!(ccs(&[
        "gen",
        "--seed",
        "1",
        "--devices",
        "8",
        "--chargers",
        "3",
        "-o",
        scenario_str
    ])
    .status
    .success());
    let out = ccs(&[
        "plan",
        "--scenario",
        scenario_str,
        "--algo",
        "ccsga",
        "--report",
        report.to_str().unwrap(),
        "--trace-json",
        trace.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "plan with telemetry flags failed: {out:?}"
    );

    let report_json = std::fs::read_to_string(&report).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&report_json).unwrap();
    assert!(
        parsed.field("counters").as_object().is_some(),
        "report has counters"
    );

    // The trace is JSON Lines: every line parses on its own and names its
    // event kind.
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    assert!(!trace_text.trim().is_empty(), "trace must contain events");
    for line in trace_text.lines() {
        let ev: serde_json::Value = serde_json::from_str(line).unwrap();
        assert!(
            matches!(ev.field("event"), serde_json::Value::String(_)),
            "bad trace line: {line}"
        );
    }

    let _ = std::fs::remove_file(&scenario);
    let _ = std::fs::remove_file(&report);
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn help_lists_all_commands() {
    let out = ccs(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in ["gen", "plan", "replay", "lifetime"] {
        assert!(text.contains(cmd), "help must mention {cmd}");
    }
    for flag in ["--breakdown", "--noshow", "--recover", "--degrade"] {
        assert!(text.contains(flag), "help must mention {flag}");
    }
}
