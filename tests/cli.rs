//! Integration tests of the `ccs` command-line binary: gen → plan →
//! replay → lifetime, end to end through real process invocations.

use std::path::PathBuf;
use std::process::{Command, Output};

fn ccs(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ccs"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ccs_cli_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn gen_plan_replay_lifetime_pipeline() {
    let scenario = temp_path("scenario.json");
    let schedule = temp_path("schedule.json");
    let scenario_str = scenario.to_str().unwrap();
    let schedule_str = schedule.to_str().unwrap();

    // gen
    let out = ccs(&[
        "gen",
        "--seed",
        "7",
        "--devices",
        "10",
        "--chargers",
        "3",
        "-o",
        scenario_str,
    ]);
    assert!(out.status.success(), "gen failed: {out:?}");
    let json = std::fs::read_to_string(&scenario).unwrap();
    let parsed: ccs_wrsn::scenario::Scenario = serde_json::from_str(&json).unwrap();
    assert_eq!(parsed.devices().len(), 10);

    // plan (every algorithm)
    for algo in ["ccsa", "ccsga", "ncp", "opt"] {
        let out = ccs(&[
            "plan",
            "--scenario",
            scenario_str,
            "--algo",
            algo,
            "-o",
            schedule_str,
        ]);
        assert!(out.status.success(), "plan --algo {algo} failed: {out:?}");
        // Human-readable results belong on stdout; stderr is reserved for
        // errors and diagnostics.
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("schedule"), "{algo}: {stdout}");
        let schedule_json = std::fs::read_to_string(&schedule).unwrap();
        assert!(schedule_json.contains("groups"), "{algo} wrote a schedule");
    }

    // replay
    let out = ccs(&[
        "replay",
        "--scenario",
        scenario_str,
        "--noise",
        "ideal",
        "--seed",
        "1",
    ]);
    assert!(out.status.success(), "replay failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("served 10/10 devices"), "{stdout}");

    // replay with failures serves fewer
    let out = ccs(&[
        "replay",
        "--scenario",
        scenario_str,
        "--noshow",
        "1.0",
        "--seed",
        "1",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("served 0/10 devices"), "{stdout}");

    // replay with recovery closes the loop: every no-show is re-planned
    // until the degraded round serves it.
    let out = ccs(&[
        "replay",
        "--scenario",
        scenario_str,
        "--noshow",
        "1.0",
        "--seed",
        "1",
        "--recover",
        "2",
    ]);
    assert!(out.status.success(), "replay --recover failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("recovered: served 100%"), "{stdout}");
    assert!(stdout.contains("degraded to solo dispatches"), "{stdout}");

    // lifetime
    let out = ccs(&[
        "lifetime",
        "--scenario",
        scenario_str,
        "--rounds",
        "5",
        "--policy",
        "ccsga",
    ]);
    assert!(out.status.success(), "lifetime failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("over 5 rounds"), "{stdout}");
    assert!(
        !stdout.contains("testbed delivery"),
        "planner-faithful lifetime must not claim testbed delivery: {stdout}"
    );

    // lifetime on the testbed: failure flags are honoured (the help used to
    // advertise them while cmd_lifetime silently ignored them).
    let out = ccs(&[
        "lifetime",
        "--scenario",
        scenario_str,
        "--rounds",
        "5",
        "--breakdown",
        "0.5",
        "--noshow",
        "0.2",
        "--seed",
        "3",
    ]);
    assert!(out.status.success(), "faulty lifetime failed: {out:?}");
    let faulty = String::from_utf8_lossy(&out.stdout);
    assert!(
        faulty.contains("refill request(s) went unserved"),
        "{faulty}"
    );

    // ... and --recover drives unserved requests back to zero.
    let out = ccs(&[
        "lifetime",
        "--scenario",
        scenario_str,
        "--rounds",
        "5",
        "--breakdown",
        "0.5",
        "--noshow",
        "0.2",
        "--seed",
        "3",
        "--recover",
        "3",
    ]);
    assert!(out.status.success(), "recovering lifetime failed: {out:?}");
    let recovered = String::from_utf8_lossy(&out.stdout);
    assert!(
        recovered.contains("0 refill request(s) went unserved"),
        "{recovered}"
    );

    let _ = std::fs::remove_file(&scenario);
    let _ = std::fs::remove_file(&schedule);
}

#[test]
fn bad_input_yields_clean_errors() {
    // Unknown command.
    let out = ccs(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing scenario file.
    let out = ccs(&["plan", "--scenario", "/nonexistent/file.json"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("reading"));

    // Bad algorithm name.
    let scenario = temp_path("err_scenario.json");
    let scenario_str = scenario.to_str().unwrap();
    assert!(ccs(&[
        "gen",
        "--devices",
        "4",
        "--chargers",
        "2",
        "-o",
        scenario_str
    ])
    .status
    .success());
    let out = ccs(&["plan", "--scenario", scenario_str, "--algo", "nope"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));

    // Flag without a value.
    let out = ccs(&["gen", "--seed"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs a value"));

    let _ = std::fs::remove_file(&scenario);
}

#[test]
fn malformed_flags_fail_with_one_line_errors() {
    let scenario = temp_path("badflag_scenario.json");
    let scenario_str = scenario.to_str().unwrap();
    assert!(ccs(&[
        "gen",
        "--devices",
        "4",
        "--chargers",
        "2",
        "-o",
        scenario_str
    ])
    .status
    .success());

    // Non-numeric values for numeric flags: clean error, nonzero exit, no
    // panic, regardless of which command or flag carries the typo.
    for (args, needle) in [
        (
            vec!["plan", "--scenario", scenario_str, "--threads", "abc"],
            "invalid value 'abc' for --threads",
        ),
        (
            vec!["lifetime", "--scenario", scenario_str, "--seed", "1.5x"],
            "invalid value '1.5x' for --seed",
        ),
        (
            vec!["gen", "--devices", "-3"],
            "invalid value '-3' for --devices",
        ),
        (
            vec!["replay", "--scenario", scenario_str, "--noshow", "lots"],
            "invalid value 'lots' for --noshow",
        ),
        (
            vec!["serve", "--queue-depth", "deep"],
            "invalid value 'deep' for --queue-depth",
        ),
    ] {
        let out = ccs(&args);
        assert!(!out.status.success(), "{args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
        assert!(!stderr.contains("panicked"), "{args:?}: {stderr}");
        assert_eq!(
            stderr.lines().count(),
            1,
            "{args:?}: flag errors are one line, got: {stderr}"
        );
    }

    let _ = std::fs::remove_file(&scenario);

    // Unknown flags are rejected per command instead of silently ignored.
    let out = ccs(&["plan", "--scenario", "x.json", "--sede", "9"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown flag '--sede' for 'ccs plan'"),
        "{stderr}"
    );

    // ... including flags that exist on *other* commands.
    let out = ccs(&["gen", "--policy", "ccsa"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag '--policy'"));
}

#[test]
fn serve_pipes_jsonl_and_matches_one_shot_plan() {
    use std::io::Write;
    use std::process::Stdio;

    let scenario = temp_path("serve_scenario.json");
    let scenario_str = scenario.to_str().unwrap();
    assert!(ccs(&[
        "gen",
        "--seed",
        "21",
        "--devices",
        "8",
        "--chargers",
        "3",
        "-o",
        scenario_str
    ])
    .status
    .success());

    // One-shot plan: the reference bytes.
    let one_shot = ccs(&["plan", "--scenario", scenario_str]);
    assert!(one_shot.status.success());
    let one_shot_stdout = String::from_utf8_lossy(&one_shot.stdout).into_owned();

    // The same plan through the daemon, twice (the second is a cache hit),
    // plus a poison line mid-batch.
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_ccs"))
        .args(["serve", "--workers", "1", "--stats-every", "0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let mut stdin = daemon.stdin.take().expect("stdin");
    writeln!(
        stdin,
        "{{\"id\":1,\"cmd\":\"plan\",\"scenario_path\":\"{scenario_str}\"}}\n\
         not json at all\n\
         {{\"id\":2,\"cmd\":\"plan\",\"scenario_path\":\"{scenario_str}\"}}\n\
         {{\"cmd\":\"shutdown\"}}"
    )
    .expect("requests written");
    drop(stdin);
    let out = daemon.wait_with_output().expect("daemon exits");
    assert!(
        out.status.success(),
        "daemon must exit 0 after a drain even with poison in the batch: {out:?}"
    );

    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 4, "{stdout}");
    assert_eq!(
        lines.iter().filter(|l| l.contains("\"ok\":false")).count(),
        1,
        "exactly the poison line errors: {stdout}"
    );

    // Byte-identity: the served text field equals one-shot stdout (which
    // carries one extra trailing newline from println!).
    let plan_line = lines
        .iter()
        .find(|l| l.contains("\"id\":1") && l.contains("\"ok\":true"))
        .expect("plan response present");
    let response: serde_json::Value = serde_json::from_str(plan_line).unwrap();
    let serde_json::Value::String(text) = response.field("result").field("text") else {
        panic!("no text field in {plan_line}");
    };
    assert_eq!(
        format!("{text}\n"),
        one_shot_stdout,
        "served plan must be byte-identical to one-shot `ccs plan` stdout"
    );

    // Identical requests produce identical responses modulo id.
    let second = lines
        .iter()
        .find(|l| l.contains("\"id\":2") && l.contains("\"ok\":true"))
        .expect("second plan response present");
    assert_eq!(
        plan_line.replace("\"id\":1", "\"id\":2"),
        **second,
        "cache hits are transparent"
    );

    let _ = std::fs::remove_file(&scenario);
}

#[test]
fn report_and_trace_flags_emit_telemetry_files() {
    let scenario = temp_path("telemetry_scenario.json");
    let report = temp_path("telemetry_report.json");
    let trace = temp_path("telemetry_trace.jsonl");
    let scenario_str = scenario.to_str().unwrap();

    assert!(ccs(&[
        "gen",
        "--seed",
        "1",
        "--devices",
        "8",
        "--chargers",
        "3",
        "-o",
        scenario_str
    ])
    .status
    .success());
    let out = ccs(&[
        "plan",
        "--scenario",
        scenario_str,
        "--algo",
        "ccsga",
        "--report",
        report.to_str().unwrap(),
        "--trace-json",
        trace.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "plan with telemetry flags failed: {out:?}"
    );

    let report_json = std::fs::read_to_string(&report).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&report_json).unwrap();
    assert!(
        parsed.field("counters").as_object().is_some(),
        "report has counters"
    );

    // The trace is JSON Lines: every line parses on its own and names its
    // event kind.
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    assert!(!trace_text.trim().is_empty(), "trace must contain events");
    for line in trace_text.lines() {
        let ev: serde_json::Value = serde_json::from_str(line).unwrap();
        assert!(
            matches!(ev.field("event"), serde_json::Value::String(_)),
            "bad trace line: {line}"
        );
    }

    let _ = std::fs::remove_file(&scenario);
    let _ = std::fs::remove_file(&report);
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn help_lists_all_commands() {
    let out = ccs(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in ["gen", "plan", "replay", "lifetime", "serve"] {
        assert!(text.contains(cmd), "help must mention {cmd}");
    }
    for flag in ["--breakdown", "--noshow", "--recover", "--degrade"] {
        assert!(text.contains(flag), "help must mention {flag}");
    }
}
