//! Vendored, std-only stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace ships a minimal serialization framework under the same
//! crate name. Unlike real serde's zero-copy visitor architecture, this shim
//! funnels everything through an owned JSON-like [`value::Value`] tree:
//!
//! * [`Serialize`] renders a type into a [`value::Value`];
//! * [`Deserialize`] rebuilds a type from a [`value::Value`];
//! * `#[derive(Serialize, Deserialize)]` (from the sibling `serde_derive`
//!   shim) generates both for plain structs and externally-tagged enums.
//!
//! The supported attribute surface is exactly what this workspace uses:
//! `#[serde(transparent)]` (implied for one-field tuple structs) and
//! `#[serde(default)]` (implied: missing fields deserialize from `Null`,
//! which succeeds for `Option` fields and errors otherwise).

pub mod de;
pub mod value;

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use value::{Number, Value};

/// Types renderable into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`de::Error`] when the tree does not match the expected
    /// shape (wrong kind, missing field, out-of-range number).
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(de::Error::expected("bool", other.kind())),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(de::Error::expected("string", other.kind())),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            // JSON has no NaN/Infinity literals; real serde_json emits
            // `null` for them, so accept the round trip.
            Value::Null => Ok(f64::NAN),
            other => Err(de::Error::expected("number", other.kind())),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(u64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let raw = match v {
                    Value::Number(Number::PosInt(u)) => Ok(*u),
                    Value::Number(Number::Float(f))
                        if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 =>
                    {
                        Ok(*f as u64)
                    }
                    other => Err(de::Error::expected("unsigned integer", other.kind())),
                }?;
                <$t>::try_from(raw)
                    .map_err(|_| de::Error::message(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Number(Number::PosInt(*self as u64))
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        u64::from_value(v).and_then(|u| {
            usize::try_from(u).map_err(|_| de::Error::message(format!("integer {u} out of range")))
        })
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = i64::from(*self);
                if x >= 0 {
                    Value::Number(Number::PosInt(x as u64))
                } else {
                    Value::Number(Number::NegInt(x))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let raw: i64 = match v {
                    Value::Number(Number::PosInt(u)) => i64::try_from(*u)
                        .map_err(|_| de::Error::message(format!("integer {u} out of range"))),
                    Value::Number(Number::NegInt(i)) => Ok(*i),
                    Value::Number(Number::Float(f)) if f.fract() == 0.0 => Ok(*f as i64),
                    other => Err(de::Error::expected("integer", other.kind())),
                }?;
                <$t>::try_from(raw)
                    .map_err(|_| de::Error::message(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(de::Error::expected("array", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for BTreeMap<String, T> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<T: Deserialize> Deserialize for BTreeMap<String, T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| T::from_value(v).map(|t| (k.clone(), t)))
                .collect(),
            other => Err(de::Error::expected("object", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for HashMap<String, T> {
    fn to_value(&self) -> Value {
        // Deterministic key order keeps serialized output reproducible.
        let mut sorted: Vec<(&String, &T)> = self.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            sorted
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<T: Deserialize> Deserialize for HashMap<String, T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| T::from_value(v).map(|t| (k.clone(), t)))
                .collect(),
            other => Err(de::Error::expected("object", other.kind())),
        }
    }
}
