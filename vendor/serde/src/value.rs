//! The owned value tree every (de)serialization in this shim flows through.

use std::collections::BTreeMap;

/// A JSON-shaped value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

/// A JSON number that preserves integer fidelity where possible.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// Lossy conversion to `f64` (exact for all values this workspace uses).
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::PosInt(u) => *u as f64,
            Number::NegInt(i) => *i as f64,
            Number::Float(f) => *f,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a == b,
            // Mixed integer/float comparisons go through f64 so a value that
            // was emitted as `3` and parsed back as an integer still equals
            // the original `3.0`.
            (a, b) => a.as_f64() == b.as_f64(),
        }
    }
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Borrow the contained object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Look up `key`, treating a missing field as `Null` (how this shim
    /// models `#[serde(default)]` for `Option` fields).
    pub fn field(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Object(map) => map.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}
