//! Deserialization error type.

use std::fmt;

/// Error produced when a [`crate::value::Value`] tree does not match the
/// shape the target type expects.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Error from a free-form message.
    pub fn message(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// Error for a kind mismatch ("expected X, found Y").
    pub fn expected(expected: &str, found: &str) -> Self {
        Error {
            message: format!("expected {expected}, found {found}"),
        }
    }

    /// Error for a missing required field.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error {
            message: format!("missing field `{field}` while deserializing {ty}"),
        }
    }

    /// Prefix the message with the context of an enclosing type/field, so
    /// nested failures read like a path.
    pub fn context(mut self, ctx: &str) -> Self {
        self.message = format!("{ctx}: {}", self.message);
        self
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}
