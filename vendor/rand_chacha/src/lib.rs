//! Vendored ChaCha8-based RNG implementing the rand shim's traits.
//!
//! Uses the genuine ChaCha block function (RFC 7539 quarter-round, 8
//! rounds), seeded with a 256-bit key. Output is deterministic per seed but
//! not guaranteed bit-identical to the real `rand_chacha` crate; nothing in
//! this workspace asserts golden values.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed from a 32-byte seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u8; 64],
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..4 {
            // One double round: four column + four diagonal quarter rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (i, word) in state.iter_mut().enumerate() {
            *word = word.wrapping_add(initial[i]);
        }
        for (i, word) in state.iter().enumerate() {
            self.buf[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 64],
            idx: 64,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.idx + 8 > 64 {
            self.refill();
        }
        let out = u64::from_le_bytes(self.buf[self.idx..self.idx + 8].try_into().unwrap());
        self.idx += 8;
        out
    }
}
