//! Vendored, std-only stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's six `harness = false` bench
//! targets use (`benchmark_group`, `bench_with_input`, `bench_function`,
//! `BenchmarkId`, `criterion_group!`/`criterion_main!`, `black_box`).
//! Instead of criterion's statistical analysis it runs a short warm-up, a
//! fixed measurement loop, and prints mean/min wall-clock times — enough to
//! compare runs by hand and to keep `cargo bench` compiling and running.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier from a function name plus a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Prevents the compiler from optimising away a computed value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    total: Duration,
    min: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `routine` repeatedly.
    pub fn iter<O, Rf: FnMut() -> O>(&mut self, mut routine: Rf) {
        // Warm-up: one untimed call.
        hint::black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            hint::black_box(routine());
            let elapsed = start.elapsed();
            self.total += elapsed;
            if elapsed < self.min {
                self.min = elapsed;
            }
            self.iters += 1;
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run(&mut self, label: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            min: Duration::MAX,
            iters: 0,
        };
        f(&mut b);
        let mean = if b.iters > 0 {
            b.total / (b.iters as u32)
        } else {
            Duration::ZERO
        };
        println!(
            "bench {}/{}: mean {:?}, min {:?} ({} iters)",
            self.name, label, mean, b.min, b.iters
        );
    }

    /// Benchmarks `routine` against a fixed input.
    pub fn bench_with_input<I: ?Sized, Rf>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        routine: Rf,
    ) -> &mut Self
    where
        Rf: FnOnce(&mut Bencher, &I),
    {
        self.run(&id.label.clone(), |b| routine(b, input));
        self
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<Rf>(&mut self, label: &str, routine: Rf) -> &mut Self
    where
        Rf: FnOnce(&mut Bencher),
    {
        self.run(label, routine);
        self
    }

    /// Ends the group (no-op beyond matching the real API).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<Rf>(&mut self, label: &str, routine: Rf) -> &mut Self
    where
        Rf: FnOnce(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(label, routine);
        self
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
