//! Vendored, std-only stand-in for `serde_json`, built on the serde shim's
//! [`Value`] tree: serialization renders the tree to text, deserialization
//! parses text into a tree and hands it to `serde::Deserialize`.
//!
//! Floats are formatted with Rust's `{}` (shortest round-trip) formatting,
//! so `f64` values survive a serialize → parse cycle bit-exactly — the
//! behaviour the real crate's `float_roundtrip` feature guarantees and that
//! this workspace's round-trip tests rely on.

pub use serde::value::{Number, Value};

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Error from parsing or (de)serializing JSON.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Infallible in this shim; the `Result` mirrors the real crate's API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible in this shim; the `Result` mirrors the real crate's API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Object(map) => {
            let entries: Vec<(&String, &Value)> = map.iter().collect();
            write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                write_string(out, entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, entries[i].1, indent, depth + 1);
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<&str>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(pad);
            }
        }
        item(out, i);
    }
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, n: &Number) {
    use std::fmt::Write;
    match n {
        Number::PosInt(u) => {
            let _ = write!(out, "{u}");
        }
        Number::NegInt(i) => {
            let _ = write!(out, "{i}");
        }
        Number::Float(f) => {
            if f.is_finite() {
                // `{}` is shortest-round-trip; force a decimal point or
                // exponent so the value parses back as a float.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // Like the real crate: NaN/Infinity have no JSON form.
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::String),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            b => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                b => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}` at byte {}",
                        b as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            if self.peek()? != b'"' {
                return Err(Error::new(format!(
                    "expected object key at byte {}",
                    self.pos
                )));
            }
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                b => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}` at byte {}",
                        b as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error::new("unexpected end of input in escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        b => return Err(Error::new(format!("invalid escape `\\{}`", b as char))),
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("unexpected end of input in \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| Error::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(i) = digits.parse::<u64>() {
                    if let Ok(neg) = i64::try_from(i).map(|x| -x) {
                        return Ok(Value::Number(Number::NegInt(neg)));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}
