//! Vendored `parking_lot` shim backed by `std::sync`.
//!
//! Matches the parking_lot API shape this workspace relies on: `lock()` /
//! `read()` / `write()` return guards directly (poisoning is unwrapped —
//! a panic while holding a lock aborts the caller just as parking_lot's
//! non-poisoning locks would let the next locker proceed).

use std::sync;

/// Mutual exclusion lock (std-backed, non-poisoning API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<sync::MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed; the borrow checker guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock (std-backed, non-poisoning API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}
