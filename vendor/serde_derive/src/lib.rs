//! Vendored, syn-free `#[derive(Serialize, Deserialize)]` for the serde shim.
//!
//! The codegen only ever needs field *names*, never field types: the
//! generated bodies call `::serde::Serialize::to_value` /
//! `::serde::Deserialize::from_value` and let trait resolution infer the
//! rest. That insight lets this macro parse the item with a hand-rolled
//! `TokenTree` walk instead of depending on `syn`/`quote` (unavailable in
//! this offline build environment).
//!
//! Supported shapes (the full set this workspace derives on):
//! * named-field structs → JSON objects (missing keys read as `Null`, so
//!   `#[serde(default)]` on `Option` fields behaves as expected);
//! * tuple structs → transparent for one field, arrays otherwise;
//! * enums, externally tagged: unit variants → `"Name"`, newtype variants →
//!   `{"Name": value}`, struct variants → `{"Name": {fields}}`.
//!
//! Generics are not supported; no derived type in the workspace is generic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().unwrap()
}

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Advance past any `#[...]` attributes starting at `i`.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < toks.len()
        && is_punct(&toks[i], '#')
        && matches!(&toks[i + 1], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
    {
        i += 2;
    }
    i
}

/// Advance past `pub` / `pub(crate)` / `pub(in ...)` starting at `i`.
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if i < toks.len() && is_ident(&toks[i], "pub") {
        i += 1;
        if i < toks.len()
            && matches!(&toks[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Advance to the position just after the next top-level `,`, tracking
/// `<`/`>` depth so commas inside generic arguments don't terminate early
/// (`BTreeMap<String, Value>`). Grouped delimiters arrive as atomic
/// `TokenTree::Group`s, so only angle brackets need explicit tracking.
fn skip_past_comma(toks: &[TokenTree], mut i: usize) -> usize {
    let mut angle: i32 = 0;
    while i < toks.len() {
        if angle == 0 && is_punct(&toks[i], ',') {
            return i + 1;
        }
        if is_punct(&toks[i], '<') {
            angle += 1;
        } else if is_punct(&toks[i], '>') {
            angle -= 1;
        }
        i += 1;
    }
    i
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_vis(&toks, skip_attrs(&toks, i));
        if i >= toks.len() {
            break;
        }
        let TokenTree::Ident(name) = &toks[i] else {
            panic!("serde_derive shim: expected field name, got {:?}", toks[i]);
        };
        fields.push(name.to_string());
        i += 1; // name
        assert!(is_punct(&toks[i], ':'), "serde_derive shim: expected `:`");
        i = skip_past_comma(&toks, i + 1);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut i = 0;
    while i < toks.len() {
        n += 1;
        i = skip_past_comma(&toks, i);
    }
    n
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&toks, skip_attrs(&toks, 0));
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    i += 1;
    if i < toks.len() && is_punct(&toks[i], '<') {
        panic!("serde_derive shim: generic types are not supported (deriving on `{name}`)");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let Some(TokenTree::Group(body)) = toks.get(i) else {
                panic!("serde_derive shim: expected enum body for `{name}`");
            };
            let vt: Vec<TokenTree> = body.stream().into_iter().collect();
            let mut variants = Vec::new();
            let mut j = 0;
            while j < vt.len() {
                j = skip_attrs(&vt, j);
                if j >= vt.len() {
                    break;
                }
                let TokenTree::Ident(vname) = &vt[j] else {
                    panic!("serde_derive shim: expected variant name, got {:?}", vt[j]);
                };
                let vname = vname.to_string();
                j += 1;
                let fields = match vt.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        j += 1;
                        Fields::Named(parse_named_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        j += 1;
                        Fields::Tuple(count_tuple_fields(g.stream()))
                    }
                    _ => Fields::Unit,
                };
                variants.push((vname, fields));
                // Skip any explicit discriminant, then the trailing comma.
                j = skip_past_comma(&vt, j);
            }
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive shim: cannot derive on `{other}` items"),
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::value::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Named(fs) => {
                    let mut s =
                        String::from("let mut map = ::std::collections::BTreeMap::new();\n");
                    for f in fs {
                        s.push_str(&format!(
                            "map.insert(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                        ));
                    }
                    s.push_str("::serde::value::Value::Object(map)");
                    s
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::value::Value::String(\"{vname}\".to_string()),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(x0) => {{\n\
                             let mut outer = ::std::collections::BTreeMap::new();\n\
                             outer.insert(\"{vname}\".to_string(), ::serde::Serialize::to_value(x0));\n\
                             ::serde::value::Value::Object(outer)\n\
                         }}\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{\n\
                                 let mut outer = ::std::collections::BTreeMap::new();\n\
                                 outer.insert(\"{vname}\".to_string(), ::serde::value::Value::Array(vec![{}]));\n\
                                 ::serde::value::Value::Object(outer)\n\
                             }}\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let mut inserts = String::new();
                        for f in fs {
                            inserts.push_str(&format!(
                                "inner.insert(\"{f}\".to_string(), ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\n\
                                 let mut inner = ::std::collections::BTreeMap::new();\n\
                                 {inserts}\
                                 let mut outer = ::std::collections::BTreeMap::new();\n\
                                 outer.insert(\"{vname}\".to_string(), ::serde::value::Value::Object(inner));\n\
                                 ::serde::value::Value::Object(outer)\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_named_constructor(path: &str, fs: &[String], src: &str, ctx: &str) -> String {
    let mut inits = String::new();
    for f in fs {
        inits.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value({src}.field(\"{f}\"))\
                 .map_err(|e| e.context(\"{ctx}.{f}\"))?,\n"
        ));
    }
    format!("Ok({path} {{\n{inits}}})")
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!(
                    "match v {{\n\
                         ::serde::value::Value::Null => Ok({name}),\n\
                         other => Err(::serde::de::Error::expected(\"null\", other.kind())\
                             .context(\"{name}\")),\n\
                     }}"
                ),
                Fields::Tuple(1) => format!(
                    "Ok({name}(::serde::Deserialize::from_value(v)\
                         .map_err(|e| e.context(\"{name}\"))?))"
                ),
                Fields::Tuple(n) => {
                    let mut items = String::new();
                    for k in 0..*n {
                        items.push_str(&format!(
                            "::serde::Deserialize::from_value(&items[{k}])\
                                 .map_err(|e| e.context(\"{name}.{k}\"))?,\n"
                        ));
                    }
                    format!(
                        "match v {{\n\
                             ::serde::value::Value::Array(items) if items.len() == {n} => \
                                 Ok({name}(\n{items})),\n\
                             other => Err(::serde::de::Error::expected(\"array of {n}\", other.kind())\
                                 .context(\"{name}\")),\n\
                         }}"
                    )
                }
                Fields::Named(fs) => {
                    let ctor = gen_named_constructor(name, fs, "v", name);
                    format!(
                        "match v {{\n\
                             ::serde::value::Value::Object(_) => {ctor},\n\
                             other => Err(::serde::de::Error::expected(\"object\", other.kind())\
                                 .context(\"{name}\")),\n\
                         }}"
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::value::Value) -> \
                         ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                        tagged_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                    }
                    Fields::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(inner)\
                                 .map_err(|e| e.context(\"{name}::{vname}\"))?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let mut items = String::new();
                        for k in 0..*n {
                            items.push_str(&format!(
                                "::serde::Deserialize::from_value(&items[{k}])\
                                     .map_err(|e| e.context(\"{name}::{vname}.{k}\"))?,\n"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => match inner {{\n\
                                 ::serde::value::Value::Array(items) if items.len() == {n} => \
                                     Ok({name}::{vname}(\n{items})),\n\
                                 other => Err(::serde::de::Error::expected(\"array of {n}\", other.kind())\
                                     .context(\"{name}::{vname}\")),\n\
                             }},\n"
                        ));
                    }
                    Fields::Named(fs) => {
                        let path = format!("{name}::{vname}");
                        let ctor = gen_named_constructor(&path, fs, "inner", &path);
                        tagged_arms.push_str(&format!("\"{vname}\" => {ctor},\n"));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::value::Value) -> \
                         ::std::result::Result<Self, ::serde::de::Error> {{\n\
                         match v {{\n\
                             ::serde::value::Value::String(s) => match s.as_str() {{\n\
                                 {unit_arms}\
                                 other => Err(::serde::de::Error::message(\
                                     format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::value::Value::Object(map) if map.len() == 1 => {{\n\
                                 let (tag, inner) = map.iter().next().unwrap();\n\
                                 let _ = inner;\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\
                                     other => Err(::serde::de::Error::message(\
                                         format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::de::Error::expected(\
                                 \"string or single-key object\", other.kind())\
                                 .context(\"{name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
