//! `any::<T>()` strategies for the primitive types this workspace samples.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Strategy over the full value space of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Returns the canonical strategy for `T` (`bool`, unsigned/signed ints).
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
