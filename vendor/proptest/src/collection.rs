//! Collection strategies (`collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specifications accepted by [`vec()`]: an exact `usize` or a
/// half-open `Range<usize>`.
pub trait IntoSizeRange {
    /// Returns `(min, max_exclusive)` bounds.
    fn bounds(self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(self) -> (usize, usize) {
        (self, self + 1)
    }
}

impl IntoSizeRange for std::ops::Range<usize> {
    fn bounds(self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl IntoSizeRange for std::ops::RangeInclusive<usize> {
    fn bounds(self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

/// Strategy for `Vec<S::Value>` with a sampled length.
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max_exclusive: usize,
}

/// Generates vectors whose elements come from `element` and whose length
/// comes from `size`.
///
/// # Panics
///
/// Panics if the size specification is empty.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max_exclusive) = size.bounds();
    assert!(min < max_exclusive, "empty size range for collection::vec");
    VecStrategy {
        element,
        min,
        max_exclusive,
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.max_exclusive - self.min;
        let len = self.min + rng.index(span.max(1)) * usize::from(span > 0);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
