//! The `Strategy` trait and the combinators this workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Object-safe (modulo the `Sized`-bound combinators) so heterogeneous
/// strategies can be boxed for `prop_oneof!`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// Boxes a strategy; lets `prop_oneof!` unify heterogeneous strategy types
/// without naming them.
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.index(self.options.len());
        self.options[i].sample(rng)
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * unit
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}
