//! Test configuration and the deterministic RNG behind sampling.

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the exhaustive
        // brute-force comparisons in this workspace fast while still
        // exercising a broad input sample.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 generator seeded from the test name, so every
/// test sees a reproducible but distinct stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample an index from an empty range");
        (self.next_u64() % n as u64) as usize
    }
}
