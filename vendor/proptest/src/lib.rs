//! Vendored, std-only stand-in for the `proptest` crate.
//!
//! Supports the surface this workspace's property tests use: the
//! `proptest!` macro (with optional `#![proptest_config(...)]` header),
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `Just`, range and tuple
//! strategies, `prop_map`, `collection::vec`, and `any::<bool|u64>()`.
//!
//! Unlike the real crate there is no shrinking and no failure persistence:
//! each test runs `cases` deterministic random samples and panics with the
//! case number on the first failure, which is reproducible because the
//! generator is seeded per test from a fixed constant.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Common imports for property tests.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    let result = (|rng: &mut $crate::test_runner::TestRng|
                        -> ::std::result::Result<(), ::std::string::String> {
                        $(
                            let $pat = $crate::strategy::Strategy::sample(&($strat), rng);
                        )+
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })(&mut rng);
                    if let ::std::result::Result::Err(message) = result {
                        panic!("proptest case {case}/{} failed: {message}", config.cases);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body (fails the case, not the
/// whole process, mirroring the real macro's early-return behaviour).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {left:?}\n right: {right:?}",
                stringify!($left),
                stringify!($right),
            ));
        }
    }};
}

/// Uniform choice among heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}
