//! Vendored, std-only stand-in for the `rand` crate (0.8-compatible API
//! subset: `RngCore`, blanket `Rng` with `gen_range`, `SeedableRng` with the
//! SplitMix64-based `seed_from_u64`, and `distributions::{Distribution,
//! Uniform}` over `f64`).
//!
//! Streams are deterministic for a given seed but NOT bit-compatible with
//! the real crate; the workspace's tests only assert within-run determinism,
//! never golden values.

pub mod distributions;

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` half-open or `a..=b`
    /// inclusive; float and integer element types).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same scheme the
    /// real crate uses) and constructs the generator.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` with 53-bit precision.
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Element types [`Rng::gen_range`] can sample uniformly.
///
/// A single generic `SampleRange` impl per range shape (mirroring the real
/// crate's structure) keeps type inference working for unsuffixed literals
/// like `rng.gen_range(0..3)` used as an index.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
        let unit = if inclusive {
            // 53-bit grid over [0, 1]; the endpoint is reachable.
            (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
        } else {
            unit_f64(rng.next_u64())
        };
        lo + (hi - lo) * unit
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                // Modulo bias is negligible for the spans this workspace uses.
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_in(lo, hi, true, rng)
    }
}
