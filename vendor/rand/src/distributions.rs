//! Uniform distribution over `f64` (the only distribution this workspace
//! samples through the `Distribution` trait).

use crate::{unit_f64, RngCore};

/// Types that can generate samples of `T` given an entropy source.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform distribution over an `f64` interval.
#[derive(Debug, Clone, Copy)]
pub struct Uniform {
    lo: f64,
    hi: f64,
    inclusive: bool,
}

impl Uniform {
    /// Uniform over the half-open interval `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "Uniform::new called with empty range");
        Uniform {
            lo,
            hi,
            inclusive: false,
        }
    }

    /// Uniform over the closed interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new_inclusive(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "Uniform::new_inclusive called with empty range");
        Uniform {
            lo,
            hi,
            inclusive: true,
        }
    }
}

impl Distribution<f64> for Uniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let unit = if self.inclusive {
            (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
        } else {
            unit_f64(rng.next_u64())
        };
        self.lo + (self.hi - self.lo) * unit
    }
}
