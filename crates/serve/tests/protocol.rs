//! Protocol-level integration tests of the daemon engine: golden
//! byte-stable responses, error paths that must not kill the server,
//! backpressure, deadlines, caching, and the drain contract.

use ccs_core::prelude::*;
use ccs_serve::prelude::*;
use ccs_wrsn::scenario::ScenarioGenerator;
use serde::value::Value;
use serde::Serialize;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A `Write` sink the test can read back after the server returns.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs a full server lifecycle over `lines`, returning every response
/// line and the drain summary.
fn run_server(lines: &[String], workers: usize, queue_depth: usize) -> (Vec<String>, ServeSummary) {
    let input = std::io::Cursor::new(lines.join("\n").into_bytes());
    let out = SharedBuf::default();
    let config = ServeConfig {
        workers,
        queue_depth,
        stats_every: None,
        ..ServeConfig::default()
    };
    let summary = serve_connection(input, Box::new(out.clone()), &config);
    let bytes = out.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("responses are UTF-8");
    (text.lines().map(str::to_string).collect(), summary)
}

fn scenario_json(seed: u64, devices: usize) -> String {
    let scenario = ScenarioGenerator::new(seed)
        .devices(devices)
        .chargers(3)
        .generate();
    serde_json::to_string(&scenario.to_value()).expect("scenario serializes")
}

/// A scenario no charger can serve: `CcsProblem::new` panics on it, which
/// is exactly what the worker's panic backstop must absorb.
fn poison_scenario_json() -> String {
    let scenario = ScenarioGenerator::new(5).devices(4).chargers(2).generate();
    let mut value = scenario.to_value();
    if let Value::Object(map) = &mut value {
        map.insert("chargers".to_string(), Value::Array(Vec::new()));
    }
    serde_json::to_string(&value).expect("scenario serializes")
}

/// The parsed response with the given id.
fn response_with_id(lines: &[String], id: u64) -> Value {
    for line in lines {
        let value: Value = serde_json::from_str(line).expect("response parses");
        if let Value::Number(n) = value.field("id") {
            if n.as_f64() == id as f64 {
                return value;
            }
        }
    }
    panic!("no response with id {id} in {lines:#?}");
}

fn response_ok(response: &Value) -> bool {
    response.field("ok") == &Value::Bool(true)
}

fn error_kind(response: &Value) -> &str {
    match response.field("error").field("kind") {
        Value::String(s) => s,
        other => panic!("error.kind missing: {other:?}"),
    }
}

#[test]
fn served_plan_is_byte_identical_to_direct_computation() {
    let scenario_json = scenario_json(11, 8);
    let lines = vec![
        format!(r#"{{"id":1,"cmd":"plan","scenario":{scenario_json},"algo":"ccsa"}}"#),
        r#"{"cmd":"shutdown"}"#.to_string(),
    ];
    let (responses, summary) = run_server(&lines, 1, 8);
    assert_eq!(summary.completed, 1);
    assert_eq!(summary.errors, 0);

    let response = response_with_id(&responses, 1);
    assert_eq!(response.field("ok"), &Value::Bool(true));
    let Value::String(text) = response.field("result").field("text") else {
        panic!("plan response carries no text field");
    };

    let scenario = ScenarioGenerator::new(11).devices(8).chargers(3).generate();
    let problem = CcsProblem::new(scenario);
    let direct = ccsa(&problem, &EqualShare, CcsaOptions::default());
    assert_eq!(
        text,
        &direct.to_string(),
        "served plan text must be byte-identical to the one-shot computation"
    );
}

#[test]
fn responses_are_byte_stable_across_runs() {
    let scenario_json = scenario_json(3, 6);
    let lines = vec![
        format!(r#"{{"id":1,"cmd":"plan","scenario":{scenario_json}}}"#),
        format!(r#"{{"id":2,"cmd":"plan","scenario":{scenario_json},"algo":"ncp"}}"#),
        format!(r#"{{"id":3,"cmd":"replay","scenario":{scenario_json},"seed":7}}"#),
        r#"{"id":4,"cmd":"ping"}"#.to_string(),
        r#"{"cmd":"shutdown"}"#.to_string(),
    ];
    let (mut first, _) = run_server(&lines, 1, 8);
    let (mut second, _) = run_server(&lines, 2, 8);
    // Worker interleaving may reorder lines; the bytes of each response
    // must not change.
    first.sort();
    second.sort();
    assert_eq!(first, second);
    assert_eq!(first.len(), 5);
}

#[test]
fn malformed_requests_get_errors_and_the_daemon_keeps_serving() {
    let scenario_json = scenario_json(2, 5);
    let lines = vec![
        "{definitely not json".to_string(),
        r#"[1, 2, 3]"#.to_string(),
        r#"{"id":10,"cmd":"warp"}"#.to_string(),
        r#"{"id":11,"cmd":"plan"}"#.to_string(),
        format!(r#"{{"id":12,"cmd":"plan","scenario":{scenario_json},"algo":7}}"#),
        format!(r#"{{"id":13,"cmd":"plan","scenario":{scenario_json}}}"#),
        r#"{"cmd":"shutdown"}"#.to_string(),
    ];
    let (responses, summary) = run_server(&lines, 2, 8);
    // Every line including the shutdown got exactly one response.
    assert_eq!(responses.len(), 7);
    assert_eq!(summary.errors, 5);
    assert_eq!(summary.completed, 1, "the valid request still completed");
    assert_eq!(summary.panics, 0, "malformed input never reaches a panic");

    assert_eq!(error_kind(&response_with_id(&responses, 10)), "bad_request");
    assert_eq!(error_kind(&response_with_id(&responses, 11)), "bad_request");
    assert_eq!(error_kind(&response_with_id(&responses, 12)), "bad_request");
    let ok = response_with_id(&responses, 13);
    assert_eq!(ok.field("ok"), &Value::Bool(true));
}

#[test]
fn poison_request_is_caught_and_the_daemon_survives() {
    let poison = poison_scenario_json();
    let healthy = scenario_json(4, 5);
    let lines = vec![
        format!(r#"{{"id":1,"cmd":"plan","scenario":{poison}}}"#),
        format!(r#"{{"id":2,"cmd":"plan","scenario":{healthy}}}"#),
        r#"{"cmd":"shutdown"}"#.to_string(),
    ];
    let (responses, summary) = run_server(&lines, 1, 8);
    assert_eq!(summary.panics, 1, "the poison scenario panics in core");
    assert_eq!(summary.completed, 1);

    let poisoned = response_with_id(&responses, 1);
    assert_eq!(poisoned.field("ok"), &Value::Bool(false));
    assert_eq!(error_kind(&poisoned), "internal");

    let healthy = response_with_id(&responses, 2);
    assert_eq!(
        healthy.field("ok"),
        &Value::Bool(true),
        "the daemon keeps serving after a caught panic"
    );
}

#[test]
fn queue_overflow_is_rejected_with_explicit_backpressure() {
    // One worker, queue depth 1, eight distinct (uncacheable) plans pushed
    // in one burst: the reader admits far faster than the worker computes,
    // so most requests must see an explicit reject, and every request must
    // be answered one way or the other.
    let total = 8u64;
    let mut lines: Vec<String> = (0..total)
        .map(|i| {
            let scenario = scenario_json(100 + i, 10);
            format!(r#"{{"id":{i},"cmd":"plan","scenario":{scenario}}}"#)
        })
        .collect();
    lines.push(r#"{"cmd":"shutdown"}"#.to_string());
    let (responses, summary) = run_server(&lines, 1, 1);

    assert_eq!(summary.admitted + summary.rejected, total);
    assert!(
        summary.rejected >= 1,
        "a depth-1 queue under burst load must reject: {summary:?}"
    );
    assert_eq!(summary.completed, summary.admitted);

    let mut rejected = 0;
    for id in 0..total {
        let response = response_with_id(&responses, id);
        match response.field("ok") {
            Value::Bool(true) => {}
            Value::Bool(false) => {
                assert_eq!(error_kind(&response), "rejected");
                rejected += 1;
            }
            other => panic!("response without ok: {other:?}"),
        }
    }
    assert_eq!(rejected, summary.rejected);
}

#[test]
fn identical_requests_hit_the_scenario_and_plan_caches() {
    let scenario_json = scenario_json(6, 6);
    let lines = vec![
        format!(r#"{{"id":1,"cmd":"plan","scenario":{scenario_json}}}"#),
        format!(r#"{{"id":2,"cmd":"plan","scenario":{scenario_json}}}"#),
        format!(r#"{{"id":3,"cmd":"replay","scenario":{scenario_json},"seed":1}}"#),
        r#"{"cmd":"shutdown"}"#.to_string(),
    ];
    let (responses, summary) = run_server(&lines, 1, 8);
    assert_eq!(summary.completed, 3);
    assert_eq!(
        summary.scenario_hits, 2,
        "requests 2 and 3 reuse the problem"
    );
    assert_eq!(
        summary.plan_hits, 2,
        "request 2 and the replay reuse the plan"
    );

    // Cache hits are transparent: identical requests (different ids) get
    // responses identical except for the id.
    let one = response_with_id(&responses, 1);
    let two = response_with_id(&responses, 2);
    assert_eq!(
        serde_json::to_string(&one.field("result")).unwrap(),
        serde_json::to_string(&two.field("result")).unwrap()
    );
}

#[test]
fn queued_work_past_its_deadline_is_cancelled() {
    // One worker: the first (heavy) plan occupies it for far longer than
    // 1 ms, so the second request expires while queued and must be
    // cancelled gracefully instead of computed.
    let heavy = scenario_json(8, 14);
    let light = scenario_json(9, 5);
    let lines = vec![
        format!(r#"{{"id":1,"cmd":"plan","scenario":{heavy}}}"#),
        format!(r#"{{"id":2,"cmd":"plan","scenario":{light},"deadline_ms":1}}"#),
        r#"{"cmd":"shutdown"}"#.to_string(),
    ];
    let (responses, summary) = run_server(&lines, 1, 8);
    assert_eq!(summary.completed, 1);
    let expired = response_with_id(&responses, 2);
    assert_eq!(error_kind(&expired), "expired");
}

#[test]
fn deadline_elapsing_during_the_solve_answers_expired() {
    // The request is alone in the queue, so it dequeues well inside its
    // 1 ms budget — but the heavy solve takes far longer, so the deadline
    // passes *during* execution. The finished result must be answered
    // `expired` (and counted), never as a stale success.
    let heavy = scenario_json(8, 14);
    let lines = vec![
        format!(r#"{{"id":1,"cmd":"plan","scenario":{heavy},"deadline_ms":1}}"#),
        r#"{"cmd":"shutdown"}"#.to_string(),
    ];
    let (responses, summary) = run_server(&lines, 1, 8);
    assert_eq!(
        summary.completed, 0,
        "a post-deadline result is not a success"
    );
    assert_eq!(summary.expired, 1);
    assert_eq!(summary.errors, 1);
    let expired = response_with_id(&responses, 1);
    assert!(!response_ok(&expired));
    assert_eq!(error_kind(&expired), "expired");
}

#[test]
fn explicit_zero_deadline_is_a_bad_request() {
    // `deadline_ms: 0` can only mean "already expired" — it is rejected
    // outright, while omitting the field (or JSON `null`) still means
    // "no deadline" and the request completes normally.
    let light = scenario_json(9, 5);
    let lines = vec![
        format!(r#"{{"id":1,"cmd":"plan","scenario":{light},"deadline_ms":0}}"#),
        format!(r#"{{"id":2,"cmd":"plan","scenario":{light}}}"#),
        format!(r#"{{"id":3,"cmd":"plan","scenario":{light},"deadline_ms":null}}"#),
        r#"{"cmd":"shutdown"}"#.to_string(),
    ];
    let (responses, summary) = run_server(&lines, 1, 8);
    let rejected = response_with_id(&responses, 1);
    assert_eq!(error_kind(&rejected), "bad_request");
    let Value::String(message) = rejected.field("error").field("message") else {
        panic!("bad_request carries no message");
    };
    assert!(
        message.contains("deadline_ms must be >= 1"),
        "message must explain the semantics, got '{message}'"
    );
    assert!(response_ok(&response_with_id(&responses, 2)));
    assert!(response_ok(&response_with_id(&responses, 3)));
    assert_eq!(summary.completed, 2);
    assert_eq!(summary.bad_request, 1);
}

#[test]
fn online_step_plans_pending_requests_and_validates_input() {
    let light = scenario_json(9, 6);
    let lines = vec![
        format!(r#"{{"id":1,"cmd":"online_step","scenario":{light},"pending":[0,2,4]}}"#),
        format!(r#"{{"id":2,"cmd":"online_step","scenario":{light},"pending":[]}}"#),
        format!(r#"{{"id":3,"cmd":"online_step","scenario":{light},"pending":[99]}}"#),
        format!(r#"{{"id":4,"cmd":"online_step","scenario":{light},"pending":[0],"algo":"fcfs"}}"#),
        r#"{"cmd":"shutdown"}"#.to_string(),
    ];
    let (responses, summary) = run_server(&lines, 1, 8);
    let planned = response_with_id(&responses, 1);
    assert!(response_ok(&planned));
    let Value::Array(groups) = planned.field("result").field("groups") else {
        panic!("online_step must answer a groups array");
    };
    assert!(!groups.is_empty());
    // Members are mapped back to *original* device ids.
    let mut members: Vec<u64> = groups
        .iter()
        .flat_map(|g| match g.field("members") {
            Value::Array(ms) => ms
                .iter()
                .map(|m| match m {
                    Value::Number(serde::value::Number::PosInt(v)) => *v,
                    other => panic!("member must be an id, got {other:?}"),
                })
                .collect::<Vec<_>>(),
            other => panic!("groups carry member arrays, got {other:?}"),
        })
        .collect();
    members.sort_unstable();
    assert_eq!(members, vec![0, 2, 4]);
    assert_eq!(error_kind(&response_with_id(&responses, 2)), "bad_request");
    assert_eq!(error_kind(&response_with_id(&responses, 3)), "bad_request");
    assert!(
        response_ok(&response_with_id(&responses, 4)),
        "fcfs policy serves"
    );
    assert_eq!(summary.completed, 2);
    assert_eq!(summary.bad_request, 2);
}

#[test]
fn lifetime_with_zero_rounds_is_a_bad_request() {
    // Zero rounds would trip `run_lifetime`'s assert; the handler must
    // answer `bad_request`, not a caught panic (`internal`).
    let light = scenario_json(9, 5);
    let lines = vec![
        format!(r#"{{"id":1,"cmd":"lifetime","scenario":{light},"rounds":0}}"#),
        r#"{"cmd":"shutdown"}"#.to_string(),
    ];
    let (responses, summary) = run_server(&lines, 1, 8);
    assert_eq!(error_kind(&response_with_id(&responses, 1)), "bad_request");
    assert_eq!(summary.panics, 0, "validation must fire before the assert");
    assert_eq!(summary.bad_request, 1);
}

#[test]
fn unix_socket_serves_and_drains() {
    use std::io::{BufRead, BufReader};
    use std::os::unix::net::UnixStream;

    let socket = std::env::temp_dir().join(format!("ccs-serve-test-{}.sock", std::process::id()));
    let socket = socket.to_string_lossy().into_owned();
    let config = ServeConfig {
        workers: 1,
        queue_depth: 4,
        stats_every: None,
        ..ServeConfig::default()
    };
    let summary = std::thread::scope(|scope| {
        let daemon = {
            let socket = socket.clone();
            let config = config.clone();
            scope.spawn(move || serve_unix(&socket, &config))
        };
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !std::path::Path::new(&socket).exists() {
            assert!(
                std::time::Instant::now() < deadline,
                "socket never appeared"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }

        let stream = UnixStream::connect(&socket).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        writeln!(writer, r#"{{"id":1,"cmd":"ping"}}"#).expect("write");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        assert_eq!(line.trim(), r#"{"id":1,"ok":true,"result":{"pong":true}}"#);

        writeln!(writer, r#"{{"cmd":"shutdown"}}"#).expect("write");
        daemon.join().expect("daemon thread").expect("daemon bind")
    });
    assert_eq!(summary.completed, 1);
    assert!(
        !std::path::Path::new(&socket).exists(),
        "socket file removed"
    );
}

/// The line-cap regression (ISSUE 8): a request line past
/// `max_line_bytes` is answered with `bad_request` instead of being
/// buffered without bound, and the connection resynchronizes — the next
/// request on the same stream is served normally.
#[test]
fn oversized_request_line_is_rejected_and_the_stream_resyncs() {
    let scenario = scenario_json(11, 6);
    let huge = format!(
        r#"{{"id":1,"cmd":"plan","scenario":{scenario},"pad":"{}"}}"#,
        "x".repeat(8192)
    );
    let lines = [
        huge,
        format!(r#"{{"id":2,"cmd":"plan","scenario":{scenario}}}"#),
        r#"{"cmd":"shutdown"}"#.to_string(),
    ];
    let input = std::io::Cursor::new(lines.join("\n").into_bytes());
    let out = SharedBuf::default();
    let config = ServeConfig {
        workers: 1,
        queue_depth: 8,
        stats_every: None,
        max_line_bytes: 4096,
        ..ServeConfig::default()
    };
    let summary = serve_connection(input, Box::new(out.clone()), &config);
    let bytes = out.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("responses are UTF-8");
    let responses: Vec<String> = text.lines().map(str::to_string).collect();

    // The oversized line's response has a null id (the line was never
    // parsed), kind bad_request, and a message naming the cap.
    let rejected = responses
        .iter()
        .map(|l| serde_json::from_str::<Value>(l).expect("response parses"))
        .find(|v| v.field("id") == &Value::Null && v.field("ok") == &Value::Bool(false))
        .expect("the oversized line was answered");
    assert_eq!(error_kind(&rejected), "bad_request");
    let Value::String(message) = rejected.field("error").field("message") else {
        panic!("error.message missing: {rejected:?}");
    };
    assert!(message.contains("4096-byte cap"), "{message}");

    // The stream resynchronized: the follow-up plan was served.
    let plan = response_with_id(&responses, 2);
    assert_eq!(plan.field("ok"), &Value::Bool(true));
    assert_eq!(summary.completed, 1);
    assert_eq!(summary.bad_request, 1);
}
