//! Observability integration tests: the `stats` protocol command, the
//! versioned snapshot shape, the slow-request trace, and the guarantee
//! that observing the daemon never perturbs plan bytes.

use ccs_serve::prelude::*;
use ccs_serve::STATS_SCHEMA;
use ccs_wrsn::scenario::ScenarioGenerator;
use serde::value::Value;
use serde::Serialize;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A `Write` sink the test can read back after the server returns.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn run_server_with(lines: &[String], config: &ServeConfig) -> (Vec<String>, ServeSummary) {
    let input = std::io::Cursor::new(lines.join("\n").into_bytes());
    let out = SharedBuf::default();
    let summary = serve_connection(input, Box::new(out.clone()), config);
    let bytes = out.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("responses are UTF-8");
    (text.lines().map(str::to_string).collect(), summary)
}

fn scenario_json(seed: u64, devices: usize) -> String {
    let scenario = ScenarioGenerator::new(seed)
        .devices(devices)
        .chargers(3)
        .generate();
    serde_json::to_string(&scenario.to_value()).expect("scenario serializes")
}

fn response_with_id(lines: &[String], id: u64) -> Value {
    for line in lines {
        let value: Value = serde_json::from_str(line).expect("response parses");
        if let Value::Number(n) = value.field("id") {
            if n.as_f64() == id as f64 {
                return value;
            }
        }
    }
    panic!("no response with id {id} in {lines:#?}");
}

fn plan_text(response: &Value) -> String {
    match response.field("result").field("text") {
        Value::String(s) => s.clone(),
        other => panic!("plan response carries no text field: {other:?}"),
    }
}

fn keys(value: &Value) -> Vec<&str> {
    value
        .as_object()
        .expect("object")
        .keys()
        .map(String::as_str)
        .collect()
}

fn u64_field(value: &Value, key: &str) -> u64 {
    match value.field(key) {
        Value::Number(n) => n.as_f64() as u64,
        other => panic!("'{key}' is not a number: {other:?}"),
    }
}

/// The golden shape of the versioned stats snapshot: a client written
/// against `ccs-serve-stats/v1` must find exactly these keys, and the
/// counters must satisfy the quiescent-observer invariants. Runs over a
/// Unix socket so the client can sequence requests deterministically:
/// once a response has been read, its counters are settled.
#[test]
fn stats_snapshot_is_versioned_and_consistent() {
    use std::io::{BufRead, BufReader};
    use std::os::unix::net::UnixStream;

    let socket = std::env::temp_dir().join(format!("ccs-stats-test-{}.sock", std::process::id()));
    let socket = socket.to_string_lossy().into_owned();
    let config = ServeConfig {
        workers: 1,
        queue_depth: 8,
        stats_every: None,
        ..ServeConfig::default()
    };
    std::thread::scope(|scope| {
        let daemon = {
            let socket = socket.clone();
            let config = config.clone();
            scope.spawn(move || serve_unix(&socket, &config))
        };
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !std::path::Path::new(&socket).exists() {
            assert!(
                std::time::Instant::now() < deadline,
                "socket never appeared"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }

        let stream = UnixStream::connect(&socket).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        let mut read_line = || {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            serde_json::from_str::<Value>(line.trim()).expect("response parses")
        };

        // One successful plan, then one bad request — both fully answered
        // before the snapshot is taken.
        let scenario = scenario_json(31, 6);
        writeln!(writer, r#"{{"id":1,"cmd":"plan","scenario":{scenario}}}"#).expect("write");
        let plan = read_line();
        assert_eq!(plan.field("ok"), &Value::Bool(true));
        writeln!(writer, r#"{{"id":2,"cmd":"warp"}}"#).expect("write");
        let bad = read_line();
        assert_eq!(bad.field("ok"), &Value::Bool(false));

        // Latency histograms fold in just *after* the response line is
        // written (end-to-end latency includes the write), so poll until
        // the plan sample has landed.
        let snapshot = loop {
            writeln!(writer, r#"{{"id":3,"cmd":"stats"}}"#).expect("write");
            let response = read_line();
            assert_eq!(response.field("ok"), &Value::Bool(true));
            let snapshot = response.field("result").clone();
            let count = u64_field(snapshot.field("latency_us").field("serve.plan"), "count");
            if count >= 1 {
                break snapshot;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "plan sample never landed"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        };

        writeln!(writer, r#"{{"cmd":"shutdown"}}"#).expect("write");
        daemon.join().expect("daemon thread").expect("daemon bind");

        // Golden key sets — schema v1 clients depend on these names.
        assert_eq!(
            snapshot.field("schema"),
            &Value::String(STATS_SCHEMA.to_string())
        );
        assert_eq!(
            keys(&snapshot),
            [
                "cache",
                "latency_us",
                "queue",
                "requests",
                "schema",
                "uptime_s"
            ]
        );
        let requests = snapshot.field("requests");
        assert_eq!(
            keys(requests),
            [
                "admitted",
                "bad_request",
                "completed",
                "errors",
                "expired",
                "failed",
                "panics",
                "rejected",
                "slow"
            ]
        );
        assert_eq!(
            keys(snapshot.field("queue")),
            ["capacity", "depth", "high_water"]
        );
        assert_eq!(
            keys(snapshot.field("cache")),
            [
                "bytes",
                "evictions",
                "plan_hits",
                "plans",
                "scenario_hits",
                "scenarios"
            ]
        );
        assert!(
            u64_field(snapshot.field("cache"), "bytes") > 0,
            "a cached scenario has a non-zero byte estimate"
        );
        let plan_latency = snapshot.field("latency_us").field("serve.plan");
        assert_eq!(
            keys(plan_latency),
            ["count", "max", "mean", "p50", "p90", "p99", "p999"]
        );

        // Counter invariants for a quiescent observer.
        assert_eq!(u64_field(requests, "admitted"), 1);
        assert_eq!(u64_field(requests, "bad_request"), 1);
        assert_eq!(
            u64_field(requests, "errors"),
            u64_field(requests, "bad_request")
                + u64_field(requests, "expired")
                + u64_field(requests, "failed")
                + u64_field(requests, "panics")
        );
        assert!(
            u64_field(plan_latency, "p50") > 0,
            "a real plan takes non-zero microseconds: {plan_latency:?}"
        );
        assert!(u64_field(plan_latency, "p99") >= u64_field(plan_latency, "p50"));
        assert!(u64_field(plan_latency, "max") >= u64_field(plan_latency, "p99"));
        assert_eq!(u64_field(snapshot.field("queue"), "capacity"), 8);
    });
    let _ = std::fs::remove_file(&socket);
}

/// Observing the daemon must be free: interleaved `stats` requests plus
/// request tracing and a slow log must not change a single byte of the
/// served plan.
#[test]
fn stats_mid_load_does_not_perturb_plan_bytes() {
    let scenario = scenario_json(32, 8);
    let quiet_lines = vec![
        format!(r#"{{"id":1,"cmd":"plan","scenario":{scenario},"algo":"ccsa"}}"#),
        r#"{"cmd":"shutdown"}"#.to_string(),
    ];
    let quiet_config = ServeConfig {
        workers: 1,
        queue_depth: 8,
        stats_every: None,
        ..ServeConfig::default()
    };
    let (quiet, _) = run_server_with(&quiet_lines, &quiet_config);
    let baseline = plan_text(&response_with_id(&quiet, 1));

    let dir = std::env::temp_dir().join(format!("ccs-stats-identity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.jsonl");
    let observed_lines = vec![
        r#"{"id":10,"cmd":"stats"}"#.to_string(),
        format!(r#"{{"id":1,"cmd":"plan","scenario":{scenario},"algo":"ccsa"}}"#),
        r#"{"id":11,"cmd":"stats"}"#.to_string(),
        format!(r#"{{"id":2,"cmd":"plan","scenario":{scenario},"algo":"ccsa"}}"#),
        r#"{"id":12,"cmd":"stats"}"#.to_string(),
        r#"{"cmd":"shutdown"}"#.to_string(),
    ];
    let observed_config = ServeConfig {
        workers: 2,
        queue_depth: 8,
        stats_every: None,
        trace_requests: Some(trace_path.to_string_lossy().into_owned()),
        slow_ms: Some(10_000),
        ..ServeConfig::default()
    };
    let (observed, summary) = run_server_with(&observed_lines, &observed_config);
    assert_eq!(summary.errors, 0, "stats and tracing introduce no errors");

    for id in [1, 2] {
        assert_eq!(
            plan_text(&response_with_id(&observed, id)),
            baseline,
            "plan bytes changed under observation (id {id})"
        );
    }
    for id in [10, 11, 12] {
        let stats = response_with_id(&observed, id);
        assert_eq!(stats.field("ok"), &Value::Bool(true));
        assert_eq!(
            stats.field("result").field("schema"),
            &Value::String(STATS_SCHEMA.to_string())
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The slow log: with a zero threshold every pipelined request is flagged
/// slow in its trace line; with a huge threshold none are. The trace file
/// is complete by the time the server has drained.
#[test]
fn slow_threshold_flags_trace_lines() {
    let dir = std::env::temp_dir().join(format!("ccs-slow-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let scenario = scenario_json(33, 6);
    let lines = vec![
        format!(r#"{{"id":1,"cmd":"plan","scenario":{scenario}}}"#),
        r#"{"cmd":"shutdown"}"#.to_string(),
    ];

    let run = |trace_path: &std::path::Path, slow_ms: Option<u64>| {
        let config = ServeConfig {
            workers: 1,
            queue_depth: 8,
            stats_every: None,
            trace_requests: Some(trace_path.to_string_lossy().into_owned()),
            slow_ms,
            ..ServeConfig::default()
        };
        let (_, summary) = run_server_with(&lines, &config);
        assert_eq!(summary.completed, 1);
        let text = std::fs::read_to_string(trace_path).expect("trace file written");
        let traces: Vec<Value> = text
            .lines()
            .map(|l| serde_json::from_str(l).expect("trace line parses"))
            .collect();
        assert_eq!(traces.len(), 1, "one trace line per pipelined request");
        traces.into_iter().next().unwrap()
    };

    // Zero threshold: every request is at least 0 ms end-to-end.
    let slow = run(&dir.join("slow.jsonl"), Some(0));
    assert_eq!(slow.field("slow"), &Value::Bool(true));
    assert_eq!(slow.field("cmd"), &Value::String("plan".to_string()));
    assert_eq!(slow.field("status"), &Value::String("ok".to_string()));
    assert_eq!(
        keys(&slow),
        ["cmd", "phases_us", "req_id", "slow", "status", "total_us"]
    );
    assert!(
        slow.field("phases_us")
            .as_object()
            .unwrap()
            .contains_key("solve"),
        "a computed plan records a solve phase: {slow:?}"
    );

    // A ten-minute threshold: nothing in this test is that slow.
    let fast = run(&dir.join("fast.jsonl"), Some(600_000));
    assert_eq!(fast.field("slow"), &Value::Bool(false));
    let _ = std::fs::remove_dir_all(&dir);
}
