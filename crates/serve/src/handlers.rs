//! Request handlers: one function per protocol command, all returning
//! `Result<Value, ServeError>` — every failure mode of the underlying
//! stack (bad scenarios, solver budget errors, degenerate schedules) is
//! mapped to a structured error at this boundary. Handlers call only the
//! *fallible* core APIs (`try_average_cost`, `try_saving_percent`, …);
//! a caught panic in anything below is the server's last line of defense,
//! not the expected path.

use crate::cache::{CachedPlan, PlanCache};
use crate::obs::{Phase, ReqTrace};
use crate::protocol::{fields, ServeError};
use ccs_core::prelude::*;
use ccs_testbed::prelude::*;
use ccs_wrsn::entities::DeviceId;
use serde::value::{Number, Value};
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Builds a JSON object from key/value pairs.
fn obj(pairs: Vec<(&str, Value)>) -> Value {
    let mut map = BTreeMap::new();
    for (k, v) in pairs {
        map.insert(k.to_string(), v);
    }
    Value::Object(map)
}

fn num(x: f64) -> Value {
    Value::Number(Number::Float(x))
}

fn uint(x: u64) -> Value {
    Value::Number(Number::PosInt(x))
}

/// What a handler produced, plus cache-accounting for the stats layer.
pub struct Handled {
    /// The response `result` tree.
    pub result: Value,
    /// Scenario-cache hit (a `ProblemTables` rebuild was avoided).
    pub scenario_hit: Option<bool>,
    /// Plan-memo hit (a full plan computation was avoided).
    pub plan_hit: Option<bool>,
}

/// Dispatches one admitted request, recording the cache-lookup, tables,
/// and solve phases into `trace`.
///
/// # Errors
///
/// Every invalid field, missing scenario, or domain failure comes back as
/// a [`ServeError`]; this function never panics on malformed input (a
/// panic deeper in the stack is caught by the worker).
pub fn handle(
    cache: &PlanCache,
    cmd: &str,
    body: &Value,
    trace: &mut ReqTrace,
) -> Result<Handled, ServeError> {
    match cmd {
        "plan" => handle_plan(cache, body, trace),
        "replay" => handle_replay(cache, body, trace),
        "lifetime" => handle_lifetime(cache, body, trace),
        "online_step" => handle_online_step(cache, body, trace),
        other => Err(ServeError::bad_request(format!("unknown cmd '{other}'"))),
    }
}

/// One stateless online re-plan: `pending` lists the device ids with an
/// open charging request; the response is the residual schedule with
/// members mapped back to original ids — the daemon-side ingest path of
/// the online mode (`ccs online` drives the full event loop locally).
fn handle_online_step(
    cache: &PlanCache,
    body: &Value,
    trace: &mut ReqTrace,
) -> Result<Handled, ServeError> {
    let _span = ccs_telemetry::global().span("serve.online_step");
    let (_, problem, scenario_hit) = load_problem(cache, body, trace)?;
    let sharing = sharing_name(body)?;
    let scheme = make_sharing(sharing);
    let policy = match fields::str_or(body, "algo", "ccsga")? {
        "ccsga" => OnlinePolicy::Ccsga(CcsgaOptions {
            worklist: true,
            ..CcsgaOptions::default()
        }),
        "fcfs" => OnlinePolicy::Fcfs,
        other => {
            return Err(ServeError::bad_request(format!(
                "unknown online policy '{other}' (want 'ccsga' or 'fcfs')"
            )))
        }
    };
    let n = problem.num_devices();
    let pending = match body.field("pending") {
        Value::Array(items) if !items.is_empty() => {
            let mut ids = Vec::with_capacity(items.len());
            for item in items {
                let Value::Number(Number::PosInt(id)) = item else {
                    return Err(ServeError::bad_request(format!(
                        "'pending' entries must be device ids, got {}",
                        item.kind()
                    )));
                };
                if *id >= n as u64 {
                    return Err(ServeError::bad_request(format!(
                        "pending device {id} outside the {n}-device scenario"
                    )));
                }
                ids.push(DeviceId::new(*id as u32));
            }
            ids
        }
        Value::Array(_) | Value::Null => {
            return Err(ServeError::bad_request(
                "'pending' must be a non-empty array of device ids",
            ))
        }
        other => {
            return Err(ServeError::bad_request(format!(
                "'pending' must be an array, got {}",
                other.kind()
            )))
        }
    };
    let schedule = trace.time(Phase::Solve, || {
        plan_step(&problem, &pending, scheme.as_ref(), policy)
    });
    let groups: Vec<Value> = schedule
        .groups()
        .iter()
        .map(|g| {
            let members: Vec<Value> = g
                .members
                .iter()
                .map(|m| uint(pending[m.index()].index() as u64))
                .collect();
            obj(vec![
                ("bill", num(g.bill.total().value())),
                ("charger", uint(g.charger.index() as u64)),
                (
                    "gathering_point",
                    Value::Array(vec![num(g.gathering_point.x), num(g.gathering_point.y)]),
                ),
                ("members", Value::Array(members)),
            ])
        })
        .collect();
    Ok(Handled {
        result: obj(vec![
            ("groups", Value::Array(groups)),
            ("pending", uint(pending.len() as u64)),
            ("total_cost", num(schedule.total_cost().value())),
        ]),
        scenario_hit: Some(scenario_hit),
        plan_hit: Some(false),
    })
}

/// Loads the request's scenario — inline `scenario` object or
/// `scenario_path` file — through the cache, then forces the
/// `ProblemTables` kernel so the tables build is timed apart from the
/// solve (a no-op on a scenario-cache hit).
fn load_problem(
    cache: &PlanCache,
    body: &Value,
    trace: &mut ReqTrace,
) -> Result<(u64, Arc<CcsProblem>, bool), ServeError> {
    let (hash, problem, hit) = trace.time(Phase::CacheLookup, || lookup_problem(cache, body))?;
    trace.time(Phase::Tables, || {
        problem.tables();
    });
    Ok((hash, problem, hit))
}

fn lookup_problem(
    cache: &PlanCache,
    body: &Value,
) -> Result<(u64, Arc<CcsProblem>, bool), ServeError> {
    match body.field("scenario") {
        Value::Null => {}
        value @ Value::Object(_) => return cache.problem(value),
        other => {
            return Err(ServeError::bad_request(format!(
                "field 'scenario' must be an object, got {}",
                other.kind()
            )))
        }
    }
    match body.field("scenario_path") {
        Value::String(path) => {
            let json = std::fs::read_to_string(path)
                .map_err(|e| ServeError::bad_request(format!("reading {path}: {e}")))?;
            let value: Value = serde_json::from_str(&json)
                .map_err(|e| ServeError::bad_request(format!("parsing {path}: {e}")))?;
            cache.problem(&value)
        }
        Value::Null => Err(ServeError::bad_request(
            "missing 'scenario' (inline object) or 'scenario_path' (file)",
        )),
        other => Err(ServeError::bad_request(format!(
            "field 'scenario_path' must be a string, got {}",
            other.kind()
        ))),
    }
}

/// Interns the algorithm name (also the cache-key lifetime trick).
fn algo_name(body: &Value) -> Result<&'static str, ServeError> {
    match fields::str_or(body, "algo", "ccsa")? {
        "ccsa" => Ok("ccsa"),
        "ccsga" => Ok("ccsga"),
        "ncp" => Ok("ncp"),
        "opt" => Ok("opt"),
        other => Err(ServeError::bad_request(format!(
            "unknown algorithm '{other}'"
        ))),
    }
}

fn sharing_name(body: &Value) -> Result<&'static str, ServeError> {
    match fields::str_or(body, "sharing", "equal")? {
        "equal" => Ok("equal"),
        "proportional" => Ok("proportional"),
        "shapley" => Ok("shapley"),
        other => Err(ServeError::bad_request(format!(
            "unknown sharing scheme '{other}'"
        ))),
    }
}

fn make_sharing(name: &str) -> Box<dyn CostSharing> {
    match name {
        "proportional" => Box::new(ProportionalShare),
        "shapley" => Box::new(ShapleyShare),
        _ => Box::new(EqualShare),
    }
}

fn noise_model(body: &Value) -> Result<NoiseModel, ServeError> {
    match fields::str_or(body, "noise", "field")? {
        "ideal" => Ok(NoiseModel::ideal()),
        "field" => Ok(NoiseModel::field()),
        other => Err(ServeError::bad_request(format!(
            "unknown noise model '{other}'"
        ))),
    }
}

fn probability(body: &Value, key: &str) -> Result<f64, ServeError> {
    let p = fields::f64_or(body, key, 0.0)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(ServeError::bad_request(format!(
            "field '{key}' must be a probability in [0, 1], got {p}"
        )));
    }
    Ok(p)
}

fn failure_model(body: &Value) -> Result<FailureModel, ServeError> {
    Ok(FailureModel {
        charger_breakdown_prob: probability(body, "breakdown")?,
        device_no_show_prob: probability(body, "noshow")?,
    })
}

fn recovery_config(body: &Value) -> Result<Option<RecoveryConfig>, ServeError> {
    let max_rounds = fields::u64_or(body, "recover", 0)? as usize;
    if max_rounds == 0 {
        return Ok(None);
    }
    Ok(Some(RecoveryConfig {
        max_rounds,
        degrade: fields::bool_or(body, "degrade", true)?,
    }))
}

/// The memoized plan for `(scenario, algo, sharing)`.
fn plan_cached(
    cache: &PlanCache,
    hash: u64,
    problem: &CcsProblem,
    algo: &'static str,
    sharing: &'static str,
) -> Result<(Arc<CachedPlan>, bool), ServeError> {
    cache.plan(hash, algo, sharing, || {
        let scheme = make_sharing(sharing);
        let schedule = match algo {
            "ccsa" => ccsa(problem, scheme.as_ref(), CcsaOptions::default()),
            "ccsga" => ccsga(problem, scheme.as_ref(), CcsgaOptions::default()).schedule,
            "ncp" => noncooperation(problem, scheme.as_ref()),
            "opt" => optimal(problem, scheme.as_ref(), OptimalOptions::default())
                .map_err(|e| ServeError::failed(e.to_string()))?,
            other => {
                return Err(ServeError::bad_request(format!(
                    "unknown algorithm '{other}'"
                )))
            }
        };
        schedule
            .validate(problem)
            .map_err(|e| ServeError::failed(format!("schedule failed validation: {e}")))?;
        let result = obj(vec![
            ("algorithm", Value::String(schedule.algorithm().to_string())),
            (
                "average_cost",
                schedule
                    .try_average_cost()
                    .map_or(Value::Null, |c| num(c.value())),
            ),
            ("groups", uint(schedule.groups().len() as u64)),
            ("schedule", schedule.to_value()),
            ("sharing", Value::String(schedule.sharing().to_string())),
            ("text", Value::String(schedule.to_string())),
            ("total_cost", num(schedule.total_cost().value())),
        ]);
        Ok(CachedPlan { schedule, result })
    })
}

fn handle_plan(
    cache: &PlanCache,
    body: &Value,
    trace: &mut ReqTrace,
) -> Result<Handled, ServeError> {
    let _span = ccs_telemetry::global().span("serve.plan");
    let (hash, problem, scenario_hit) = load_problem(cache, body, trace)?;
    let algo = algo_name(body)?;
    let sharing = sharing_name(body)?;
    let (plan, plan_hit) = trace.time(Phase::Solve, || {
        plan_cached(cache, hash, &problem, algo, sharing)
    })?;
    Ok(Handled {
        result: plan.result.clone(),
        scenario_hit: Some(scenario_hit),
        plan_hit: Some(plan_hit),
    })
}

fn handle_replay(
    cache: &PlanCache,
    body: &Value,
    trace: &mut ReqTrace,
) -> Result<Handled, ServeError> {
    let _span = ccs_telemetry::global().span("serve.replay");
    let (hash, problem, scenario_hit) = load_problem(cache, body, trace)?;
    let sharing = sharing_name(body)?;
    let scheme = make_sharing(sharing);
    let seed = fields::u64_or(body, "seed", 0)?;
    let noise = noise_model(body)?;
    let failures = failure_model(body)?;
    // Replay executes the cooperative (CCSA) plan, mirroring `ccs replay`.
    let (plan, plan_hit) = trace.time(Phase::Solve, || {
        plan_cached(cache, hash, &problem, "ccsa", sharing)
    })?;
    let run = trace.time(Phase::Solve, || {
        execute_with_failures(
            &problem,
            &plan.schedule,
            scheme.as_ref(),
            &noise,
            &failures,
            seed,
        )
    });
    let served = run.served.iter().filter(|s| **s).count();
    let mut pairs = vec![
        ("devices", uint(run.served.len() as u64)),
        ("makespan_s", num(run.makespan.value())),
        (
            "mean_wait_s",
            if served > 0 {
                num(run.average_wait().value())
            } else {
                Value::Null
            },
        ),
        ("planned_cost", num(plan.schedule.total_cost().value())),
        ("realized_cost", num(run.total_cost().value())),
        ("served", uint(served as u64)),
    ];
    if let Some(config) = recovery_config(body)? {
        let out = trace.time(Phase::Solve, || {
            recover(
                &problem,
                &plan.schedule,
                Policy::Ccsa(CcsaOptions::default()),
                scheme.as_ref(),
                &noise,
                &failures,
                seed,
                &config,
            )
        });
        pairs.push((
            "recovery",
            obj(vec![
                ("extra_rounds", uint(out.recovery_rounds() as u64)),
                ("served_fraction", num(out.served_fraction())),
                ("total_cost", num(out.total_cost().value())),
            ]),
        ));
    }
    Ok(Handled {
        result: obj(pairs),
        scenario_hit: Some(scenario_hit),
        plan_hit: Some(plan_hit),
    })
}

fn handle_lifetime(
    cache: &PlanCache,
    body: &Value,
    trace: &mut ReqTrace,
) -> Result<Handled, ServeError> {
    let _span = ccs_telemetry::global().span("serve.lifetime");
    let (_, problem, scenario_hit) = load_problem(cache, body, trace)?;
    let sharing = sharing_name(body)?;
    let scheme = make_sharing(sharing);
    let rounds = fields::u64_or(body, "rounds", 20)? as usize;
    if rounds == 0 {
        // `run_lifetime` asserts on this; surface it as a clean protocol
        // error rather than a caught panic (`internal`).
        return Err(ServeError::bad_request("rounds must be >= 1"));
    }
    let seed = fields::u64_or(body, "seed", 0)?;
    let policy = match fields::str_or(body, "policy", "ccsa")? {
        "ccsa" => Policy::Ccsa(CcsaOptions::default()),
        "ccsga" => Policy::Ccsga(CcsgaOptions::default()),
        "ncp" => Policy::Noncooperative,
        other => return Err(ServeError::bad_request(format!("unknown policy '{other}'"))),
    };
    let config = LifetimeConfig {
        rounds,
        seed,
        ..Default::default()
    };
    let failures = failure_model(body)?;
    let recovery = recovery_config(body)?;
    let faulty = failures != FailureModel::none()
        || recovery.is_some()
        || !matches!(body.field("noise"), Value::Null);
    let scenario = problem.scenario();
    let noise = if faulty {
        Some(noise_model(body)?)
    } else {
        None
    };
    let report = trace.time(Phase::Solve, || {
        if let Some(noise) = &noise {
            let mut driver =
                TestbedDriver::new(noise, &failures, scheme.as_ref(), policy, recovery, seed);
            run_lifetime_with(
                scenario,
                &CostParams::default(),
                scheme.as_ref(),
                policy,
                &config,
                &mut driver,
            )
        } else {
            run_lifetime(
                scenario,
                &CostParams::default(),
                scheme.as_ref(),
                policy,
                &config,
            )
        }
    });
    Ok(Handled {
        result: obj(vec![
            ("energy_kj", num(report.energy_purchased.value() / 1000.0)),
            ("hires", uint(report.hires as u64)),
            ("policy", Value::String(policy.name().to_string())),
            ("rounds", uint(rounds as u64)),
            ("survival_rate", num(report.survival_rate)),
            ("testbed", Value::Bool(faulty)),
            ("total_cost", num(report.total_cost.value())),
            ("unserved_requests", uint(report.unserved_requests as u64)),
        ]),
        scenario_hit: Some(scenario_hit),
        plan_hit: None,
    })
}
