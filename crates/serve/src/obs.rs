//! Request-scoped tracing and the live metrics surface of the daemon.
//!
//! Every admitted request gets a stable `req_id` and a [`ReqTrace`] that
//! rides with the job through the pipeline, timing each [`Phase`]
//! (admission, queue wait, cache lookup, tables build, solve, serialize).
//! When the response is written the trace folds into [`ServeObs`]:
//!
//! * per-command and per-phase latency histograms (log-linear, bounded
//!   memory, mergeable — [`ccs_telemetry::hist`]);
//! * an optional one-line-JSON-per-request trace file (`--trace-requests`,
//!   size-capped via [`ccs_telemetry::RotatingWriter`]);
//! * a slow-request log: any request whose end-to-end latency crosses
//!   `--slow-ms` is counted, flagged `"slow":true` in its trace line, and
//!   echoed to stderr with its full phase breakdown.
//!
//! The aggregated state is queryable at any time as a versioned JSON
//! snapshot ([`STATS_SCHEMA`]) — served by the `{"cmd":"stats"}` protocol
//! command, printed by the `--stats-every` ticker, and rendered to
//! Prometheus text format for `--metrics-file`.

use ccs_telemetry::{Histogram, HistogramSnapshot, RotatingWriter};
use serde::value::{Number, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Version tag of the stats snapshot JSON. Consumers must check it:
/// additions bump nothing, renames/removals bump the suffix.
pub const STATS_SCHEMA: &str = "ccs-serve-stats/v1";

/// The timed stages of one request's journey through the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Parsing the request line and the admission decision.
    Admission,
    /// Sitting in the admission queue waiting for a worker.
    QueueWait,
    /// Scenario parse / cache lookup (`CcsProblem` construction on miss).
    CacheLookup,
    /// Forcing the `ProblemTables` kernel (near-zero when already built).
    Tables,
    /// The planner / testbed computation itself.
    Solve,
    /// Rendering the response line.
    Serialize,
}

/// All phases, in pipeline order.
pub const PHASES: [Phase; 6] = [
    Phase::Admission,
    Phase::QueueWait,
    Phase::CacheLookup,
    Phase::Tables,
    Phase::Solve,
    Phase::Serialize,
];

impl Phase {
    /// The snapshot/trace key of this phase.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Admission => "admission",
            Phase::QueueWait => "queue_wait",
            Phase::CacheLookup => "cache_lookup",
            Phase::Tables => "tables",
            Phase::Solve => "solve",
            Phase::Serialize => "serialize",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Admission => 0,
            Phase::QueueWait => 1,
            Phase::CacheLookup => 2,
            Phase::Tables => 3,
            Phase::Solve => 4,
            Phase::Serialize => 5,
        }
    }
}

/// The protocol commands that flow through the worker pipeline (and
/// therefore get end-to-end latency histograms).
pub const COMMANDS: [&str; 3] = ["plan", "replay", "lifetime"];

fn command_index(cmd: &str) -> Option<usize> {
    COMMANDS.iter().position(|c| *c == cmd)
}

/// One request's timing record, created at admission and carried through
/// the pipeline with the job. Phase recording is plain mutation — the
/// trace is owned by whichever thread holds the request.
#[derive(Debug)]
pub struct ReqTrace {
    /// Stable per-server request id (assigned at admission, monotonic).
    pub req_id: u64,
    started: Instant,
    phase_ns: [u64; PHASES.len()],
}

impl ReqTrace {
    /// Adds `ns` to `phase` (phases hit twice — e.g. two cache lookups —
    /// accumulate).
    pub fn record(&mut self, phase: Phase, ns: u64) {
        self.phase_ns[phase.index()] = self.phase_ns[phase.index()].saturating_add(ns);
    }

    /// Times `f` into `phase` and returns its output.
    pub fn time<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(phase, elapsed_ns(start));
        out
    }

    /// Nanoseconds since this trace was opened (the end-to-end clock).
    pub fn total_ns(&self) -> u64 {
        elapsed_ns(self.started)
    }
}

fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The server's aggregated observability state: request ids, latency
/// histograms, the slow counter, and the optional trace writer. One per
/// server, shared by the reader and every worker.
pub struct ServeObs {
    started: Instant,
    next_req_id: AtomicU64,
    commands: [Histogram; COMMANDS.len()],
    phases: [Histogram; PHASES.len()],
    slow: AtomicU64,
    queue_high_water: AtomicU64,
    slow_threshold: Option<Duration>,
    trace: Option<RotatingWriter>,
}

impl ServeObs {
    /// Creates the observability state. `trace` is the `--trace-requests`
    /// writer (already size-capped); `slow_threshold` the `--slow-ms`
    /// cutoff.
    pub fn new(trace: Option<RotatingWriter>, slow_threshold: Option<Duration>) -> Self {
        ServeObs {
            started: Instant::now(),
            next_req_id: AtomicU64::new(1),
            commands: std::array::from_fn(|_| Histogram::new()),
            phases: std::array::from_fn(|_| Histogram::new()),
            slow: AtomicU64::new(0),
            queue_high_water: AtomicU64::new(0),
            slow_threshold,
            trace,
        }
    }

    /// Opens the trace of one request: assigns its `req_id` and starts the
    /// end-to-end clock.
    pub fn start(&self) -> ReqTrace {
        ReqTrace {
            req_id: self.next_req_id.fetch_add(1, Ordering::Relaxed),
            started: Instant::now(),
            phase_ns: [0; PHASES.len()],
        }
    }

    /// Observes a queue depth (tracks the high-water mark).
    pub fn observe_queue_depth(&self, depth: usize) {
        self.queue_high_water
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Seconds since the server started.
    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Requests that crossed the slow threshold so far.
    pub fn slow_count(&self) -> u64 {
        self.slow.load(Ordering::Relaxed)
    }

    /// The deepest queue observed at any admission.
    pub fn high_water(&self) -> u64 {
        self.queue_high_water.load(Ordering::Relaxed)
    }

    /// Folds one finished request into the aggregates: end-to-end latency
    /// into the command's histogram, each phase into its histogram, the
    /// slow-log check, and the JSONL trace line. `status` is the response
    /// disposition (`ok`, `bad_request`, `expired`, …).
    pub fn finish(&self, trace: &ReqTrace, cmd: &str, status: &str) {
        let total_ns = trace.total_ns();
        if let Some(i) = command_index(cmd) {
            self.commands[i].record(total_ns);
        }
        for phase in PHASES {
            let ns = trace.phase_ns[phase.index()];
            if ns > 0 {
                self.phases[phase.index()].record(ns);
            }
        }
        let slow = self
            .slow_threshold
            .is_some_and(|t| Duration::from_nanos(total_ns) >= t);
        if slow {
            self.slow.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "{}",
                render_value(&trace_value(trace, cmd, status, total_ns, true))
            );
        }
        if let Some(writer) = &self.trace {
            writer.write_line(&render_value(&trace_value(
                trace, cmd, status, total_ns, slow,
            )));
        }
    }

    /// The `latency_us` object of the stats snapshot: one entry per
    /// command (`serve.<cmd>`) and per phase (`phase.<name>`), each with
    /// count/p50/p90/p99/p999/max/mean in microseconds.
    pub fn latency_value(&self) -> Value {
        let mut map = BTreeMap::new();
        for (i, cmd) in COMMANDS.iter().enumerate() {
            map.insert(
                format!("serve.{cmd}"),
                latency_entry(&self.commands[i].snapshot()),
            );
        }
        for phase in PHASES {
            map.insert(
                format!("phase.{}", phase.name()),
                latency_entry(&self.phases[phase.index()].snapshot()),
            );
        }
        Value::Object(map)
    }
}

fn trace_value(trace: &ReqTrace, cmd: &str, status: &str, total_ns: u64, slow: bool) -> Value {
    let mut phases = BTreeMap::new();
    for phase in PHASES {
        let ns = trace.phase_ns[phase.index()];
        if ns > 0 {
            phases.insert(
                phase.name().to_string(),
                Value::Number(Number::PosInt(ns / 1_000)),
            );
        }
    }
    let mut map = BTreeMap::new();
    map.insert("cmd".to_string(), Value::String(cmd.to_string()));
    map.insert("phases_us".to_string(), Value::Object(phases));
    map.insert(
        "req_id".to_string(),
        Value::Number(Number::PosInt(trace.req_id)),
    );
    map.insert("slow".to_string(), Value::Bool(slow));
    map.insert("status".to_string(), Value::String(status.to_string()));
    map.insert(
        "total_us".to_string(),
        Value::Number(Number::PosInt(total_ns / 1_000)),
    );
    Value::Object(map)
}

/// Renders one histogram snapshot (nanosecond samples) as the standard
/// microsecond latency entry (`count`/`max`/`mean`/`p50`/`p90`/`p99`/
/// `p999`) — shared by the daemon's stats snapshot and the gateway's.
pub fn latency_entry(snap: &HistogramSnapshot) -> Value {
    let us = |ns: u64| Value::Number(Number::PosInt(ns / 1_000));
    let mut map = BTreeMap::new();
    map.insert(
        "count".to_string(),
        Value::Number(Number::PosInt(snap.count)),
    );
    map.insert("max".to_string(), us(snap.max));
    map.insert(
        "mean".to_string(),
        Value::Number(Number::Float(snap.mean() / 1_000.0)),
    );
    map.insert("p50".to_string(), us(snap.quantile(0.50)));
    map.insert("p90".to_string(), us(snap.quantile(0.90)));
    map.insert("p99".to_string(), us(snap.quantile(0.99)));
    map.insert("p999".to_string(), us(snap.quantile(0.999)));
    Value::Object(map)
}

/// Renders a value tree as one canonical line (objects are `BTreeMap`s, so
/// key order is stable).
pub fn render_value(value: &Value) -> String {
    serde_json::to_string(value).expect("value tree serializes")
}

/// Renders a stats snapshot as Prometheus text exposition format: every
/// scalar leaf becomes a `ccs_`-prefixed gauge, the `latency_us` tree
/// becomes `ccs_latency_us{series="…",stat="…"}` samples.
pub fn render_prometheus(snapshot: &Value) -> String {
    let mut out = String::new();
    let Value::Object(top) = snapshot else {
        return out;
    };
    for (section, value) in top {
        match (section.as_str(), value) {
            ("schema", _) => {}
            ("latency_us", Value::Object(series)) => {
                out.push_str("# TYPE ccs_latency_us gauge\n");
                for (name, entry) in series {
                    let Value::Object(stats) = entry else {
                        continue;
                    };
                    for (stat, v) in stats {
                        if let Some(n) = prom_number(v) {
                            out.push_str(&format!(
                                "ccs_latency_us{{series=\"{name}\",stat=\"{stat}\"}} {n}\n"
                            ));
                        }
                    }
                }
            }
            (_, Value::Object(fields)) => {
                for (key, v) in fields {
                    if let Some(n) = prom_number(v) {
                        out.push_str(&format!("ccs_{section}_{key} {n}\n"));
                    }
                }
            }
            (_, v) => {
                if let Some(n) = prom_number(v) {
                    out.push_str(&format!("ccs_{section} {n}\n"));
                }
            }
        }
    }
    out
}

fn prom_number(value: &Value) -> Option<String> {
    match value {
        Value::Number(Number::PosInt(u)) => Some(u.to_string()),
        Value::Number(Number::NegInt(i)) => Some(i.to_string()),
        Value::Number(Number::Float(f)) => Some(format!("{f}")),
        _ => None,
    }
}

/// Atomically replaces `path` with `contents`: written to a sibling
/// temporary file, then renamed over, so readers never see a torn file.
/// IO errors are swallowed — metrics must never take the daemon down.
pub fn write_file_atomic(path: &str, contents: &str) {
    let tmp = format!("{path}.tmp");
    if std::fs::write(&tmp, contents).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn req_ids_are_unique_and_monotonic() {
        let obs = ServeObs::new(None, None);
        let a = obs.start();
        let b = obs.start();
        assert!(b.req_id > a.req_id);
    }

    #[test]
    fn phases_accumulate_and_flow_into_histograms() {
        let obs = ServeObs::new(None, None);
        let mut trace = obs.start();
        trace.record(Phase::Solve, 5_000);
        trace.record(Phase::Solve, 7_000);
        trace.record(Phase::QueueWait, 100);
        obs.finish(&trace, "plan", "ok");
        let latency = obs.latency_value();
        let solve = latency.field("phase.solve");
        assert_eq!(
            solve.field("count"),
            &Value::Number(Number::PosInt(1)),
            "two records in one trace are one sample"
        );
        assert_eq!(solve.field("max"), &Value::Number(Number::PosInt(12)));
        let plan = latency.field("serve.plan");
        assert_eq!(plan.field("count"), &Value::Number(Number::PosInt(1)));
    }

    #[test]
    fn slow_threshold_counts_and_flags() {
        let dir = std::env::temp_dir().join(format!("ccs-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let writer = RotatingWriter::create(path.to_str().unwrap(), 1 << 20).unwrap();
        let obs = ServeObs::new(Some(writer), Some(Duration::from_nanos(1)));
        let trace = obs.start();
        obs.finish(&trace, "plan", "ok");
        assert_eq!(obs.slow_count(), 1);
        let line = std::fs::read_to_string(&path).unwrap();
        assert!(line.contains("\"slow\":true"), "trace line: {line}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prometheus_rendering_flattens_the_snapshot() {
        let snapshot: Value = serde_json::from_str(
            r#"{"schema":"ccs-serve-stats/v1","uptime_s":1.5,
                "queue":{"depth":2,"capacity":64},
                "latency_us":{"serve.plan":{"count":3,"p50":120}}}"#,
        )
        .unwrap();
        let text = render_prometheus(&snapshot);
        assert!(text.contains("ccs_uptime_s 1.5"));
        assert!(text.contains("ccs_queue_depth 2"));
        assert!(text.contains("ccs_latency_us{series=\"serve.plan\",stat=\"p50\"} 120"));
        assert!(!text.contains("schema"), "schema tag is not a metric");
    }

    #[test]
    fn atomic_rewrite_replaces_contents() {
        let dir = std::env::temp_dir().join(format!("ccs-metrics-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.prom");
        let path = path.to_str().unwrap();
        write_file_atomic(path, "first 1\n");
        write_file_atomic(path, "second 2\n");
        assert_eq!(std::fs::read_to_string(path).unwrap(), "second 2\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
