//! The server engine: admission, worker pool, drain, and stats.
//!
//! ```text
//!  reader/acceptor ──try_push──▶ AdmissionQueue ──pop──▶ worker pool
//!        │  (reject when full)        │                     │
//!        ▼                           close()                ▼
//!  immediate error/reject        (EOF / shutdown)   catch_unwind(handle)
//!     responses                                          │
//!        └───────────────▶ shared line writer ◀──────────┘
//! ```
//!
//! * **Backpressure** — admission never blocks: a full queue produces an
//!   immediate `rejected` response, so clients always learn their fate.
//! * **Panic-proofing** — workers run every handler under
//!   [`std::panic::catch_unwind`]; a poison request yields an `internal`
//!   error response and the worker survives to serve the next job.
//! * **Deadlines** — a job whose `deadline_ms` elapsed while queued is
//!   cancelled with an `expired` response instead of occupying a worker
//!   (graceful cancellation: expired work never starts).
//! * **Drain** — EOF on stdin, a `shutdown` request, or (in socket mode)
//!   the end of the accept loop closes the queue: in-flight and queued
//!   work finishes, new work is rejected, workers exit, the process
//!   returns 0. Process supervisors should close the daemon's stdin (or
//!   send `{"cmd":"shutdown"}`) as their TERM action.

use crate::cache::{PlanCache, DEFAULT_CACHE_BYTES};
use crate::engine;
use crate::lru::lock_unpoisoned;
use crate::obs::{self, Phase, ReqTrace, ServeObs};
use crate::protocol::{err_response, ok_response, ErrorKind, ServeError};
use crate::queue::{AdmissionQueue, AdmitError};
use ccs_telemetry::RotatingWriter;
use serde::value::{Number, Value};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing requests. `0` = auto: half the machine's
    /// available parallelism, clamped to `[1, 4]` (each request fans out
    /// internally via `ccs-par`, so workers × par-threads is the real
    /// concurrency).
    pub workers: usize,
    /// Maximum queued (admitted but not yet started) requests; beyond
    /// this, requests are rejected with explicit backpressure.
    pub queue_depth: usize,
    /// Period of the stats line on stderr (`None` = silent).
    pub stats_every: Option<Duration>,
    /// Render the periodic stats line as human prose instead of the
    /// default one-line JSON snapshot.
    pub stats_human: bool,
    /// Rewrite this file (atomically) with Prometheus text metrics every
    /// stats period and at drain.
    pub metrics_file: Option<String>,
    /// Append one JSONL trace line per request to this file
    /// (size-capped — see [`ccs_telemetry::RotatingWriter`]).
    pub trace_requests: Option<String>,
    /// Byte cap of the active trace file before rotation.
    pub trace_max_bytes: u64,
    /// Requests slower end-to-end than this are counted, flagged
    /// `"slow":true` in their trace line, and logged to stderr with their
    /// phase breakdown (`None` = off).
    pub slow_ms: Option<u64>,
    /// Hard cap on one request line's length; longer lines are discarded
    /// and answered with `bad_request` instead of buffering without bound.
    pub max_line_bytes: usize,
    /// Byte budget of the plan/scenario cache ([`PlanCache::with_budget`]).
    pub cache_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_depth: 64,
            stats_every: Some(Duration::from_secs(10)),
            stats_human: false,
            metrics_file: None,
            trace_requests: None,
            trace_max_bytes: 16 << 20,
            slow_ms: None,
            max_line_bytes: 4 << 20,
            cache_bytes: DEFAULT_CACHE_BYTES,
        }
    }
}

impl ServeConfig {
    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        (cores / 2).clamp(1, 4)
    }
}

/// Final counters of one server run (also the stats-line payload).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Requests rejected by backpressure or drain.
    pub rejected: u64,
    /// Requests answered with `ok: true`.
    pub completed: u64,
    /// Requests answered with `ok: false` (including caught panics).
    pub errors: u64,
    /// Malformed or invalid requests (`bad_request` responses).
    pub bad_request: u64,
    /// Requests whose `deadline_ms` elapsed while queued or during the
    /// solve.
    pub expired: u64,
    /// Domain failures (`failed` responses).
    pub failed: u64,
    /// Worker panics caught at the service boundary.
    pub panics: u64,
    /// Scenario-cache hits (a `ProblemTables` rebuild avoided).
    pub scenario_hits: u64,
    /// Plan-memo hits (a full plan computation avoided).
    pub plan_hits: u64,
}

#[derive(Default)]
struct Stats {
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    errors: AtomicU64,
    bad_request: AtomicU64,
    expired: AtomicU64,
    failed: AtomicU64,
    panics: AtomicU64,
    scenario_hits: AtomicU64,
    plan_hits: AtomicU64,
}

impl Stats {
    fn summary(&self) -> ServeSummary {
        ServeSummary {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            bad_request: self.bad_request.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            scenario_hits: self.scenario_hits.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
        }
    }

    /// Counts one error response: the per-kind counter first, the `errors`
    /// total last, so `errors == bad_request + expired + failed + panics`
    /// holds for any observer once the daemon is quiescent.
    fn count_error(&self, kind: ErrorKind) {
        match kind {
            ErrorKind::BadRequest => {
                self.bad_request.fetch_add(1, Ordering::Relaxed);
            }
            ErrorKind::Expired => {
                self.expired.fetch_add(1, Ordering::Relaxed);
                ccs_telemetry::counter!("serve.expired").incr();
            }
            ErrorKind::Failed => {
                self.failed.fetch_add(1, Ordering::Relaxed);
            }
            ErrorKind::Internal => {
                self.panics.fetch_add(1, Ordering::Relaxed);
                ccs_telemetry::counter!("serve.panics").incr();
            }
            // Rejections are backpressure, not errors; counted separately.
            ErrorKind::Rejected => {}
        }
        self.errors.fetch_add(1, Ordering::Relaxed);
        ccs_telemetry::counter!("serve.errors").incr();
    }
}

/// A line-oriented response sink shared between the reader (immediate
/// errors/rejects) and the workers (results).
type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

struct Job {
    id: Value,
    cmd: String,
    body: Value,
    admitted_at: Instant,
    deadline: Option<Duration>,
    writer: SharedWriter,
    trace: ReqTrace,
}

struct ServerState {
    queue: AdmissionQueue<Job>,
    cache: PlanCache,
    stats: Stats,
    obs: ServeObs,
    metrics_file: Option<String>,
    draining: AtomicBool,
}

fn write_line(writer: &SharedWriter, line: &str) {
    // Poison-tolerant: a worker that panicked mid-write must not turn
    // every later response into a lock panic.
    let mut w = lock_unpoisoned(writer);
    // A broken client pipe must not kill the daemon; drop the response.
    let _ = writeln!(w, "{line}");
    let _ = w.flush();
}

/// Outcome of one capped line read ([`read_line_capped`]).
pub enum LineRead {
    /// A complete line, without its trailing newline. Bytes that are not
    /// valid UTF-8 are replaced (the JSON parse then rejects the line).
    Line(String),
    /// The line exceeded the cap; it was consumed (through its newline, or
    /// EOF) and discarded. Carries the number of bytes consumed.
    TooLong(usize),
    /// End of stream.
    Eof,
}

/// Reads one `\n`-terminated line from `reader`, holding at most `cap`
/// bytes in memory. An over-long line is drained to its newline and
/// reported as [`LineRead::TooLong`] so the connection can answer
/// `bad_request` and resynchronize, instead of buffering an attacker- (or
/// bug-)sized line without bound.
///
/// # Errors
///
/// Propagates io errors from the underlying reader.
pub fn read_line_capped<R: BufRead>(reader: &mut R, cap: usize) -> std::io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflow = false;
    let mut consumed = 0usize;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if overflow {
                LineRead::TooLong(consumed)
            } else if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.unwrap_or(chunk.len());
        consumed += take;
        if !overflow {
            if buf.len() + take <= cap {
                buf.extend_from_slice(&chunk[..take]);
            } else {
                overflow = true;
                buf = Vec::new();
            }
        }
        let terminated = newline.is_some();
        reader.consume(take + usize::from(terminated));
        if terminated {
            return Ok(if overflow {
                LineRead::TooLong(consumed)
            } else {
                LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
    }
}

/// What the reader should do after a line was processed.
enum Admit {
    Continue,
    Shutdown,
}

impl ServerState {
    fn new(config: &ServeConfig) -> Self {
        let trace = config.trace_requests.as_ref().and_then(|path| {
            match RotatingWriter::create(path, config.trace_max_bytes) {
                Ok(writer) => Some(writer),
                Err(e) => {
                    eprintln!("serve: cannot open trace file {path}: {e} (tracing disabled)");
                    None
                }
            }
        });
        ServerState {
            queue: AdmissionQueue::new(config.queue_depth),
            cache: PlanCache::with_budget(config.cache_bytes),
            stats: Stats::default(),
            obs: ServeObs::new(trace, config.slow_ms.map(Duration::from_millis)),
            metrics_file: config.metrics_file.clone(),
            draining: AtomicBool::new(false),
        }
    }

    /// Parses and admits one request line, writing any immediate response.
    fn admit_line(&self, line: &str, writer: &SharedWriter) -> Admit {
        let line = line.trim();
        if line.is_empty() {
            return Admit::Continue;
        }
        let body: Value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => {
                self.stats.count_error(ErrorKind::BadRequest);
                let err = ServeError::bad_request(format!("malformed request: {e}"));
                write_line(writer, &err_response(&Value::Null, &err));
                return Admit::Continue;
            }
        };
        let id = body.field("id").clone();
        if body.as_object().is_none() {
            self.respond_err(
                writer,
                &id,
                &ServeError::bad_request(format!(
                    "request must be a JSON object, got {}",
                    body.kind()
                )),
            );
            return Admit::Continue;
        }
        let cmd = match body.field("cmd") {
            Value::String(s) => s.clone(),
            Value::Null => {
                self.respond_err(writer, &id, &ServeError::bad_request("missing 'cmd'"));
                return Admit::Continue;
            }
            other => {
                self.respond_err(
                    writer,
                    &id,
                    &ServeError::bad_request(format!(
                        "'cmd' must be a string, got {}",
                        other.kind()
                    )),
                );
                return Admit::Continue;
            }
        };
        match cmd.as_str() {
            "ping" => {
                // Answered inline, out of band of the queue: a liveness
                // probe must work even under full backpressure.
                self.stats.completed.fetch_add(1, Ordering::Relaxed);
                ccs_telemetry::counter!("serve.completed").incr();
                let mut result = BTreeMap::new();
                result.insert("pong".to_string(), Value::Bool(true));
                write_line(writer, &ok_response(&id, Value::Object(result)));
                Admit::Continue
            }
            "shutdown" => {
                let mut result = BTreeMap::new();
                result.insert("draining".to_string(), Value::Bool(true));
                write_line(writer, &ok_response(&id, Value::Object(result)));
                Admit::Shutdown
            }
            "stats" => {
                // Answered inline like `ping`: the metrics surface must
                // stay reachable even when the queue is saturated.
                self.stats.completed.fetch_add(1, Ordering::Relaxed);
                ccs_telemetry::counter!("serve.completed").incr();
                write_line(writer, &ok_response(&id, self.stats_snapshot()));
                Admit::Continue
            }
            "plan" | "replay" | "lifetime" | "online_step" => {
                let mut trace = self.obs.start();
                // Absent (or JSON null) means "no deadline". An *explicit*
                // zero is rejected: it can only mean "already expired" and
                // silently treating it as "no deadline" inverts the
                // client's intent.
                let deadline = match body.field("deadline_ms") {
                    Value::Null => None,
                    Value::Number(Number::PosInt(0)) => {
                        self.respond_err(
                            writer,
                            &id,
                            &ServeError::bad_request(
                                "deadline_ms must be >= 1; omit for no deadline",
                            ),
                        );
                        return Admit::Continue;
                    }
                    _ => match crate::protocol::fields::u64_or(&body, "deadline_ms", 0) {
                        Ok(ms) => Some(Duration::from_millis(ms)),
                        Err(e) => {
                            self.respond_err(writer, &id, &e);
                            return Admit::Continue;
                        }
                    },
                };
                let reject_id = id.clone();
                let admitted_at = Instant::now();
                // Admission covers the decision up to (and including) the
                // push; queue wait starts at `admitted_at`.
                trace.record(Phase::Admission, trace.total_ns());
                let job = Job {
                    id,
                    cmd,
                    body,
                    admitted_at,
                    deadline,
                    writer: Arc::clone(writer),
                    trace,
                };
                match self.queue.try_push(job) {
                    Ok(()) => {
                        self.stats.admitted.fetch_add(1, Ordering::Relaxed);
                        ccs_telemetry::counter!("serve.admitted").incr();
                        let depth = self.queue.len();
                        self.obs.observe_queue_depth(depth);
                        ccs_telemetry::global()
                            .gauge("serve.queue_depth")
                            .set(depth as f64);
                        Admit::Continue
                    }
                    Err(reason) => {
                        let err = match reason {
                            AdmitError::Full { depth } => {
                                ServeError::rejected(format!("queue full (depth {depth})"))
                            }
                            AdmitError::Draining => ServeError::rejected("draining"),
                        };
                        self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                        ccs_telemetry::counter!("serve.rejected").incr();
                        write_line(writer, &err_response(&reject_id, &err));
                        Admit::Continue
                    }
                }
            }
            other => {
                self.respond_err(
                    writer,
                    &id,
                    &ServeError::bad_request(format!("unknown cmd '{other}'")),
                );
                Admit::Continue
            }
        }
    }

    fn respond_err(&self, writer: &SharedWriter, id: &Value, err: &ServeError) {
        self.stats.count_error(err.kind);
        write_line(writer, &err_response(id, err));
    }

    /// Answers an over-long request line with `bad_request`.
    fn reject_long_line(&self, writer: &SharedWriter, bytes: usize, cap: usize) {
        self.respond_err(
            writer,
            &Value::Null,
            &ServeError::bad_request(format!(
                "request line of {bytes} bytes exceeds the {cap}-byte cap"
            )),
        );
    }

    /// Executes one admitted job and writes its response.
    fn execute(&self, job: Job) {
        let Job {
            id,
            cmd,
            body,
            admitted_at,
            deadline,
            writer,
            mut trace,
        } = job;
        let registry = ccs_telemetry::global();
        let _span = registry.span("serve.request");
        registry
            .gauge("serve.queue_depth")
            .set(self.queue.len() as f64);
        let queued = admitted_at.elapsed();
        trace.record(
            Phase::QueueWait,
            u64::try_from(queued.as_nanos()).unwrap_or(u64::MAX),
        );
        if let Some(deadline) = deadline {
            if queued > deadline {
                self.stats.count_error(ErrorKind::Expired);
                let err = ServeError::expired(format!(
                    "deadline of {} ms passed while queued",
                    deadline.as_millis()
                ));
                let line = trace.time(Phase::Serialize, || err_response(&id, &err));
                write_line(&writer, &line);
                self.obs.finish(&trace, &cmd, "expired");
                return;
            }
        }
        // The shared engine runs the handler under the panic backstop; a
        // caught panic surfaces here as an `Internal` error.
        let outcome = engine::execute(&self.cache, &cmd, &body, &mut trace);
        // The deadline can also pass *during* the solve, not just in the
        // queue: a result the client has already given up on is answered
        // `expired` (and counted as such), never as a full success.
        // Failures keep their own kind — the deadline is moot for them.
        let solve_expired = deadline.is_some_and(|d| admitted_at.elapsed() > d);
        let (line, status) = match outcome {
            Ok(_) if solve_expired => {
                self.stats.count_error(ErrorKind::Expired);
                let ms = deadline.map(|d| d.as_millis()).unwrap_or_default();
                let err =
                    ServeError::expired(format!("deadline of {ms} ms passed during the solve"));
                let line = trace.time(Phase::Serialize, || err_response(&id, &err));
                (line, "expired")
            }
            Ok(handled) => {
                self.stats.completed.fetch_add(1, Ordering::Relaxed);
                ccs_telemetry::counter!("serve.completed").incr();
                if handled.scenario_hit == Some(true) {
                    self.stats.scenario_hits.fetch_add(1, Ordering::Relaxed);
                    ccs_telemetry::counter!("serve.cache.scenario_hits").incr();
                }
                if handled.plan_hit == Some(true) {
                    self.stats.plan_hits.fetch_add(1, Ordering::Relaxed);
                    ccs_telemetry::counter!("serve.cache.plan_hits").incr();
                }
                let line = trace.time(Phase::Serialize, || ok_response(&id, handled.result));
                (line, "ok")
            }
            Err(err) => {
                self.stats.count_error(err.kind);
                let line = trace.time(Phase::Serialize, || err_response(&id, &err));
                (line, err.kind.name())
            }
        };
        write_line(&writer, &line);
        // End-to-end latency includes writing the response — what the
        // client actually observed.
        self.obs.finish(&trace, &cmd, status);
    }

    /// The versioned stats snapshot ([`obs::STATS_SCHEMA`]) — the payload
    /// of the `stats` protocol command and the JSON stats-every line.
    fn stats_snapshot(&self) -> Value {
        let s = self.stats.summary();
        let uint = |v: u64| Value::Number(Number::PosInt(v));
        let mut cache = BTreeMap::new();
        cache.insert("bytes".to_string(), uint(self.cache.bytes() as u64));
        cache.insert("evictions".to_string(), uint(self.cache.evictions()));
        cache.insert("plan_hits".to_string(), uint(s.plan_hits));
        cache.insert("plans".to_string(), uint(self.cache.plans_cached() as u64));
        cache.insert("scenario_hits".to_string(), uint(s.scenario_hits));
        cache.insert("scenarios".to_string(), uint(self.cache.scenarios() as u64));
        let mut queue = BTreeMap::new();
        queue.insert("capacity".to_string(), uint(self.queue.depth() as u64));
        queue.insert("depth".to_string(), uint(self.queue.len() as u64));
        queue.insert("high_water".to_string(), uint(self.obs.high_water()));
        let mut requests = BTreeMap::new();
        requests.insert("admitted".to_string(), uint(s.admitted));
        requests.insert("bad_request".to_string(), uint(s.bad_request));
        requests.insert("completed".to_string(), uint(s.completed));
        requests.insert("errors".to_string(), uint(s.errors));
        requests.insert("expired".to_string(), uint(s.expired));
        requests.insert("failed".to_string(), uint(s.failed));
        requests.insert("panics".to_string(), uint(s.panics));
        requests.insert("rejected".to_string(), uint(s.rejected));
        requests.insert("slow".to_string(), uint(self.obs.slow_count()));
        let mut map = BTreeMap::new();
        map.insert("cache".to_string(), Value::Object(cache));
        map.insert("latency_us".to_string(), self.obs.latency_value());
        map.insert("queue".to_string(), Value::Object(queue));
        map.insert("requests".to_string(), Value::Object(requests));
        map.insert(
            "schema".to_string(),
            Value::String(obs::STATS_SCHEMA.to_string()),
        );
        map.insert(
            "uptime_s".to_string(),
            Value::Number(Number::Float(self.obs.uptime_s())),
        );
        Value::Object(map)
    }

    /// Rewrites the Prometheus metrics file, if one is configured.
    fn write_metrics_file(&self) {
        if let Some(path) = &self.metrics_file {
            obs::write_file_atomic(path, &obs::render_prometheus(&self.stats_snapshot()));
        }
    }

    fn stats_line(&self, human: bool) -> String {
        if !human {
            return obs::render_value(&self.stats_snapshot());
        }
        let s = self.stats.summary();
        format!(
            "serve: queue={} admitted={} rejected={} completed={} errors={} \
             cache(scenarios={} plans={} scenario_hits={} plan_hits={})",
            self.queue.len(),
            s.admitted,
            s.rejected,
            s.completed,
            s.errors,
            self.cache.scenarios(),
            self.cache.plans_cached(),
            s.scenario_hits,
            s.plan_hits,
        )
    }
}

/// Serves one line-oriented connection (requests on `input`, responses on
/// `output`) with a worker pool, until EOF or a `shutdown` request, then
/// drains and returns the final counters.
///
/// This is the building block of both [`serve_stdio`] and the tests; the
/// Unix-socket front end shares the same state across connections.
pub fn serve_connection<R: BufRead>(
    input: R,
    output: Box<dyn Write + Send>,
    config: &ServeConfig,
) -> ServeSummary {
    let state = ServerState::new(config);
    let writer: SharedWriter = Arc::new(Mutex::new(output));
    let state_ref = &state;
    let cap = config.max_line_bytes;
    run_with_reader(state_ref, config, move || {
        let mut input = input;
        loop {
            match read_line_capped(&mut input, cap) {
                Ok(LineRead::Line(line)) => {
                    if let Admit::Shutdown = state_ref.admit_line(&line, &writer) {
                        break;
                    }
                }
                Ok(LineRead::TooLong(bytes)) => state_ref.reject_long_line(&writer, bytes, cap),
                Ok(LineRead::Eof) | Err(_) => break,
            }
        }
    })
}

/// Serves stdin → stdout. Returns when stdin reaches EOF or a `shutdown`
/// request arrives, after the queue has drained.
pub fn serve_stdio(config: &ServeConfig) -> ServeSummary {
    let stdin = std::io::stdin();
    serve_connection(stdin.lock(), Box::new(std::io::stdout()), config)
}

/// Serves a Unix domain socket: every connection speaks the same JSONL
/// protocol, all connections share one queue, worker pool, and cache. A
/// `shutdown` request from any connection drains the whole daemon. The
/// socket file is removed on exit.
///
/// # Errors
///
/// An io error binding the socket (the per-connection errors are handled
/// by dropping the connection).
pub fn serve_unix(path: &str, config: &ServeConfig) -> std::io::Result<ServeSummary> {
    use std::os::unix::net::UnixListener;

    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let state = ServerState::new(config);
    let state_ref = &state;
    let summary = std::thread::scope(|scope| {
        run_with_reader(state_ref, config, move || {
            while !state_ref.draining.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        let Ok(write_half) = stream.try_clone() else {
                            continue;
                        };
                        let writer: SharedWriter = Arc::new(Mutex::new(Box::new(write_half)));
                        let cap = config.max_line_bytes;
                        scope.spawn(move || {
                            let mut reader = BufReader::new(stream);
                            loop {
                                match read_line_capped(&mut reader, cap) {
                                    Ok(LineRead::Line(line)) => {
                                        if let Admit::Shutdown =
                                            state_ref.admit_line(&line, &writer)
                                        {
                                            state_ref.draining.store(true, Ordering::Relaxed);
                                            break;
                                        }
                                    }
                                    Ok(LineRead::TooLong(bytes)) => {
                                        state_ref.reject_long_line(&writer, bytes, cap);
                                    }
                                    Ok(LineRead::Eof) | Err(_) => break,
                                }
                            }
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => break,
                }
            }
        })
    });
    let _ = std::fs::remove_file(path);
    Ok(summary)
}

/// The common engine: spawns the worker pool (and the optional stats
/// ticker), runs `reader` on the current thread, then closes the queue and
/// joins everything — the drain.
fn run_with_reader(
    state: &ServerState,
    config: &ServeConfig,
    reader: impl FnOnce(),
) -> ServeSummary {
    let workers = config.resolved_workers();
    let stop = Arc::new((Mutex::new(false), Condvar::new()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                while let Some(job) = state.queue.pop() {
                    state.execute(job);
                }
            });
        }
        if config.stats_every.is_some() || config.metrics_file.is_some() {
            // Default the metrics-file rewrite to the stats period (or
            // 10 s when only --metrics-file is set).
            let period = config
                .stats_every
                .unwrap_or_else(|| Duration::from_secs(10));
            let print_stats = config.stats_every.is_some();
            let human = config.stats_human;
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let (lock, cond) = &*stop;
                let mut stopped = lock_unpoisoned(lock);
                loop {
                    let (guard, timeout) = cond
                        .wait_timeout(stopped, period)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    stopped = guard;
                    if *stopped {
                        return;
                    }
                    if timeout.timed_out() {
                        if print_stats {
                            eprintln!("{}", state.stats_line(human));
                        }
                        state.write_metrics_file();
                    }
                }
            });
        }
        reader();
        state.draining.store(true, Ordering::Relaxed);
        state.queue.close();
        // Scope exit joins the workers (the drain) and then the ticker.
        let (lock, cond) = &*stop;
        *lock_unpoisoned(lock) = true;
        cond.notify_all();
    });
    // The final metrics-file state covers everything up to the drain.
    state.write_metrics_file();
    let summary = state.stats.summary();
    eprintln!(
        "serve: drained — admitted={} rejected={} completed={} errors={} \
         (panics caught: {}, scenario hits: {}, plan hits: {})",
        summary.admitted,
        summary.rejected,
        summary.completed,
        summary.errors,
        summary.panics,
        summary.scenario_hits,
        summary.plan_hits,
    );
    summary
}
