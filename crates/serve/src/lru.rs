//! A byte-budgeted LRU map shared by the daemon's [`PlanCache`] and the
//! gateway's per-tenant caches.
//!
//! Entries carry an explicit byte-cost estimate; once the sum of costs
//! exceeds the budget, least-recently-used entries are evicted until the
//! cache fits again (always keeping at least one entry, so a single
//! over-budget value still caches rather than thrashing). Recency is
//! tracked with a lazily compacted sequence queue — touches are O(1), and
//! evictions pop stale queue entries amortized O(1).
//!
//! Hit/miss/eviction counters are plain atomics, live regardless of
//! whether the telemetry registry is enabled — they feed the daemon's
//! stats snapshot, which must always work.
//!
//! [`PlanCache`]: crate::cache::PlanCache

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Locks `mutex`, recovering the guard if a previous holder panicked.
///
/// Every shared map/deque in this crate is a plain value store mutated
/// under short critical sections that contain no panicking user code, so
/// the state behind a poisoned lock is always consistent — recovering is
/// strictly better than turning one caught handler panic into a permanent
/// daemon-wide outage (the poisoned-`expect` bug this replaces).
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct Slot<V> {
    value: Arc<V>,
    bytes: usize,
    /// Sequence number of this entry's newest queue ticket; older tickets
    /// for the same key are stale and skipped during eviction.
    seq: u64,
}

struct Inner<K, V> {
    map: HashMap<K, Slot<V>>,
    /// Recency queue of (ticket, key); front is oldest. May hold stale
    /// tickets — an entry is LRU only if its ticket matches its slot's.
    order: VecDeque<(u64, K)>,
    next_seq: u64,
    bytes: usize,
}

impl<K: Eq + Hash + Clone, V> Inner<K, V> {
    /// Sweeps stale tickets once they outnumber live entries 2:1 (plus
    /// slack so tiny maps don't sweep every touch). Without this, a
    /// hit-heavy under-budget workload — the steady state eviction never
    /// runs in — grows `order` by one ticket per request forever. Each
    /// touch enqueues at most one ticket, so the sweep is amortized O(1).
    fn compact(&mut self) {
        let Inner { map, order, .. } = self;
        if order.len() <= 2 * map.len() + 8 {
            return;
        }
        order.retain(|(ticket, key)| map.get(key).is_some_and(|slot| slot.seq == *ticket));
    }
}

/// A thread-safe byte-budgeted LRU of `Arc<V>` values.
pub struct ByteLru<K: Eq + Hash + Clone, V> {
    inner: Mutex<Inner<K, V>>,
    budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Eq + Hash + Clone, V> ByteLru<K, V> {
    /// A cache evicting past `budget` bytes (`usize::MAX` = unbounded).
    pub fn new(budget: usize) -> Self {
        ByteLru {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
                next_seq: 0,
                bytes: 0,
            }),
            budget: budget.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The value for `key`, marking it most-recently used. Counts a hit or
    /// a miss.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let mut inner = lock_unpoisoned(&self.inner);
        let seq = inner.next_seq;
        match inner.map.get_mut(key) {
            Some(slot) => {
                slot.seq = seq;
                let value = Arc::clone(&slot.value);
                inner.next_seq += 1;
                inner.order.push_back((seq, key.clone()));
                inner.compact();
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `value` at cost `bytes`, evicting LRU entries past the
    /// budget. First insert wins: when `key` is already present the cached
    /// value is returned (and touched) so `Arc` identity stays stable
    /// under racing computes.
    pub fn insert(&self, key: K, value: Arc<V>, bytes: usize) -> Arc<V> {
        let mut inner = lock_unpoisoned(&self.inner);
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if let Some(slot) = inner.map.get_mut(&key) {
            slot.seq = seq;
            let value = Arc::clone(&slot.value);
            inner.order.push_back((seq, key));
            inner.compact();
            return value;
        }
        inner.map.insert(
            key.clone(),
            Slot {
                value: Arc::clone(&value),
                bytes,
                seq,
            },
        );
        inner.order.push_back((seq, key));
        inner.bytes += bytes;
        let mut evicted = 0u64;
        while inner.bytes > self.budget && inner.map.len() > 1 {
            let Some((ticket, key)) = inner.order.pop_front() else {
                break;
            };
            let stale = inner.map.get(&key).is_none_or(|slot| slot.seq != ticket);
            if stale {
                continue;
            }
            if let Some(slot) = inner.map.remove(&key) {
                inner.bytes -= slot.bytes;
                evicted += 1;
            }
        }
        drop(inner);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        value
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner).map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of the byte costs of all cached entries.
    pub fn bytes(&self) -> usize {
        lock_unpoisoned(&self.inner).bytes
    }

    /// The configured budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted to stay under budget.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
impl<K: Eq + Hash + Clone + Send, V: Send + Sync> ByteLru<K, V> {
    /// Test hook: current length of the recency queue (tickets, including
    /// stale ones awaiting compaction).
    pub(crate) fn order_len(&self) -> usize {
        lock_unpoisoned(&self.inner).order.len()
    }

    /// Test hook: poisons the inner mutex (a thread panics while holding
    /// it), simulating a handler panic caught mid-critical-section.
    pub(crate) fn poison_for_test(&self) {
        let _ = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = self.inner.lock().unwrap();
                    panic!("poison the lru lock");
                })
                .join()
        });
        assert!(self.inner.is_poisoned(), "the lock really was poisoned");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used_past_the_budget() {
        let lru: ByteLru<u32, u32> = ByteLru::new(100);
        lru.insert(1, Arc::new(10), 40);
        lru.insert(2, Arc::new(20), 40);
        // Touch 1 so 2 is now the LRU.
        assert_eq!(*lru.get(&1).unwrap(), 10);
        lru.insert(3, Arc::new(30), 40);
        assert_eq!(lru.evictions(), 1);
        assert!(lru.get(&2).is_none(), "LRU entry 2 was evicted");
        assert!(lru.get(&1).is_some() && lru.get(&3).is_some());
        assert_eq!(lru.bytes(), 80);
    }

    #[test]
    fn a_single_over_budget_entry_still_caches() {
        let lru: ByteLru<&str, u8> = ByteLru::new(10);
        lru.insert("big", Arc::new(1), 1000);
        assert_eq!(lru.len(), 1);
        assert!(lru.get(&"big").is_some(), "never evict down to zero");
        lru.insert("big2", Arc::new(2), 1000);
        assert_eq!(lru.len(), 1, "the older giant made room for the newer");
        assert!(lru.get(&"big2").is_some());
    }

    #[test]
    fn first_insert_wins_keeps_arc_identity() {
        let lru: ByteLru<u8, u8> = ByteLru::new(100);
        let first = lru.insert(1, Arc::new(7), 10);
        let second = lru.insert(1, Arc::new(8), 10);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(*second, 7);
        assert_eq!(lru.bytes(), 10, "re-insert does not double-count bytes");
    }

    #[test]
    fn counters_track_hits_misses_evictions() {
        let lru: ByteLru<u8, u8> = ByteLru::new(usize::MAX);
        assert!(lru.get(&1).is_none());
        lru.insert(1, Arc::new(1), 1);
        assert!(lru.get(&1).is_some());
        assert_eq!((lru.hits(), lru.misses(), lru.evictions()), (1, 1, 0));
    }

    #[test]
    fn hit_heavy_under_budget_workload_keeps_the_recency_queue_bounded() {
        let lru: ByteLru<u8, u8> = ByteLru::new(usize::MAX);
        for key in 0..4u8 {
            lru.insert(key, Arc::new(key), 1);
        }
        // The leak scenario: a long-running daemon far under budget,
        // hammering the same hot keys. Eviction never runs, so before
        // compaction every hit left a ticket behind forever.
        for round in 0..10_000u32 {
            let key = (round % 4) as u8;
            assert!(lru.get(&key).is_some());
            lru.insert(key, Arc::new(key), 1);
        }
        assert_eq!(lru.len(), 4);
        assert!(
            lru.order_len() <= 2 * lru.len() + 8 + 1,
            "recency queue stays bounded by live entries, got {}",
            lru.order_len()
        );
        // Recency is intact after all that compaction: 0 is now the LRU.
        let under_pressure: ByteLru<u8, u8> = ByteLru::new(4);
        for key in 0..4u8 {
            under_pressure.insert(key, Arc::new(key), 1);
        }
        for _ in 0..100 {
            for key in 1..4u8 {
                under_pressure.get(&key);
            }
        }
        under_pressure.insert(9, Arc::new(9), 1);
        assert!(under_pressure.get(&0).is_none(), "0 was the LRU");
        assert!(under_pressure.get(&3).is_some());
    }

    #[test]
    fn poisoned_lock_is_recovered() {
        let lru: ByteLru<u8, u8> = ByteLru::new(100);
        lru.insert(1, Arc::new(9), 10);
        lru.poison_for_test();
        assert_eq!(*lru.get(&1).unwrap(), 9, "reads recover past the poison");
        lru.insert(2, Arc::new(2), 10);
        assert_eq!(lru.len(), 2, "writes recover past the poison");
    }
}
