//! The reusable request-execution core shared by the JSONL daemon
//! ([`crate::server`]) and the HTTP gateway (`ccs-gateway`).
//!
//! One entry point: [`execute`] runs a protocol command against a
//! [`PlanCache`] under the panic backstop. Every failure mode — invalid
//! fields, domain errors, and panics anywhere below the handler — comes
//! back as a structured [`ServeError`]; the caller only decides how to
//! render and count it. This is what makes the panic-isolation guarantee
//! transport-independent: stdin, Unix socket, and TCP front ends all
//! funnel through the same boundary.

use crate::cache::PlanCache;
use crate::handlers::{self, Handled};
use crate::obs::ReqTrace;
use crate::protocol::ServeError;
use serde::value::Value;
use std::panic::{self, AssertUnwindSafe};

/// Renders a caught panic payload for the `internal` error message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Executes one request body against `cache`, catching panics at this
/// boundary. A panic comes back as [`ServeError::internal`] — callers can
/// rely on `kind == Internal` meaning "a panic was caught" for their
/// panic counters.
///
/// # Errors
///
/// Every handler failure (and any caught panic) as a [`ServeError`].
pub fn execute(
    cache: &PlanCache,
    cmd: &str,
    body: &Value,
    trace: &mut ReqTrace,
) -> Result<Handled, ServeError> {
    match panic::catch_unwind(AssertUnwindSafe(|| {
        handlers::handle(cache, cmd, body, trace)
    })) {
        Ok(outcome) => outcome,
        Err(payload) => Err(ServeError::internal(format!(
            "request handler panicked: {}",
            panic_message(payload.as_ref())
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::ServeObs;
    use crate::protocol::ErrorKind;
    use ccs_wrsn::scenario::ScenarioGenerator;
    use serde::Serialize;

    #[test]
    fn a_panicking_handler_becomes_an_internal_error() {
        let cache = PlanCache::new();
        let obs = ServeObs::new(None, None);
        let mut trace = obs.start();
        // A scenario with no chargers panics inside `CcsProblem::new`.
        let mut value = ScenarioGenerator::new(5)
            .devices(4)
            .chargers(2)
            .generate()
            .to_value();
        if let Value::Object(map) = &mut value {
            map.insert("chargers".to_string(), Value::Array(Vec::new()));
        }
        let body: Value = serde_json::from_str(&format!(
            r#"{{"cmd":"plan","scenario":{}}}"#,
            serde_json::to_string(&value).unwrap()
        ))
        .unwrap();
        let Err(err) = execute(&cache, "plan", &body, &mut trace) else {
            panic!("a no-charger scenario must not produce a plan");
        };
        assert_eq!(err.kind, ErrorKind::Internal);
        assert!(err.message.contains("panicked"), "{}", err.message);
    }
}
