//! The JSONL request/response protocol of the daemon.
//!
//! Every request is one JSON object per line; every response is one JSON
//! object per line. Responses always echo the request's `id` (or `null`
//! when the request was too malformed to carry one) and carry either an
//! `ok: true` + `result` pair or an `ok: false` + `error` pair — a request
//! can *never* take the daemon down.
//!
//! Requests:
//!
//! ```json
//! {"id": 1, "cmd": "plan", "scenario": {…}, "algo": "ccsa", "sharing": "equal"}
//! {"id": 2, "cmd": "replay", "scenario_path": "s.json", "seed": 1, "noshow": 0.5}
//! {"id": 3, "cmd": "lifetime", "scenario_path": "s.json", "rounds": 5, "policy": "ccsga"}
//! {"id": 4, "cmd": "online_step", "scenario_path": "s.json", "pending": [0, 3, 7]}
//! {"id": 5, "cmd": "ping"}
//! {"cmd": "shutdown"}
//! ```
//!
//! `online_step` is the daemon-side ingest path of the online mode: one
//! stateless re-plan over the listed pending device ids (see
//! `ccs_core::online`), answering the residual schedule with members
//! mapped back to original ids.
//!
//! `scenario` carries the scenario inline (the `ccs gen` JSON); the
//! `scenario_path` alternative reads it from a file on the daemon's
//! filesystem.
//!
//! # `deadline_ms` semantics
//!
//! Any queued request may set `deadline_ms`, a positive integer (`>= 1`)
//! budget in milliseconds measured from admission. Omitting the field (or
//! sending JSON `null`) means "no deadline"; an *explicit* `0` is a
//! `bad_request` — zero could only mean "already expired", and silently
//! reading it as "no deadline" would invert the client's intent. The
//! deadline is enforced twice: work still queued when it expires is
//! cancelled with an `expired` error instead of occupying a worker, and a
//! solve that finishes *after* the deadline is answered `expired` as well
//! (counted in the `expired` stat) rather than as a stale success.
//!
//! Responses are rendered from a `BTreeMap`-backed JSON tree, so field
//! order is canonical and a given request's success response is
//! byte-stable across runs — the protocol golden tests rely on this.

use serde::value::Value;
use std::collections::BTreeMap;

/// Structured failure of one request. The daemon maps *every* failure —
/// parse errors, invalid fields, planner failures, worker panics,
/// backpressure — onto one of these, writes it as the response, and keeps
/// serving.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeError {
    /// Stable machine-readable category.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

/// Machine-readable error categories of the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line is not valid JSON, not an object, or a field has
    /// the wrong type/value.
    BadRequest,
    /// The admission queue is at capacity (backpressure) or the daemon is
    /// draining; retry later or slow down.
    Rejected,
    /// The request's `deadline_ms` passed before a worker picked it up.
    Expired,
    /// The planner/testbed reported a domain failure (e.g. the exact
    /// solver's budget was exceeded, or a schedule failed validation).
    Failed,
    /// A worker panicked while handling the request; the panic was caught
    /// at the service boundary and the daemon kept serving.
    Internal,
}

impl ErrorKind {
    /// The wire name of the category.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Rejected => "rejected",
            ErrorKind::Expired => "expired",
            ErrorKind::Failed => "failed",
            ErrorKind::Internal => "internal",
        }
    }
}

impl ServeError {
    /// A `bad_request` error.
    pub fn bad_request(message: impl Into<String>) -> Self {
        ServeError {
            kind: ErrorKind::BadRequest,
            message: message.into(),
        }
    }

    /// A `failed` (domain) error.
    pub fn failed(message: impl Into<String>) -> Self {
        ServeError {
            kind: ErrorKind::Failed,
            message: message.into(),
        }
    }

    /// A `rejected` (backpressure) error.
    pub fn rejected(message: impl Into<String>) -> Self {
        ServeError {
            kind: ErrorKind::Rejected,
            message: message.into(),
        }
    }

    /// An `expired` (deadline) error.
    pub fn expired(message: impl Into<String>) -> Self {
        ServeError {
            kind: ErrorKind::Expired,
            message: message.into(),
        }
    }

    /// An `internal` (caught panic) error.
    pub fn internal(message: impl Into<String>) -> Self {
        ServeError {
            kind: ErrorKind::Internal,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.name(), self.message)
    }
}

impl std::error::Error for ServeError {}

/// Renders a success response line (no trailing newline).
pub fn ok_response(id: &Value, result: Value) -> String {
    let mut map = BTreeMap::new();
    map.insert("id".to_string(), id.clone());
    map.insert("ok".to_string(), Value::Bool(true));
    map.insert("result".to_string(), result);
    render(&map)
}

/// Renders an error response line (no trailing newline).
pub fn err_response(id: &Value, error: &ServeError) -> String {
    let mut detail = BTreeMap::new();
    detail.insert(
        "kind".to_string(),
        Value::String(error.kind.name().to_string()),
    );
    detail.insert("message".to_string(), Value::String(error.message.clone()));
    let mut map = BTreeMap::new();
    map.insert("error".to_string(), Value::Object(detail));
    map.insert("id".to_string(), id.clone());
    map.insert("ok".to_string(), Value::Bool(false));
    render(&map)
}

fn render(map: &BTreeMap<String, Value>) -> String {
    serde_json::to_string(&Value::Object(map.clone())).expect("response tree serializes")
}

/// Field-access helpers over the parsed request object. Missing fields
/// yield the documented default; present fields of the wrong type are a
/// `bad_request`, never a panic.
pub mod fields {
    use super::ServeError;
    use serde::value::{Number, Value};

    /// A string field, or `default` when absent.
    pub fn str_or<'a>(body: &'a Value, key: &str, default: &'a str) -> Result<&'a str, ServeError> {
        match body.field(key) {
            Value::Null => Ok(default),
            Value::String(s) => Ok(s),
            other => Err(ServeError::bad_request(format!(
                "field '{key}' must be a string, got {}",
                other.kind()
            ))),
        }
    }

    /// A non-negative integer field, or `default` when absent.
    pub fn u64_or(body: &Value, key: &str, default: u64) -> Result<u64, ServeError> {
        match body.field(key) {
            Value::Null => Ok(default),
            Value::Number(Number::PosInt(u)) => Ok(*u),
            other => Err(ServeError::bad_request(format!(
                "field '{key}' must be a non-negative integer, got {}",
                other.kind()
            ))),
        }
    }

    /// A finite number field, or `default` when absent.
    pub fn f64_or(body: &Value, key: &str, default: f64) -> Result<f64, ServeError> {
        match body.field(key) {
            Value::Null => Ok(default),
            Value::Number(n) => {
                let v = n.as_f64();
                if v.is_finite() {
                    Ok(v)
                } else {
                    Err(ServeError::bad_request(format!(
                        "field '{key}' must be finite"
                    )))
                }
            }
            other => Err(ServeError::bad_request(format!(
                "field '{key}' must be a number, got {}",
                other.kind()
            ))),
        }
    }

    /// A boolean field, or `default` when absent.
    pub fn bool_or(body: &Value, key: &str, default: bool) -> Result<bool, ServeError> {
        match body.field(key) {
            Value::Null => Ok(default),
            Value::Bool(b) => Ok(*b),
            other => Err(ServeError::bad_request(format!(
                "field '{key}' must be a boolean, got {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_are_canonical_single_lines() {
        let ok = ok_response(
            &Value::Number(serde_json::Number::PosInt(1)),
            Value::Bool(true),
        );
        assert_eq!(ok, r#"{"id":1,"ok":true,"result":true}"#);
        let err = err_response(&Value::Null, &ServeError::bad_request("nope"));
        assert_eq!(
            err,
            r#"{"error":{"kind":"bad_request","message":"nope"},"id":null,"ok":false}"#
        );
        assert!(!ok.contains('\n') && !err.contains('\n'));
    }

    #[test]
    fn field_helpers_default_and_reject() {
        let body: Value = serde_json::from_str(r#"{"seed": 7, "algo": "opt", "x": []}"#).unwrap();
        assert_eq!(fields::u64_or(&body, "seed", 0).unwrap(), 7);
        assert_eq!(fields::u64_or(&body, "rounds", 20).unwrap(), 20);
        assert_eq!(fields::str_or(&body, "algo", "ccsa").unwrap(), "opt");
        assert_eq!(fields::str_or(&body, "sharing", "equal").unwrap(), "equal");
        assert!(fields::u64_or(&body, "algo", 0).is_err());
        assert!(fields::f64_or(&body, "x", 0.0).is_err());
        assert!(fields::bool_or(&body, "x", true).is_err());
        assert_eq!(fields::f64_or(&body, "seed", 0.0).unwrap(), 7.0);
        assert!(fields::bool_or(&body, "degrade", true).unwrap());
    }

    #[test]
    fn negative_u64_is_rejected() {
        let body: Value = serde_json::from_str(r#"{"seed": -3}"#).unwrap();
        assert!(fields::u64_or(&body, "seed", 0).is_err());
    }
}
