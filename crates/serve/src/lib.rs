//! # ccs-serve — the CCS scheduling stack as a long-running service
//!
//! `ccs serve` turns the one-shot CLI (`plan`, `replay`, `lifetime`) into a
//! daemon speaking a line-oriented JSON protocol (JSONL): one request
//! object per input line, one response object per output line. The daemon
//! reads stdin by default or accepts connections on a Unix domain socket
//! (`--socket PATH`), and is built around four guarantees:
//!
//! 1. **Bounded admission with explicit backpressure** — at most
//!    `--queue-depth` requests wait for a worker; beyond that, requests are
//!    answered immediately with a `rejected` error instead of buffering
//!    without bound ([`queue`]).
//! 2. **Panic-proof request handling** — malformed or poison requests
//!    produce structured `error` responses; worker panics are caught at
//!    the service boundary and never take the daemon down ([`server`],
//!    [`protocol`]).
//! 3. **Transparent caching** — scenarios are canonically hashed, so
//!    repeated requests reuse the precomputed [`ProblemTables`] kernel and
//!    memoized plans while staying byte-identical to a cold computation
//!    ([`cache`]).
//! 4. **Drain on shutdown** — EOF or a `shutdown` request finishes all
//!    in-flight and queued work, rejects new work, and exits cleanly
//!    ([`queue::AdmissionQueue::close`]).
//!
//! A served plan is byte-identical to the one-shot CLI: the `result.text`
//! field of a `plan` response equals `ccs plan` stdout for the same
//! scenario, algorithm, and sharing scheme.
//!
//! [`ProblemTables`]: ccs_core::tables::ProblemTables

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod handlers;
pub mod lru;
pub mod obs;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::{scenario_hash, CachedPlan, PlanCache, DEFAULT_CACHE_BYTES};
pub use lru::{lock_unpoisoned, ByteLru};
pub use obs::{Phase, ReqTrace, ServeObs, STATS_SCHEMA};
pub use protocol::{err_response, ok_response, ErrorKind, ServeError};
pub use queue::{AdmissionQueue, AdmitError};
pub use server::{serve_connection, serve_stdio, serve_unix, ServeConfig, ServeSummary};

/// One-stop import for daemon embedders and the CLI.
pub mod prelude {
    pub use crate::protocol::{ErrorKind, ServeError};
    pub use crate::server::{serve_connection, serve_stdio, serve_unix, ServeConfig, ServeSummary};
}
