//! The per-scenario cache: one [`CcsProblem`] (and therefore one lazily
//! built `ProblemTables` kernel) per distinct scenario, plus memoized plans
//! per `(scenario, algorithm, sharing)`.
//!
//! ## Canonical scenario hashing
//!
//! Scenarios arrive as JSON — inline or via `scenario_path` — and are
//! keyed by the hash of their *canonical* rendering: the parsed value tree
//! is re-serialized (objects are `BTreeMap`s, so key order is sorted) and
//! hashed. Two textually different but semantically identical request
//! bodies (whitespace, key order, file vs inline) therefore share one
//! cache entry.
//!
//! ## Bounded memory
//!
//! Both maps are byte-budgeted LRUs ([`ByteLru`]): a long-running daemon
//! fed an endless stream of distinct scenarios evicts cold entries instead
//! of leaking until OOM. Costs are estimates (canonical JSON length plus
//! the dense-table footprint for problems, rendered result length for
//! plans) — good enough to bound memory, cheap enough to compute inline.
//! Eviction is *transparent*: the algorithms are deterministic, so a
//! re-computed entry is byte-identical to the evicted one.
//!
//! ## Concurrency
//!
//! Lookups take a short-lived lock; *computation happens outside the lock*
//! so a slow plan for one scenario never blocks workers serving another.
//! Two workers racing on the same miss may both compute — the algorithms
//! are deterministic, so both produce the identical value and the loser's
//! work is merely wasted, never wrong (`first insert wins` keeps `Arc`
//! identity stable). Locks are poison-tolerant ([`lock_unpoisoned`](crate::lru::lock_unpoisoned)): a
//! caught handler panic never bricks the cache.

use crate::lru::ByteLru;
use crate::protocol::ServeError;
use ccs_core::prelude::*;
use ccs_wrsn::scenario::Scenario;
use serde::value::Value;
use serde::Deserialize;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Default byte budget of one [`PlanCache`] (split between problems and
/// plans): large enough that paper-scale workloads never evict, small
/// enough that a daemon fed garbage scenarios stays bounded.
pub const DEFAULT_CACHE_BYTES: usize = 256 << 20;

/// A fully priced, validated plan, cached with its canonical renderings.
pub struct CachedPlan {
    /// The schedule itself (reused by `replay` executions).
    pub schedule: Schedule,
    /// The response `result` tree — cloning it per response keeps repeated
    /// requests byte-identical.
    pub result: Value,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    scenario: u64,
    algo: &'static str,
    sharing: &'static str,
}

/// The cache. One per server (or per gateway tenant).
pub struct PlanCache {
    problems: ByteLru<u64, CcsProblem>,
    plans: ByteLru<PlanKey, CachedPlan>,
}

/// Hashes the canonical rendering of a parsed scenario value.
pub fn scenario_hash(value: &Value) -> u64 {
    hash_canonical(&canonical_json(value))
}

fn canonical_json(value: &Value) -> String {
    serde_json::to_string(value).expect("value tree serializes")
}

fn hash_canonical(canonical: &str) -> u64 {
    let mut hasher = DefaultHasher::new();
    canonical.hash(&mut hasher);
    hasher.finish()
}

/// Byte-cost estimate of one cached problem: the canonical JSON plus the
/// dense per-pair tables the kernel materializes at paper scale.
fn problem_bytes(canonical_len: usize, problem: &CcsProblem) -> usize {
    let n = problem.scenario().devices().len();
    let m = problem.scenario().chargers().len();
    canonical_len + 8 * n * (n + m) + 16 * (n + m) + 1024
}

impl PlanCache {
    /// A cache with the default byte budget ([`DEFAULT_CACHE_BYTES`]).
    pub fn new() -> Self {
        Self::with_budget(DEFAULT_CACHE_BYTES)
    }

    /// A cache bounded to roughly `budget` bytes, split evenly between the
    /// problem and plan maps.
    pub fn with_budget(budget: usize) -> Self {
        let half = (budget / 2).max(1);
        PlanCache {
            problems: ByteLru::new(half),
            plans: ByteLru::new(half),
        }
    }

    /// The problem for `value` (a parsed scenario), reusing the cached
    /// instance — and its precomputed tables — when one exists.
    ///
    /// Returns the canonical hash alongside so plan lookups reuse it.
    ///
    /// # Errors
    ///
    /// `bad_request` when `value` does not deserialize as a scenario.
    pub fn problem(&self, value: &Value) -> Result<(u64, Arc<CcsProblem>, bool), ServeError> {
        let canonical = canonical_json(value);
        let hash = hash_canonical(&canonical);
        if let Some(problem) = self.problems.get(&hash) {
            return Ok((hash, problem, true));
        }
        let scenario = Scenario::from_value(value)
            .map_err(|e| ServeError::bad_request(format!("invalid scenario: {e}")))?;
        let problem = Arc::new(CcsProblem::new(scenario));
        let bytes = problem_bytes(canonical.len(), &problem);
        let entry = self.problems.insert(hash, problem, bytes);
        Ok((hash, entry, false))
    }

    /// The cached plan for `(scenario, algo, sharing)`, computing it with
    /// `compute` on a miss. Returns the plan and whether it was a hit.
    ///
    /// # Errors
    ///
    /// Forwards `compute`'s error on a miss.
    pub fn plan(
        &self,
        scenario: u64,
        algo: &'static str,
        sharing: &'static str,
        compute: impl FnOnce() -> Result<CachedPlan, ServeError>,
    ) -> Result<(Arc<CachedPlan>, bool), ServeError> {
        let key = PlanKey {
            scenario,
            algo,
            sharing,
        };
        if let Some(plan) = self.plans.get(&key) {
            return Ok((plan, true));
        }
        let computed = Arc::new(compute()?);
        // The rendered result dominates a plan's footprint; the schedule
        // itself is within a small factor of it.
        let bytes = 2 * canonical_json(&computed.result).len() + 256;
        let entry = self.plans.insert(key, computed, bytes);
        Ok((entry, false))
    }

    /// Number of distinct scenarios cached (for stats lines).
    pub fn scenarios(&self) -> usize {
        self.problems.len()
    }

    /// Number of memoized plans (for stats lines).
    pub fn plans_cached(&self) -> usize {
        self.plans.len()
    }

    /// Estimated bytes held across both maps.
    pub fn bytes(&self) -> usize {
        self.problems.bytes() + self.plans.bytes()
    }

    /// Entries evicted from either map to stay under budget.
    pub fn evictions(&self) -> u64 {
        self.problems.evictions() + self.plans.evictions()
    }

    /// Lookups that found an entry, across both maps.
    pub fn hits(&self) -> u64 {
        self.problems.hits() + self.plans.hits()
    }

    /// Lookups that found nothing, across both maps.
    pub fn misses(&self) -> u64 {
        self.problems.misses() + self.plans.misses()
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_wrsn::scenario::ScenarioGenerator;
    use serde::Serialize;

    fn scenario_value(seed: u64) -> Value {
        ScenarioGenerator::new(seed)
            .devices(6)
            .chargers(2)
            .generate()
            .to_value()
    }

    #[test]
    fn canonical_hash_ignores_formatting() {
        let value = scenario_value(3);
        let pretty = serde_json::to_string_pretty(&value).unwrap();
        let reparsed: Value = serde_json::from_str(&pretty).unwrap();
        assert_eq!(scenario_hash(&value), scenario_hash(&reparsed));
        assert_ne!(scenario_hash(&value), scenario_hash(&scenario_value(4)));
    }

    #[test]
    fn problem_and_plan_entries_are_reused() {
        let cache = PlanCache::new();
        let value = scenario_value(1);
        let (hash, p1, hit1) = cache.problem(&value).unwrap();
        let (_, p2, hit2) = cache.problem(&value).unwrap();
        assert!(!hit1 && hit2);
        assert!(Arc::ptr_eq(&p1, &p2), "problem instance is shared");

        let compute = || {
            let schedule = ccsa(&p1, &EqualShare, CcsaOptions::default());
            Ok(CachedPlan {
                result: Value::String(schedule.to_string()),
                schedule,
            })
        };
        let (plan1, hit1) = cache.plan(hash, "ccsa", "equal", compute).unwrap();
        let (plan2, hit2) = cache
            .plan(hash, "ccsa", "equal", || unreachable!("must be a hit"))
            .unwrap();
        assert!(!hit1 && hit2);
        assert!(Arc::ptr_eq(&plan1, &plan2));
        assert_eq!(cache.scenarios(), 1);
        assert_eq!(cache.plans_cached(), 1);
        assert!(cache.bytes() > 0);
    }

    #[test]
    fn invalid_scenario_is_a_bad_request() {
        let cache = PlanCache::new();
        let bogus: Value = serde_json::from_str(r#"{"devices": "nope"}"#).unwrap();
        let err = cache.problem(&bogus).unwrap_err();
        assert_eq!(err.kind.name(), "bad_request");
    }

    /// Eviction transparency: a tiny budget forces distinct scenarios to
    /// evict each other, and a re-computed entry must be byte-identical to
    /// what the first computation produced.
    #[test]
    fn eviction_is_byte_transparent() {
        let cache = PlanCache::with_budget(4096);
        let plan_text = |seed: u64| {
            let value = scenario_value(seed);
            let (hash, problem, _) = cache.problem(&value).unwrap();
            let (plan, hit) = cache
                .plan(hash, "ccsa", "equal", || {
                    let schedule = ccsa(&problem, &EqualShare, CcsaOptions::default());
                    Ok(CachedPlan {
                        result: Value::String(schedule.to_string()),
                        schedule,
                    })
                })
                .unwrap();
            (canonical_json(&plan.result), hit)
        };
        let (first, _) = plan_text(1);
        for seed in 2..8 {
            let _ = plan_text(seed);
        }
        assert!(
            cache.evictions() > 0,
            "a 4 KiB budget must evict across 7 scenarios (bytes {})",
            cache.bytes()
        );
        let (again, hit) = plan_text(1);
        assert!(!hit, "scenario 1 was evicted, so this is a recompute");
        assert_eq!(first, again, "eviction must be byte-transparent");
    }

    /// The poisoned-lock regression (ISSUE 8): a panic while a cache lock
    /// is held must not turn every later request into a lock panic.
    #[test]
    fn poisoned_cache_locks_recover() {
        let cache = PlanCache::new();
        let value = scenario_value(2);
        let (hash, problem, _) = cache.problem(&value).unwrap();
        cache.problems.poison_for_test();
        cache.plans.poison_for_test();
        let (_, p2, hit) = cache.problem(&value).unwrap();
        assert!(hit, "lookups keep working after the poison");
        assert!(Arc::ptr_eq(&problem, &p2));
        let (_, plan_hit) = cache
            .plan(hash, "ccsa", "equal", || {
                let schedule = ccsa(&p2, &EqualShare, CcsaOptions::default());
                Ok(CachedPlan {
                    result: Value::String(schedule.to_string()),
                    schedule,
                })
            })
            .unwrap();
        assert!(!plan_hit);
        assert_eq!(cache.plans_cached(), 1);
    }
}
