//! The per-scenario cache: one [`CcsProblem`] (and therefore one lazily
//! built `ProblemTables` kernel) per distinct scenario, plus memoized plans
//! per `(scenario, algorithm, sharing)`.
//!
//! ## Canonical scenario hashing
//!
//! Scenarios arrive as JSON — inline or via `scenario_path` — and are
//! keyed by the hash of their *canonical* rendering: the parsed value tree
//! is re-serialized (objects are `BTreeMap`s, so key order is sorted) and
//! hashed. Two textually different but semantically identical request
//! bodies (whitespace, key order, file vs inline) therefore share one
//! cache entry.
//!
//! ## Concurrency
//!
//! Lookups take a short-lived lock; *computation happens outside the lock*
//! so a slow plan for one scenario never blocks workers serving another.
//! Two workers racing on the same miss may both compute — the algorithms
//! are deterministic, so both produce the identical value and the loser's
//! work is merely wasted, never wrong (`first insert wins` keeps `Arc`
//! identity stable).

use crate::protocol::ServeError;
use ccs_core::prelude::*;
use ccs_wrsn::scenario::Scenario;
use serde::value::Value;
use serde::Deserialize;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// A fully priced, validated plan, cached with its canonical renderings.
pub struct CachedPlan {
    /// The schedule itself (reused by `replay` executions).
    pub schedule: Schedule,
    /// The response `result` tree — cloning it per response keeps repeated
    /// requests byte-identical.
    pub result: Value,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    scenario: u64,
    algo: &'static str,
    sharing: &'static str,
}

/// The cache. One per server.
pub struct PlanCache {
    problems: Mutex<HashMap<u64, Arc<CcsProblem>>>,
    plans: Mutex<HashMap<PlanKey, Arc<CachedPlan>>>,
}

/// Hashes the canonical rendering of a parsed scenario value.
pub fn scenario_hash(value: &Value) -> u64 {
    let canonical = serde_json::to_string(value).expect("value tree serializes");
    let mut hasher = DefaultHasher::new();
    canonical.hash(&mut hasher);
    hasher.finish()
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache {
            problems: Mutex::new(HashMap::new()),
            plans: Mutex::new(HashMap::new()),
        }
    }

    /// The problem for `value` (a parsed scenario), reusing the cached
    /// instance — and its precomputed tables — when one exists.
    ///
    /// Returns the canonical hash alongside so plan lookups reuse it.
    ///
    /// # Errors
    ///
    /// `bad_request` when `value` does not deserialize as a scenario.
    pub fn problem(&self, value: &Value) -> Result<(u64, Arc<CcsProblem>, bool), ServeError> {
        let hash = scenario_hash(value);
        if let Some(problem) = self.problems.lock().expect("cache lock").get(&hash) {
            return Ok((hash, Arc::clone(problem), true));
        }
        let scenario = Scenario::from_value(value)
            .map_err(|e| ServeError::bad_request(format!("invalid scenario: {e}")))?;
        let problem = Arc::new(CcsProblem::new(scenario));
        let mut problems = self.problems.lock().expect("cache lock");
        let entry = problems.entry(hash).or_insert_with(|| Arc::clone(&problem));
        Ok((hash, Arc::clone(entry), false))
    }

    /// The cached plan for `(scenario, algo, sharing)`, computing it with
    /// `compute` on a miss. Returns the plan and whether it was a hit.
    ///
    /// # Errors
    ///
    /// Forwards `compute`'s error on a miss.
    pub fn plan(
        &self,
        scenario: u64,
        algo: &'static str,
        sharing: &'static str,
        compute: impl FnOnce() -> Result<CachedPlan, ServeError>,
    ) -> Result<(Arc<CachedPlan>, bool), ServeError> {
        let key = PlanKey {
            scenario,
            algo,
            sharing,
        };
        if let Some(plan) = self.plans.lock().expect("cache lock").get(&key) {
            return Ok((Arc::clone(plan), true));
        }
        let computed = Arc::new(compute()?);
        let mut plans = self.plans.lock().expect("cache lock");
        let entry = plans.entry(key).or_insert_with(|| Arc::clone(&computed));
        Ok((Arc::clone(entry), false))
    }

    /// Number of distinct scenarios cached (for stats lines).
    pub fn scenarios(&self) -> usize {
        self.problems.lock().expect("cache lock").len()
    }

    /// Number of memoized plans (for stats lines).
    pub fn plans_cached(&self) -> usize {
        self.plans.lock().expect("cache lock").len()
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_wrsn::scenario::ScenarioGenerator;
    use serde::Serialize;

    fn scenario_value(seed: u64) -> Value {
        ScenarioGenerator::new(seed)
            .devices(6)
            .chargers(2)
            .generate()
            .to_value()
    }

    #[test]
    fn canonical_hash_ignores_formatting() {
        let value = scenario_value(3);
        let pretty = serde_json::to_string_pretty(&value).unwrap();
        let reparsed: Value = serde_json::from_str(&pretty).unwrap();
        assert_eq!(scenario_hash(&value), scenario_hash(&reparsed));
        assert_ne!(scenario_hash(&value), scenario_hash(&scenario_value(4)));
    }

    #[test]
    fn problem_and_plan_entries_are_reused() {
        let cache = PlanCache::new();
        let value = scenario_value(1);
        let (hash, p1, hit1) = cache.problem(&value).unwrap();
        let (_, p2, hit2) = cache.problem(&value).unwrap();
        assert!(!hit1 && hit2);
        assert!(Arc::ptr_eq(&p1, &p2), "problem instance is shared");

        let compute = || {
            let schedule = ccsa(&p1, &EqualShare, CcsaOptions::default());
            Ok(CachedPlan {
                result: Value::String(schedule.to_string()),
                schedule,
            })
        };
        let (plan1, hit1) = cache.plan(hash, "ccsa", "equal", compute).unwrap();
        let (plan2, hit2) = cache
            .plan(hash, "ccsa", "equal", || unreachable!("must be a hit"))
            .unwrap();
        assert!(!hit1 && hit2);
        assert!(Arc::ptr_eq(&plan1, &plan2));
        assert_eq!(cache.scenarios(), 1);
        assert_eq!(cache.plans_cached(), 1);
    }

    #[test]
    fn invalid_scenario_is_a_bad_request() {
        let cache = PlanCache::new();
        let bogus: Value = serde_json::from_str(r#"{"devices": "nope"}"#).unwrap();
        let err = cache.problem(&bogus).unwrap_err();
        assert_eq!(err.kind.name(), "bad_request");
    }
}
