//! The bounded admission queue between the reader/acceptor threads and the
//! worker pool.
//!
//! Admission is **non-blocking**: when the queue is at capacity the push
//! fails immediately and the caller writes an explicit `rejected` response
//! — backpressure is surfaced to the client instead of buffering without
//! bound or stalling the reader. Workers block on [`AdmissionQueue::pop`]
//! until work arrives or the queue is closed and empty, which is exactly
//! the drain-on-shutdown semantics: `close()` rejects all future work but
//! lets everything already admitted finish.

use crate::lru::lock_unpoisoned;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a job could not be admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The queue is at its configured depth.
    Full {
        /// The configured depth, for the reject message.
        depth: usize,
    },
    /// The daemon is draining (EOF or shutdown already seen).
    Draining,
}

struct State<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue with explicit-reject admission and drain-aware pop.
pub struct AdmissionQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    depth: usize,
}

impl<T> AdmissionQueue<T> {
    /// Creates a queue admitting at most `depth` queued jobs (`depth` is
    /// clamped to at least 1).
    pub fn new(depth: usize) -> Self {
        AdmissionQueue {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// The configured depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Jobs currently queued (racy snapshot, for stats only).
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.state).jobs.len()
    }

    /// Whether the queue is currently empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits `job`, or explains why it cannot be admitted. Never blocks.
    pub fn try_push(&self, job: T) -> Result<(), AdmitError> {
        let mut state = lock_unpoisoned(&self.state);
        if state.closed {
            return Err(AdmitError::Draining);
        }
        if state.jobs.len() >= self.depth {
            return Err(AdmitError::Full { depth: self.depth });
        }
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available (returning it) or the queue is
    /// closed *and* empty (returning `None` — the worker should exit).
    pub fn pop(&self) -> Option<T> {
        let mut state = lock_unpoisoned(&self.state);
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Starts the drain: all future pushes fail with
    /// [`AdmitError::Draining`]; already-admitted jobs remain poppable.
    pub fn close(&self) {
        lock_unpoisoned(&self.state).closed = true;
        self.ready.notify_all();
    }

    /// Whether [`AdmissionQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        lock_unpoisoned(&self.state).closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_recovers_after_pop() {
        let q = AdmissionQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(AdmitError::Full { depth: 2 }));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_rejects_new_work_but_drains_queued_work() {
        let q = AdmissionQueue::new(8);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(AdmitError::Draining));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "pop after drain stays None");
    }

    #[test]
    fn depth_is_clamped_to_one() {
        let q = AdmissionQueue::<u8>::new(0);
        assert_eq!(q.depth(), 1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(AdmitError::Full { depth: 1 }));
    }

    /// The poisoned-lock regression (ISSUE 8): a panic while the queue
    /// lock is held must not wedge admission or the worker pop loop.
    #[test]
    fn poisoned_queue_lock_recovers() {
        let q = Arc::new(AdmissionQueue::<u8>::new(4));
        q.try_push(1).unwrap();
        let poisoner = Arc::clone(&q);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.state.lock().unwrap();
            panic!("poison the queue lock");
        })
        .join();
        assert!(q.state.is_poisoned(), "the lock really was poisoned");
        assert_eq!(q.pop(), Some(1), "pop recovers past the poison");
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 1, "push recovers past the poison");
        q.close();
        assert_eq!(q.pop(), Some(2), "drain still yields queued work");
        assert_eq!(q.pop(), None, "drain still terminates");
    }

    #[test]
    fn blocked_workers_wake_on_close() {
        let q = Arc::new(AdmissionQueue::<u8>::new(4));
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        q.try_push(9).unwrap();
        q.close();
        let mut got: Vec<Option<u8>> = waiters.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, vec![None, None, Some(9)]);
    }
}
