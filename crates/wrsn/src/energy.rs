//! Battery and energy-demand modeling for rechargeable devices.
//!
//! A [`Battery`] tracks capacity and level with checked charge/discharge
//! operations; [`EnergyDemand`] captures how much energy a device wants to
//! buy in the current scheduling round (typically the gap to a target level).
//!
//! # Examples
//!
//! ```
//! use ccs_wrsn::energy::Battery;
//! use ccs_wrsn::units::Joules;
//!
//! let mut b = Battery::new(Joules::new(10_000.0), Joules::new(2_500.0))?;
//! b.discharge(Joules::new(500.0))?;
//! assert_eq!(b.level(), Joules::new(2_000.0));
//! let overflow = b.charge(Joules::new(20_000.0));
//! assert_eq!(b.level(), b.capacity());
//! assert_eq!(overflow, Joules::new(12_000.0)); // energy that did not fit
//! # Ok::<(), ccs_wrsn::energy::BatteryError>(())
//! ```

use crate::units::Joules;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error for invalid battery construction or operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatteryError {
    /// Capacity was non-positive or non-finite.
    InvalidCapacity(Joules),
    /// Initial or requested level was outside `[0, capacity]`.
    LevelOutOfRange {
        /// The offending level.
        level: Joules,
        /// The battery capacity.
        capacity: Joules,
    },
    /// Discharge request exceeded the stored energy.
    InsufficientEnergy {
        /// Energy requested.
        requested: Joules,
        /// Energy available.
        available: Joules,
    },
    /// A negative or non-finite amount was passed to charge/discharge.
    InvalidAmount(Joules),
}

impl fmt::Display for BatteryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatteryError::InvalidCapacity(c) => write!(f, "invalid battery capacity {c}"),
            BatteryError::LevelOutOfRange { level, capacity } => {
                write!(f, "battery level {level} outside [0, {capacity}]")
            }
            BatteryError::InsufficientEnergy {
                requested,
                available,
            } => write!(
                f,
                "discharge of {requested} exceeds stored energy {available}"
            ),
            BatteryError::InvalidAmount(a) => write!(f, "invalid energy amount {a}"),
        }
    }
}

impl std::error::Error for BatteryError {}

/// A rechargeable battery with bounded level.
///
/// Invariant: `0 <= level <= capacity`, all finite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity: Joules,
    level: Joules,
}

impl Battery {
    /// Creates a battery with the given capacity and initial level.
    ///
    /// # Errors
    ///
    /// Returns [`BatteryError::InvalidCapacity`] for non-positive or
    /// non-finite capacity, and [`BatteryError::LevelOutOfRange`] if the
    /// initial level is outside `[0, capacity]`.
    pub fn new(capacity: Joules, level: Joules) -> Result<Self, BatteryError> {
        if !capacity.is_finite() || capacity <= Joules::ZERO {
            return Err(BatteryError::InvalidCapacity(capacity));
        }
        if !level.is_finite() || level < Joules::ZERO || level > capacity {
            return Err(BatteryError::LevelOutOfRange { level, capacity });
        }
        Ok(Battery { capacity, level })
    }

    /// A battery starting completely full.
    pub fn full(capacity: Joules) -> Result<Self, BatteryError> {
        Battery::new(capacity, capacity)
    }

    /// Total capacity.
    #[inline]
    pub fn capacity(&self) -> Joules {
        self.capacity
    }

    /// Current stored energy.
    #[inline]
    pub fn level(&self) -> Joules {
        self.level
    }

    /// Fraction of capacity currently stored, in `[0, 1]`.
    #[inline]
    pub fn state_of_charge(&self) -> f64 {
        self.level / self.capacity
    }

    /// Remaining headroom until full.
    #[inline]
    pub fn headroom(&self) -> Joules {
        self.capacity - self.level
    }

    /// Adds energy, saturating at capacity. Returns the overflow that did
    /// not fit (zero if everything fit).
    ///
    /// # Panics
    ///
    /// Panics if `amount` is negative or non-finite (programming error, not
    /// an environmental condition).
    pub fn charge(&mut self, amount: Joules) -> Joules {
        assert!(
            amount.is_finite() && amount >= Joules::ZERO,
            "charge amount must be finite and nonnegative, got {amount}"
        );
        let accepted = amount.min(self.headroom());
        // `level + (capacity - level)` can land one ULP above capacity in
        // floating point; clamp to keep the invariant exact.
        self.level = (self.level + accepted).min(self.capacity);
        amount - accepted
    }

    /// Removes energy.
    ///
    /// # Errors
    ///
    /// Returns [`BatteryError::InsufficientEnergy`] if `amount` exceeds the
    /// stored level, and [`BatteryError::InvalidAmount`] for negative or
    /// non-finite amounts. The battery is unchanged on error.
    pub fn discharge(&mut self, amount: Joules) -> Result<(), BatteryError> {
        if !amount.is_finite() || amount < Joules::ZERO {
            return Err(BatteryError::InvalidAmount(amount));
        }
        if amount > self.level {
            return Err(BatteryError::InsufficientEnergy {
                requested: amount,
                available: self.level,
            });
        }
        self.level -= amount;
        Ok(())
    }

    /// Returns `true` if the battery is empty (level is exactly zero).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.level == Joules::ZERO
    }

    /// Returns `true` if the battery is full.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.level == self.capacity
    }
}

/// A device's energy purchase request for one scheduling round.
///
/// Devices typically request the gap between their current level and a
/// target state of charge; [`EnergyDemand::refill_to`] computes that.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct EnergyDemand(Joules);

impl EnergyDemand {
    /// Creates a demand for a fixed amount of energy.
    ///
    /// # Panics
    ///
    /// Panics if `amount` is negative or non-finite.
    pub fn new(amount: Joules) -> Self {
        assert!(
            amount.is_finite() && amount >= Joules::ZERO,
            "energy demand must be finite and nonnegative, got {amount}"
        );
        EnergyDemand(amount)
    }

    /// Demand to bring `battery` up to `target_soc` (fraction of capacity).
    ///
    /// Returns zero demand if the battery is already at or above the target.
    ///
    /// # Panics
    ///
    /// Panics if `target_soc` is not in `[0, 1]`.
    pub fn refill_to(battery: &Battery, target_soc: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&target_soc),
            "target state of charge must be in [0, 1], got {target_soc}"
        );
        let target = battery.capacity() * target_soc;
        let gap = (target - battery.level()).max(Joules::ZERO);
        EnergyDemand(gap)
    }

    /// The requested energy amount.
    #[inline]
    pub fn amount(&self) -> Joules {
        self.0
    }

    /// Whether this demand is zero (device needs nothing this round).
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.0 == Joules::ZERO
    }
}

impl fmt::Display for EnergyDemand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "demand {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_construction_validates() {
        assert!(matches!(
            Battery::new(Joules::ZERO, Joules::ZERO),
            Err(BatteryError::InvalidCapacity(_))
        ));
        assert!(matches!(
            Battery::new(Joules::new(-5.0), Joules::ZERO),
            Err(BatteryError::InvalidCapacity(_))
        ));
        assert!(matches!(
            Battery::new(Joules::new(10.0), Joules::new(11.0)),
            Err(BatteryError::LevelOutOfRange { .. })
        ));
        assert!(matches!(
            Battery::new(Joules::new(10.0), Joules::new(-1.0)),
            Err(BatteryError::LevelOutOfRange { .. })
        ));
        assert!(matches!(
            Battery::new(Joules::new(f64::NAN), Joules::ZERO),
            Err(BatteryError::InvalidCapacity(_))
        ));
        let b = Battery::full(Joules::new(10.0)).unwrap();
        assert!(b.is_full());
        assert_eq!(b.state_of_charge(), 1.0);
    }

    #[test]
    fn charge_saturates_and_reports_overflow() {
        let mut b = Battery::new(Joules::new(10.0), Joules::new(8.0)).unwrap();
        assert_eq!(b.charge(Joules::new(1.0)), Joules::ZERO);
        assert_eq!(b.level(), Joules::new(9.0));
        assert_eq!(b.charge(Joules::new(5.0)), Joules::new(4.0));
        assert!(b.is_full());
        assert_eq!(b.headroom(), Joules::ZERO);
    }

    #[test]
    fn discharge_checks_bounds() {
        let mut b = Battery::new(Joules::new(10.0), Joules::new(3.0)).unwrap();
        b.discharge(Joules::new(3.0)).unwrap();
        assert!(b.is_empty());
        let err = b.discharge(Joules::new(0.1)).unwrap_err();
        assert!(matches!(err, BatteryError::InsufficientEnergy { .. }));
        assert!(b.is_empty(), "battery unchanged on failed discharge");
        assert!(matches!(
            b.discharge(Joules::new(-1.0)),
            Err(BatteryError::InvalidAmount(_))
        ));
    }

    #[test]
    #[should_panic(expected = "charge amount must be finite and nonnegative")]
    fn charge_rejects_negative() {
        let mut b = Battery::full(Joules::new(10.0)).unwrap();
        let _ = b.charge(Joules::new(-1.0));
    }

    #[test]
    fn demand_refill_to_target() {
        let b = Battery::new(Joules::new(100.0), Joules::new(30.0)).unwrap();
        let d = EnergyDemand::refill_to(&b, 0.9);
        assert_eq!(d.amount(), Joules::new(60.0));
        let already_above = EnergyDemand::refill_to(&b, 0.2);
        assert!(already_above.is_zero());
    }

    #[test]
    #[should_panic(expected = "target state of charge must be in [0, 1]")]
    fn demand_rejects_bad_target() {
        let b = Battery::full(Joules::new(10.0)).unwrap();
        let _ = EnergyDemand::refill_to(&b, 1.5);
    }

    #[test]
    fn battery_error_display_is_nonempty() {
        let err = Battery::new(Joules::new(10.0), Joules::new(11.0)).unwrap_err();
        assert!(!err.to_string().is_empty());
        let err = BatteryError::InsufficientEnergy {
            requested: Joules::new(5.0),
            available: Joules::new(1.0),
        };
        assert!(err.to_string().contains("exceeds"));
    }
}
