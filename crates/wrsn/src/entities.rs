//! The actors of the charging marketplace: rechargeable devices and
//! charging-service providers ("chargers").
//!
//! Both are plain data records constructed through builders so that
//! scenario generators and tests can override exactly the fields they care
//! about (C-BUILDER).
//!
//! # Examples
//!
//! ```
//! use ccs_wrsn::entities::{Device, DeviceId, Charger, ChargerId};
//! use ccs_wrsn::geometry::Point;
//! use ccs_wrsn::units::*;
//!
//! let dev = Device::builder(DeviceId::new(0), Point::new(10.0, 20.0))
//!     .demand(Joules::new(2_000.0))
//!     .move_cost_rate(CostPerMeter::new(0.08))
//!     .build();
//! assert_eq!(dev.demand(), Joules::new(2_000.0));
//!
//! let ch = Charger::builder(ChargerId::new(0), Point::new(0.0, 0.0))
//!     .base_fee(Cost::new(30.0))
//!     .build();
//! assert!(ch.base_fee() > Cost::ZERO);
//! ```

use crate::energy::Battery;
use crate::geometry::Point;
use crate::units::{Cost, CostPerJoule, CostPerMeter, Joules, MetersPerSecond};
use crate::wpt::WptModel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a rechargeable device, dense in `0..n`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct DeviceId(u32);

impl DeviceId {
    /// Creates a device id.
    #[inline]
    pub const fn new(id: u32) -> Self {
        DeviceId(id)
    }

    /// The raw id value.
    #[inline]
    pub const fn value(self) -> u32 {
        self.0
    }

    /// The id as an index into device-ordered arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Identifier of a charging-service provider, dense in `0..m`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct ChargerId(u32);

impl ChargerId {
    /// Creates a charger id.
    #[inline]
    pub const fn new(id: u32) -> Self {
        ChargerId(id)
    }

    /// The raw id value.
    #[inline]
    pub const fn value(self) -> u32 {
        self.0
    }

    /// The id as an index into charger-ordered arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ChargerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A mobile rechargeable sensor device participating in cooperative charging.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    id: DeviceId,
    position: Point,
    battery: Battery,
    demand: Joules,
    move_cost_rate: CostPerMeter,
    speed: MetersPerSecond,
}

impl Device {
    /// Starts building a device at a position; everything else defaults.
    pub fn builder(id: DeviceId, position: Point) -> DeviceBuilder {
        DeviceBuilder {
            id,
            position,
            battery: Battery::new(Joules::new(10_000.0), Joules::new(3_000.0))
                .expect("default battery parameters are valid"),
            demand: Joules::new(5_000.0),
            move_cost_rate: CostPerMeter::new(0.05),
            speed: MetersPerSecond::new(1.0),
        }
    }

    /// The device id.
    #[inline]
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// Current position in the field.
    #[inline]
    pub fn position(&self) -> Point {
        self.position
    }

    /// Battery state.
    #[inline]
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// Mutable battery state (used by the testbed executor).
    #[inline]
    pub fn battery_mut(&mut self) -> &mut Battery {
        &mut self.battery
    }

    /// Energy the device wants to purchase this round.
    #[inline]
    pub fn demand(&self) -> Joules {
        self.demand
    }

    /// Cost of moving, per meter travelled.
    #[inline]
    pub fn move_cost_rate(&self) -> CostPerMeter {
        self.move_cost_rate
    }

    /// Travel speed.
    #[inline]
    pub fn speed(&self) -> MetersPerSecond {
        self.speed
    }

    /// Moves the device to a new position (testbed executor).
    #[inline]
    pub fn set_position(&mut self, p: Point) {
        self.position = p;
    }
}

/// Builder for [`Device`].
#[derive(Debug, Clone)]
pub struct DeviceBuilder {
    id: DeviceId,
    position: Point,
    battery: Battery,
    demand: Joules,
    move_cost_rate: CostPerMeter,
    speed: MetersPerSecond,
}

impl DeviceBuilder {
    /// Sets the battery state.
    pub fn battery(mut self, battery: Battery) -> Self {
        self.battery = battery;
        self
    }

    /// Sets the energy demand for this round.
    ///
    /// # Panics
    ///
    /// Panics if negative or non-finite.
    pub fn demand(mut self, demand: Joules) -> Self {
        assert!(
            demand.is_finite() && demand >= Joules::ZERO,
            "demand must be finite and nonnegative"
        );
        self.demand = demand;
        self
    }

    /// Sets the per-meter movement cost rate.
    pub fn move_cost_rate(mut self, rate: CostPerMeter) -> Self {
        assert!(
            rate.is_finite() && rate >= CostPerMeter::ZERO,
            "move cost rate must be finite and nonnegative"
        );
        self.move_cost_rate = rate;
        self
    }

    /// Sets the travel speed.
    pub fn speed(mut self, speed: MetersPerSecond) -> Self {
        assert!(
            speed.is_finite() && speed > MetersPerSecond::ZERO,
            "speed must be positive"
        );
        self.speed = speed;
        self
    }

    /// Finalizes the device.
    pub fn build(self) -> Device {
        Device {
            id: self.id,
            position: self.position,
            battery: self.battery,
            demand: self.demand,
            move_cost_rate: self.move_cost_rate,
            speed: self.speed,
        }
    }
}

/// A mobile charging-service provider.
///
/// The pricing model follows the paper's service framing: a **base service
/// fee** per hire, a **travel cost** per meter the charger drives to the
/// gathering point, an **energy price** per Joule delivered, and an
/// **occupancy rate** multiplying the concave service-time congestion term.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Charger {
    id: ChargerId,
    position: Point,
    base_fee: Cost,
    travel_cost_rate: CostPerMeter,
    energy_price: CostPerJoule,
    occupancy_rate: Cost,
    speed: MetersPerSecond,
    wpt: WptModel,
    #[serde(default)]
    energy_budget: Option<Joules>,
}

impl Charger {
    /// Starts building a charger at a position; everything else defaults.
    pub fn builder(id: ChargerId, position: Point) -> ChargerBuilder {
        ChargerBuilder {
            id,
            position,
            base_fee: Cost::new(25.0),
            travel_cost_rate: CostPerMeter::new(0.10),
            energy_price: CostPerJoule::new(0.002),
            occupancy_rate: Cost::new(4.0),
            speed: MetersPerSecond::new(2.0),
            wpt: WptModel::default(),
            energy_budget: None,
        }
    }

    /// The charger id.
    #[inline]
    pub fn id(&self) -> ChargerId {
        self.id
    }

    /// Depot position of the charger.
    #[inline]
    pub fn position(&self) -> Point {
        self.position
    }

    /// Fixed fee charged each time the charger is hired.
    #[inline]
    pub fn base_fee(&self) -> Cost {
        self.base_fee
    }

    /// Cost per meter driven by the charger.
    #[inline]
    pub fn travel_cost_rate(&self) -> CostPerMeter {
        self.travel_cost_rate
    }

    /// Price per Joule of delivered energy.
    #[inline]
    pub fn energy_price(&self) -> CostPerJoule {
        self.energy_price
    }

    /// Multiplier of the concave group-size congestion term.
    #[inline]
    pub fn occupancy_rate(&self) -> Cost {
        self.occupancy_rate
    }

    /// Driving speed of the charger.
    #[inline]
    pub fn speed(&self) -> MetersPerSecond {
        self.speed
    }

    /// The WPT link model of this charger's coil.
    #[inline]
    pub fn wpt(&self) -> &WptModel {
        &self.wpt
    }

    /// Maximum energy this charger can deliver in a single hire
    /// (`None` = unlimited).
    #[inline]
    pub fn energy_budget(&self) -> Option<Joules> {
        self.energy_budget
    }

    /// Whether one hire can deliver `total_demand` Joules.
    #[inline]
    pub fn can_deliver(&self, total_demand: Joules) -> bool {
        self.energy_budget.is_none_or(|b| total_demand <= b)
    }
}

/// Builder for [`Charger`].
#[derive(Debug, Clone)]
pub struct ChargerBuilder {
    id: ChargerId,
    position: Point,
    base_fee: Cost,
    travel_cost_rate: CostPerMeter,
    energy_price: CostPerJoule,
    occupancy_rate: Cost,
    speed: MetersPerSecond,
    wpt: WptModel,
    energy_budget: Option<Joules>,
}

impl ChargerBuilder {
    /// Sets the per-hire base service fee.
    pub fn base_fee(mut self, fee: Cost) -> Self {
        assert!(
            fee.is_finite() && fee >= Cost::ZERO,
            "base fee must be finite and nonnegative"
        );
        self.base_fee = fee;
        self
    }

    /// Sets the per-meter travel cost rate.
    pub fn travel_cost_rate(mut self, rate: CostPerMeter) -> Self {
        assert!(
            rate.is_finite() && rate >= CostPerMeter::ZERO,
            "travel cost rate must be finite and nonnegative"
        );
        self.travel_cost_rate = rate;
        self
    }

    /// Sets the energy price per Joule.
    pub fn energy_price(mut self, price: CostPerJoule) -> Self {
        assert!(
            price.is_finite() && price >= CostPerJoule::ZERO,
            "energy price must be finite and nonnegative"
        );
        self.energy_price = price;
        self
    }

    /// Sets the congestion (occupancy) rate.
    pub fn occupancy_rate(mut self, rate: Cost) -> Self {
        assert!(
            rate.is_finite() && rate >= Cost::ZERO,
            "occupancy rate must be finite and nonnegative"
        );
        self.occupancy_rate = rate;
        self
    }

    /// Sets the driving speed.
    pub fn speed(mut self, speed: MetersPerSecond) -> Self {
        assert!(
            speed.is_finite() && speed > MetersPerSecond::ZERO,
            "speed must be positive"
        );
        self.speed = speed;
        self
    }

    /// Sets the WPT link model.
    pub fn wpt(mut self, wpt: WptModel) -> Self {
        self.wpt = wpt;
        self
    }

    /// Caps the energy one hire can deliver.
    ///
    /// # Panics
    ///
    /// Panics if the budget is non-positive or non-finite.
    pub fn energy_budget(mut self, budget: Joules) -> Self {
        assert!(
            budget.is_finite() && budget > Joules::ZERO,
            "energy budget must be finite and positive"
        );
        self.energy_budget = Some(budget);
        self
    }

    /// Finalizes the charger.
    pub fn build(self) -> Charger {
        Charger {
            id: self.id,
            position: self.position,
            base_fee: self.base_fee,
            travel_cost_rate: self.travel_cost_rate,
            energy_price: self.energy_price,
            occupancy_rate: self.occupancy_rate,
            speed: self.speed,
            wpt: self.wpt,
            energy_budget: self.energy_budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_and_index() {
        assert_eq!(DeviceId::new(3).to_string(), "d3");
        assert_eq!(ChargerId::new(7).to_string(), "c7");
        assert_eq!(DeviceId::new(3).index(), 3);
        assert_eq!(ChargerId::new(7).value(), 7);
    }

    #[test]
    fn device_builder_overrides() {
        let d = Device::builder(DeviceId::new(1), Point::new(5.0, 5.0))
            .demand(Joules::new(123.0))
            .move_cost_rate(CostPerMeter::new(0.5))
            .speed(MetersPerSecond::new(2.5))
            .build();
        assert_eq!(d.id(), DeviceId::new(1));
        assert_eq!(d.demand(), Joules::new(123.0));
        assert_eq!(d.move_cost_rate(), CostPerMeter::new(0.5));
        assert_eq!(d.speed(), MetersPerSecond::new(2.5));
        assert_eq!(d.position(), Point::new(5.0, 5.0));
    }

    #[test]
    fn device_defaults_are_sane() {
        let d = Device::builder(DeviceId::new(0), Point::ORIGIN).build();
        assert!(d.demand() > Joules::ZERO);
        assert!(d.battery().level() > Joules::ZERO);
        assert!(d.move_cost_rate() > CostPerMeter::ZERO);
    }

    #[test]
    fn charger_builder_overrides() {
        let c = Charger::builder(ChargerId::new(2), Point::new(1.0, 1.0))
            .base_fee(Cost::new(99.0))
            .energy_price(CostPerJoule::new(0.01))
            .occupancy_rate(Cost::new(1.0))
            .travel_cost_rate(CostPerMeter::new(0.2))
            .speed(MetersPerSecond::new(3.0))
            .build();
        assert_eq!(c.base_fee(), Cost::new(99.0));
        assert_eq!(c.energy_price(), CostPerJoule::new(0.01));
        assert_eq!(c.occupancy_rate(), Cost::new(1.0));
        assert_eq!(c.travel_cost_rate(), CostPerMeter::new(0.2));
        assert_eq!(c.speed(), MetersPerSecond::new(3.0));
    }

    #[test]
    #[should_panic(expected = "demand must be finite and nonnegative")]
    fn device_rejects_negative_demand() {
        let _ = Device::builder(DeviceId::new(0), Point::ORIGIN).demand(Joules::new(-1.0));
    }

    #[test]
    #[should_panic(expected = "base fee must be finite and nonnegative")]
    fn charger_rejects_nan_fee() {
        let _ = Charger::builder(ChargerId::new(0), Point::ORIGIN).base_fee(Cost::new(f64::NAN));
    }

    #[test]
    fn entities_serde_round_trip() {
        let d = Device::builder(DeviceId::new(4), Point::new(2.0, 3.0)).build();
        let json = serde_json::to_string(&d).unwrap();
        let back: Device = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);

        let c = Charger::builder(ChargerId::new(1), Point::new(9.0, 9.0)).build();
        let json = serde_json::to_string(&c).unwrap();
        let back: Charger = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn battery_mut_allows_testbed_updates() {
        let mut d = Device::builder(DeviceId::new(0), Point::ORIGIN).build();
        let before = d.battery().level();
        let _ = d.battery_mut().charge(Joules::new(100.0));
        assert_eq!(d.battery().level(), before + Joules::new(100.0));
        d.set_position(Point::new(1.0, 2.0));
        assert_eq!(d.position(), Point::new(1.0, 2.0));
    }
}
