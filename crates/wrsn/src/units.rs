//! Strongly-typed physical and economic quantities.
//!
//! The scheduling stack mixes four dimensions that are all represented by
//! `f64` at the machine level: distances, energies, times and monetary cost.
//! Mixing them up silently is the classic source of wrong-but-plausible
//! simulation results, so each gets a newtype (C-NEWTYPE) with only the
//! physically meaningful arithmetic implemented.
//!
//! # Examples
//!
//! ```
//! use ccs_wrsn::units::{Meters, Joules, Cost, CostPerMeter};
//!
//! let d = Meters::new(120.0);
//! let rate = CostPerMeter::new(0.05);
//! let move_cost: Cost = rate * d;
//! assert!((move_cost.value() - 6.0).abs() < 1e-12);
//!
//! let w = Joules::new(3_000.0);
//! assert_eq!(w + Joules::new(500.0), Joules::new(3_500.0));
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a new quantity from a raw `f64` value.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw `f64` value.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite (neither NaN nor infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of two quantities.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of two quantities.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps the quantity into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Total ordering over the underlying `f64` (IEEE `total_cmp`).
            ///
            /// Useful for sorting and max-selection where `PartialOrd` is
            /// inconvenient. NaNs order after all other values.
            #[inline]
            pub fn total_cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }
    };
}

quantity!(
    /// A distance in meters.
    Meters,
    "m"
);
quantity!(
    /// An amount of energy in Joules.
    Joules,
    "J"
);
quantity!(
    /// Power in Watts (Joules per second).
    Watts,
    "W"
);
quantity!(
    /// A duration in seconds.
    Seconds,
    "s"
);
quantity!(
    /// A monetary cost in abstract currency units.
    Cost,
    "$"
);
quantity!(
    /// Speed in meters per second.
    MetersPerSecond,
    "m/s"
);
quantity!(
    /// A cost rate per meter travelled.
    CostPerMeter,
    "$/m"
);
quantity!(
    /// A price per Joule of delivered energy.
    CostPerJoule,
    "$/J"
);

// --- Cross-dimension arithmetic (only the physically meaningful products). ---

impl Mul<Meters> for CostPerMeter {
    type Output = Cost;
    #[inline]
    fn mul(self, rhs: Meters) -> Cost {
        Cost::new(self.value() * rhs.value())
    }
}

impl Mul<CostPerMeter> for Meters {
    type Output = Cost;
    #[inline]
    fn mul(self, rhs: CostPerMeter) -> Cost {
        rhs * self
    }
}

impl Mul<Joules> for CostPerJoule {
    type Output = Cost;
    #[inline]
    fn mul(self, rhs: Joules) -> Cost {
        Cost::new(self.value() * rhs.value())
    }
}

impl Mul<CostPerJoule> for Joules {
    type Output = Cost;
    #[inline]
    fn mul(self, rhs: CostPerJoule) -> Cost {
        rhs * self
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.value() * rhs.value())
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

impl Div<Watts> for Joules {
    /// Time needed to transfer this much energy at the given power.
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds::new(self.value() / rhs.value())
    }
}

impl Div<Seconds> for Joules {
    /// Average power over a duration.
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.value() / rhs.value())
    }
}

impl Div<MetersPerSecond> for Meters {
    /// Travel time at constant speed.
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: MetersPerSecond) -> Seconds {
        Seconds::new(self.value() / rhs.value())
    }
}

impl Mul<Seconds> for MetersPerSecond {
    type Output = Meters;
    #[inline]
    fn mul(self, rhs: Seconds) -> Meters {
        Meters::new(self.value() * rhs.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_assign() {
        let mut d = Meters::new(10.0);
        d += Meters::new(5.0);
        assert_eq!(d, Meters::new(15.0));
        d -= Meters::new(20.0);
        assert_eq!(d, Meters::new(-5.0));
        assert_eq!(-d, Meters::new(5.0));
        assert_eq!(d.abs(), Meters::new(5.0));
    }

    #[test]
    fn scalar_mul_div() {
        assert_eq!(Joules::new(6.0) * 2.0, Joules::new(12.0));
        assert_eq!(2.0 * Joules::new(6.0), Joules::new(12.0));
        assert_eq!(Joules::new(6.0) / 2.0, Joules::new(3.0));
        let ratio: f64 = Joules::new(6.0) / Joules::new(3.0);
        assert_eq!(ratio, 2.0);
    }

    #[test]
    fn cross_dimension_products() {
        let c: Cost = CostPerMeter::new(0.5) * Meters::new(10.0);
        assert_eq!(c, Cost::new(5.0));
        let c2: Cost = Meters::new(10.0) * CostPerMeter::new(0.5);
        assert_eq!(c2, c);
        let e: Joules = Watts::new(5.0) * Seconds::new(4.0);
        assert_eq!(e, Joules::new(20.0));
        let t: Seconds = Joules::new(20.0) / Watts::new(5.0);
        assert_eq!(t, Seconds::new(4.0));
        let p: Watts = Joules::new(20.0) / Seconds::new(4.0);
        assert_eq!(p, Watts::new(5.0));
        let travel: Seconds = Meters::new(30.0) / MetersPerSecond::new(3.0);
        assert_eq!(travel, Seconds::new(10.0));
        let dist: Meters = MetersPerSecond::new(3.0) * Seconds::new(10.0);
        assert_eq!(dist, Meters::new(30.0));
        let bill: Cost = Joules::new(100.0) * CostPerJoule::new(0.01);
        assert_eq!(bill, Cost::new(1.0));
    }

    #[test]
    fn sum_iterators() {
        let owned: Cost = vec![Cost::new(1.0), Cost::new(2.5)].into_iter().sum();
        assert_eq!(owned, Cost::new(3.5));
        let v = [Cost::new(1.0), Cost::new(2.5)];
        let borrowed: Cost = v.iter().sum();
        assert_eq!(borrowed, Cost::new(3.5));
    }

    #[test]
    fn min_max_clamp() {
        let a = Seconds::new(2.0);
        let b = Seconds::new(3.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(
            Seconds::new(10.0).clamp(Seconds::ZERO, b),
            b,
            "clamp to upper bound"
        );
    }

    #[test]
    fn total_cmp_sorts_nan_last() {
        let mut v = [Cost::new(f64::NAN), Cost::new(1.0), Cost::new(-2.0)];
        v.sort_by(Cost::total_cmp);
        assert_eq!(v[0], Cost::new(-2.0));
        assert_eq!(v[1], Cost::new(1.0));
        assert!(v[2].value().is_nan());
    }

    #[test]
    fn display_formats_unit() {
        assert_eq!(format!("{:.2}", Meters::new(1.239)), "1.24 m");
        assert_eq!(format!("{}", Cost::new(2.5)), "2.5 $");
    }

    #[test]
    fn serde_transparent_round_trip() {
        let j = serde_json::to_string(&Joules::new(42.5)).unwrap();
        assert_eq!(j, "42.5");
        let back: Joules = serde_json::from_str(&j).unwrap();
        assert_eq!(back, Joules::new(42.5));
    }
}
