//! Seeded arrival processes for the online charging service.
//!
//! The one-shot CCS problem assumes every device needs charging *now*; a
//! live fleet instead emits charging requests over time. This module
//! generates those request streams: a homogeneous Poisson process plus
//! two structured profiles (spatial hotspots and periodic bursts), all
//! driven by a seeded [`ChaCha8Rng`] so a given `(seed, profile)` pair
//! always yields the identical stream — experiments and benches replay
//! bit-for-bit.
//!
//! Every request carries an absolute *deadline*: the virtual time by
//! which its charging must have completed. Deadlines are `arrival +
//! slack` with a fixed per-stream slack, the knob that separates easy
//! streams (generous slack, zero misses expected) from adversarial ones
//! (slack too tight for any dispatcher).
//!
//! # Examples
//!
//! ```
//! use ccs_wrsn::arrival::{ArrivalGenerator, ArrivalProfile};
//!
//! let stream = ArrivalGenerator::new(7)
//!     .rate(0.5)
//!     .horizon(100.0)
//!     .slack(400.0)
//!     .generate(20);
//! assert!(!stream.is_empty());
//! assert!(stream.windows(2).all(|w| w[0].arrival <= w[1].arrival));
//! ```

use crate::entities::DeviceId;
use crate::units::Seconds;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One charging request of the online stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChargeRequest {
    /// The requesting device (an id of the scenario the stream targets).
    pub device: DeviceId,
    /// Virtual arrival time.
    pub arrival: Seconds,
    /// Absolute virtual time by which charging must have *completed*; a
    /// request still unserved at this instant is a deadline miss.
    pub deadline: Seconds,
}

/// Shape of the arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProfile {
    /// Homogeneous Poisson arrivals, uniform across devices.
    Poisson,
    /// Poisson arrivals concentrated on a device subset: the first
    /// `ceil(fraction * n)` devices (the hotspot) generate `share` of
    /// the traffic; the rest split the remainder uniformly.
    Hotspot {
        /// Fraction of devices in the hotspot, clamped to `(0, 1]`.
        fraction: f64,
        /// Fraction of requests the hotspot generates, clamped to `[0, 1]`.
        share: f64,
    },
    /// Periodic bursts: within the first `width` seconds of every
    /// `period`-second window the rate is multiplied by `factor`;
    /// outside it the base rate applies. Device choice stays uniform.
    Burst {
        /// Window length in seconds (must be positive).
        period: f64,
        /// Burst length at the head of each window, in seconds.
        width: f64,
        /// Rate multiplier inside the burst (must be >= 1).
        factor: f64,
    },
}

/// Builder-style generator of seeded request streams.
#[derive(Debug, Clone)]
pub struct ArrivalGenerator {
    seed: u64,
    rate: f64,
    horizon: f64,
    slack: f64,
    profile: ArrivalProfile,
}

impl ArrivalGenerator {
    /// A generator with defaults: 0.2 requests/s over a 200 s horizon,
    /// 300 s of deadline slack, homogeneous Poisson arrivals.
    pub fn new(seed: u64) -> Self {
        ArrivalGenerator {
            seed,
            rate: 0.2,
            horizon: 200.0,
            slack: 300.0,
            profile: ArrivalProfile::Poisson,
        }
    }

    /// Mean fleet-wide arrival rate in requests per second.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is finite and positive.
    pub fn rate(mut self, rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        self.rate = rate;
        self
    }

    /// Length of the arrival window in seconds (requests only *arrive*
    /// inside it; service may run past it).
    ///
    /// # Panics
    ///
    /// Panics unless `horizon` is finite and positive.
    pub fn horizon(mut self, horizon: f64) -> Self {
        assert!(
            horizon.is_finite() && horizon > 0.0,
            "horizon must be positive"
        );
        self.horizon = horizon;
        self
    }

    /// Relative deadline: each request's deadline is `arrival + slack`.
    ///
    /// # Panics
    ///
    /// Panics unless `slack` is finite and positive.
    pub fn slack(mut self, slack: f64) -> Self {
        assert!(slack.is_finite() && slack > 0.0, "slack must be positive");
        self.slack = slack;
        self
    }

    /// The arrival profile (see [`ArrivalProfile`]).
    pub fn profile(mut self, profile: ArrivalProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Generates the stream for a fleet of `num_devices` devices, sorted
    /// by arrival time. Deterministic in `(seed, parameters)`.
    ///
    /// Uses Lewis–Shedler thinning against the profile's peak rate, so
    /// the burst profile is an exact inhomogeneous Poisson process, not
    /// an approximation.
    ///
    /// # Panics
    ///
    /// Panics if `num_devices` is zero or a profile parameter is out of
    /// range (burst `period`/`factor`, hotspot `fraction`).
    pub fn generate(&self, num_devices: usize) -> Vec<ChargeRequest> {
        assert!(num_devices > 0, "a stream needs at least one device");
        let peak = match self.profile {
            ArrivalProfile::Poisson | ArrivalProfile::Hotspot { .. } => self.rate,
            ArrivalProfile::Burst { period, factor, .. } => {
                assert!(
                    period.is_finite() && period > 0.0,
                    "burst period must be positive"
                );
                assert!(
                    factor.is_finite() && factor >= 1.0,
                    "burst factor must be >= 1"
                );
                self.rate * factor
            }
        };
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut out = Vec::new();
        let mut t = 0.0f64;
        loop {
            // Exponential inter-arrival at the peak rate via inverse CDF.
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += -u.ln() / peak;
            if t >= self.horizon {
                break;
            }
            // Thin down to the instantaneous rate.
            let accept: f64 = rng.gen_range(0.0..1.0);
            if accept * peak >= self.instantaneous_rate(t) {
                continue;
            }
            out.push(ChargeRequest {
                device: self.pick_device(&mut rng, num_devices),
                arrival: Seconds::new(t),
                deadline: Seconds::new(t + self.slack),
            });
        }
        out
    }

    /// The profile's rate at virtual time `t`.
    fn instantaneous_rate(&self, t: f64) -> f64 {
        match self.profile {
            ArrivalProfile::Poisson | ArrivalProfile::Hotspot { .. } => self.rate,
            ArrivalProfile::Burst {
                period,
                width,
                factor,
            } => {
                if t % period < width {
                    self.rate * factor
                } else {
                    self.rate
                }
            }
        }
    }

    /// Draws the requesting device per the profile's spatial bias.
    fn pick_device(&self, rng: &mut ChaCha8Rng, n: usize) -> DeviceId {
        let index = match self.profile {
            ArrivalProfile::Poisson | ArrivalProfile::Burst { .. } => rng.gen_range(0..n),
            ArrivalProfile::Hotspot { fraction, share } => {
                assert!(
                    fraction > 0.0 && fraction <= 1.0,
                    "hotspot fraction must be in (0, 1]"
                );
                let hot = ((fraction * n as f64).ceil() as usize).clamp(1, n);
                let p: f64 = rng.gen_range(0.0..1.0);
                if p < share.clamp(0.0, 1.0) || hot == n {
                    rng.gen_range(0..hot)
                } else {
                    rng.gen_range(hot..n)
                }
            }
        };
        DeviceId::new(index as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_in_the_seed() {
        let make = || {
            ArrivalGenerator::new(42)
                .rate(1.0)
                .horizon(50.0)
                .slack(60.0)
                .generate(10)
        };
        assert_eq!(make(), make());
        let other = ArrivalGenerator::new(43)
            .rate(1.0)
            .horizon(50.0)
            .slack(60.0)
            .generate(10);
        assert_ne!(make(), other, "different seeds must differ");
    }

    #[test]
    fn arrivals_are_sorted_and_inside_the_horizon() {
        let stream = ArrivalGenerator::new(3)
            .rate(2.0)
            .horizon(30.0)
            .slack(10.0)
            .generate(5);
        assert!(stream.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        for req in &stream {
            assert!(req.arrival.value() < 30.0);
            assert_eq!(req.deadline.value(), req.arrival.value() + 10.0);
            assert!(req.device.index() < 5);
        }
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let stream = ArrivalGenerator::new(9)
            .rate(5.0)
            .horizon(200.0)
            .slack(50.0)
            .profile(ArrivalProfile::Hotspot {
                fraction: 0.2,
                share: 0.9,
            })
            .generate(20);
        let hot = stream.iter().filter(|r| r.device.index() < 4).count();
        assert!(
            hot * 2 > stream.len(),
            "hotspot (20% of devices) must draw the majority of {} requests, got {hot}",
            stream.len()
        );
    }

    #[test]
    fn bursts_raise_the_in_window_density() {
        let stream = ArrivalGenerator::new(11)
            .rate(0.5)
            .horizon(400.0)
            .slack(50.0)
            .profile(ArrivalProfile::Burst {
                period: 100.0,
                width: 10.0,
                factor: 10.0,
            })
            .generate(8);
        let in_burst = stream
            .iter()
            .filter(|r| r.arrival.value() % 100.0 < 10.0)
            .count();
        // 10% of the horizon carries 10x the rate: expect the majority
        // of arrivals inside the bursts.
        assert!(
            in_burst * 2 > stream.len(),
            "bursts must dominate: {in_burst} of {}",
            stream.len()
        );
    }
}
