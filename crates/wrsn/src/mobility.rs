//! Movement modeling: trips, travel times and movement costs.
//!
//! Devices and chargers move in straight lines at constant speed. A
//! [`Trip`] bundles the derived quantities schedulers and the testbed
//! executor need: distance, duration and monetary cost.
//!
//! # Examples
//!
//! ```
//! use ccs_wrsn::mobility::Trip;
//! use ccs_wrsn::geometry::Point;
//! use ccs_wrsn::units::{MetersPerSecond, CostPerMeter};
//!
//! let trip = Trip::new(
//!     Point::new(0.0, 0.0),
//!     Point::new(3.0, 4.0),
//!     MetersPerSecond::new(2.5),
//!     CostPerMeter::new(0.1),
//! );
//! assert_eq!(trip.distance().value(), 5.0);
//! assert_eq!(trip.duration().value(), 2.0);
//! assert_eq!(trip.cost().value(), 0.5);
//! ```

use crate::geometry::Point;
use crate::units::{Cost, CostPerMeter, Meters, MetersPerSecond, Seconds};
use serde::{Deserialize, Serialize};

/// A straight-line trip with its derived distance, duration and cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Trip {
    from: Point,
    to: Point,
    speed: MetersPerSecond,
    cost_rate: CostPerMeter,
}

impl Trip {
    /// Creates a trip.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not strictly positive or `cost_rate` negative.
    pub fn new(from: Point, to: Point, speed: MetersPerSecond, cost_rate: CostPerMeter) -> Self {
        assert!(
            speed.is_finite() && speed > MetersPerSecond::ZERO,
            "trip speed must be positive"
        );
        assert!(
            cost_rate.is_finite() && cost_rate >= CostPerMeter::ZERO,
            "trip cost rate must be nonnegative"
        );
        Trip {
            from,
            to,
            speed,
            cost_rate,
        }
    }

    /// Departure point.
    #[inline]
    pub fn from(&self) -> Point {
        self.from
    }

    /// Arrival point.
    #[inline]
    pub fn to(&self) -> Point {
        self.to
    }

    /// Straight-line trip distance.
    #[inline]
    pub fn distance(&self) -> Meters {
        self.from.distance(&self.to)
    }

    /// Travel time at constant speed.
    #[inline]
    pub fn duration(&self) -> Seconds {
        self.distance() / self.speed
    }

    /// Monetary movement cost.
    #[inline]
    pub fn cost(&self) -> Cost {
        self.cost_rate * self.distance()
    }

    /// Position `t` seconds after departure (clamped to the endpoints).
    pub fn position_at(&self, t: Seconds) -> Point {
        let total = self.duration();
        if total <= Seconds::ZERO {
            return self.to;
        }
        let frac = (t.max(Seconds::ZERO) / total).min(1.0);
        self.from.lerp(&self.to, frac)
    }
}

/// Total length of a polyline through `points`, in order.
pub fn path_length(points: &[Point]) -> Meters {
    points.windows(2).map(|w| w[0].distance(&w[1])).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trip_derived_quantities() {
        let t = Trip::new(
            Point::new(0.0, 0.0),
            Point::new(6.0, 8.0),
            MetersPerSecond::new(5.0),
            CostPerMeter::new(0.2),
        );
        assert_eq!(t.distance(), Meters::new(10.0));
        assert_eq!(t.duration(), Seconds::new(2.0));
        assert_eq!(t.cost(), Cost::new(2.0));
        assert_eq!(t.from(), Point::new(0.0, 0.0));
        assert_eq!(t.to(), Point::new(6.0, 8.0));
    }

    #[test]
    fn position_at_interpolates_and_clamps() {
        let t = Trip::new(
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            MetersPerSecond::new(1.0),
            CostPerMeter::ZERO,
        );
        assert_eq!(t.position_at(Seconds::new(5.0)), Point::new(5.0, 0.0));
        assert_eq!(t.position_at(Seconds::new(-1.0)), Point::new(0.0, 0.0));
        assert_eq!(t.position_at(Seconds::new(99.0)), Point::new(10.0, 0.0));
    }

    #[test]
    fn zero_length_trip() {
        let p = Point::new(2.0, 2.0);
        let t = Trip::new(p, p, MetersPerSecond::new(1.0), CostPerMeter::new(1.0));
        assert_eq!(t.distance(), Meters::ZERO);
        assert_eq!(t.cost(), Cost::ZERO);
        assert_eq!(t.position_at(Seconds::new(3.0)), p);
    }

    #[test]
    #[should_panic(expected = "trip speed must be positive")]
    fn rejects_zero_speed() {
        let _ = Trip::new(
            Point::ORIGIN,
            Point::new(1.0, 0.0),
            MetersPerSecond::ZERO,
            CostPerMeter::ZERO,
        );
    }

    #[test]
    fn path_length_sums_segments() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(3.0, 4.0),
            Point::new(3.0, 10.0),
        ];
        assert_eq!(path_length(&pts), Meters::new(11.0));
        assert_eq!(path_length(&pts[..1]), Meters::ZERO);
        assert_eq!(path_length(&[]), Meters::ZERO);
    }
}
