//! Planar geometry: points, rectangles and the weighted geometric median.
//!
//! The gathering-point optimization at the heart of the CCS problem is a
//! weighted Fermat point problem: minimize the weighted sum of Euclidean
//! distances from a set of anchors. [`weighted_geometric_median`] solves it
//! with Weiszfeld's algorithm, with the standard fix for iterates that land
//! exactly on an anchor.
//!
//! # Examples
//!
//! ```
//! use ccs_wrsn::geometry::{Point, weighted_geometric_median, WeiszfeldOptions};
//!
//! let anchors = [Point::new(0.0, 0.0), Point::new(2.0, 0.0), Point::new(1.0, 2.0)];
//! let weights = [1.0, 1.0, 1.0];
//! let median = weighted_geometric_median(&anchors, &weights, WeiszfeldOptions::default())
//!     .expect("non-degenerate input");
//! assert!(median.point.x > 0.5 && median.point.x < 1.5);
//! ```

use crate::units::Meters;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in the 2-D deployment field, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate in meters.
    pub x: f64,
    /// Vertical coordinate in meters.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from raw coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point) -> Meters {
        Meters::new(self.distance_value(other))
    }

    /// Euclidean distance as a raw `f64` — the exact value inside
    /// [`Point::distance`], for table-building code that batches distances
    /// without the unit wrapper.
    #[inline]
    pub fn distance_value(&self, other: &Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Squared Euclidean distance (cheaper; no sqrt).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Linear interpolation from `self` toward `other` by fraction `t` in `[0, 1]`.
    #[inline]
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Returns `true` if both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// The unweighted centroid of a set of points.
    ///
    /// Returns `None` for an empty slice.
    pub fn centroid(points: &[Point]) -> Option<Point> {
        if points.is_empty() {
            return None;
        }
        let n = points.len() as f64;
        let (sx, sy) = points
            .iter()
            .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
        Some(Point::new(sx / n, sy / n))
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

/// An axis-aligned rectangle, used as the deployment field boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Minimum corner (lower-left).
    pub min: Point,
    /// Maximum corner (upper-right).
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two corners.
    ///
    /// # Panics
    ///
    /// Panics if `min` is not coordinate-wise `<= max` or if any coordinate
    /// is non-finite.
    pub fn new(min: Point, max: Point) -> Self {
        assert!(
            min.is_finite() && max.is_finite(),
            "rect corners must be finite"
        );
        assert!(
            min.x <= max.x && min.y <= max.y,
            "rect min must be <= max: min={min}, max={max}"
        );
        Rect { min, max }
    }

    /// A square field `[0, side] x [0, side]`.
    pub fn square(side: f64) -> Self {
        Rect::new(Point::ORIGIN, Point::new(side, side))
    }

    /// Field width in meters.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Field height in meters.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Field area in square meters.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center of the rectangle.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// Returns `true` if the point lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamps a point into the rectangle.
    #[inline]
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// The diagonal length — an upper bound on any in-field distance.
    #[inline]
    pub fn diameter(&self) -> Meters {
        self.min.distance(&self.max)
    }

    /// Uniform grid of `k x k` candidate points covering the rectangle
    /// (including the boundary), row-major.
    ///
    /// Used as a cheap gathering-point candidate set. Returns the center for
    /// `k == 1`.
    pub fn grid(&self, k: usize) -> Vec<Point> {
        assert!(k >= 1, "grid resolution must be >= 1");
        if k == 1 {
            return vec![self.center()];
        }
        let mut out = Vec::with_capacity(k * k);
        for iy in 0..k {
            for ix in 0..k {
                let fx = ix as f64 / (k - 1) as f64;
                let fy = iy as f64 / (k - 1) as f64;
                out.push(Point::new(
                    self.min.x + fx * self.width(),
                    self.min.y + fy * self.height(),
                ));
            }
        }
        out
    }
}

impl Default for Rect {
    fn default() -> Self {
        Rect::square(100.0)
    }
}

/// Error returned by [`weighted_geometric_median`] on degenerate input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometricMedianError {
    /// The anchor set was empty.
    EmptyAnchors,
    /// Anchor and weight slices had different lengths.
    LengthMismatch {
        /// Number of anchor points supplied.
        anchors: usize,
        /// Number of weights supplied.
        weights: usize,
    },
    /// A weight was negative, NaN, or all weights were zero.
    InvalidWeights,
}

impl fmt::Display for GeometricMedianError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometricMedianError::EmptyAnchors => write!(f, "anchor set was empty"),
            GeometricMedianError::LengthMismatch { anchors, weights } => write!(
                f,
                "anchor/weight length mismatch: {anchors} anchors, {weights} weights"
            ),
            GeometricMedianError::InvalidWeights => {
                write!(f, "weights must be nonnegative, finite, and not all zero")
            }
        }
    }
}

impl std::error::Error for GeometricMedianError {}

/// Options controlling Weiszfeld iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeiszfeldOptions {
    /// Stop when the iterate moves less than this distance (meters).
    pub tolerance: f64,
    /// Hard cap on iterations.
    pub max_iterations: usize,
}

impl Default for WeiszfeldOptions {
    fn default() -> Self {
        WeiszfeldOptions {
            tolerance: 1e-7,
            max_iterations: 200,
        }
    }
}

/// Result of a geometric-median computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometricMedian {
    /// The (approximate) minimizing point.
    pub point: Point,
    /// The weighted sum of distances at `point`.
    pub objective: f64,
    /// Number of Weiszfeld iterations performed.
    pub iterations: usize,
}

/// Weighted cost `sum_i w_i * ||p - a_i||` at a candidate point.
pub fn weighted_distance_sum(p: &Point, anchors: &[Point], weights: &[f64]) -> f64 {
    anchors
        .iter()
        .zip(weights)
        .map(|(a, w)| w * p.distance(a).value())
        .sum()
}

/// Computes the weighted geometric median (Fermat point) of `anchors` with
/// the given nonnegative `weights` using Weiszfeld's algorithm.
///
/// Anchors with zero weight are ignored. If the iterate lands exactly on an
/// anchor, the standard Vardi–Zhang correction is applied; if that anchor is
/// optimal the algorithm stops there.
///
/// # Errors
///
/// Returns [`GeometricMedianError`] if the anchor set is empty, slice
/// lengths differ, or the weights are invalid (negative / NaN / all zero).
pub fn weighted_geometric_median(
    anchors: &[Point],
    weights: &[f64],
    options: WeiszfeldOptions,
) -> Result<GeometricMedian, GeometricMedianError> {
    if anchors.is_empty() {
        return Err(GeometricMedianError::EmptyAnchors);
    }
    if anchors.len() != weights.len() {
        return Err(GeometricMedianError::LengthMismatch {
            anchors: anchors.len(),
            weights: weights.len(),
        });
    }
    if weights.iter().any(|w| !w.is_finite() || *w < 0.0) || weights.iter().sum::<f64>() <= 0.0 {
        return Err(GeometricMedianError::InvalidWeights);
    }

    // Weighted centroid is the classic starting iterate.
    let wsum: f64 = weights.iter().sum();
    let mut current = Point::new(
        anchors
            .iter()
            .zip(weights)
            .map(|(a, w)| a.x * w)
            .sum::<f64>()
            / wsum,
        anchors
            .iter()
            .zip(weights)
            .map(|(a, w)| a.y * w)
            .sum::<f64>()
            / wsum,
    );

    let mut iterations = 0;
    while iterations < options.max_iterations {
        iterations += 1;
        let mut num_x = 0.0;
        let mut num_y = 0.0;
        let mut denom = 0.0;
        let mut at_anchor: Option<usize> = None;
        for (idx, (a, &w)) in anchors.iter().zip(weights).enumerate() {
            if w == 0.0 {
                continue;
            }
            let d = current.distance(a).value();
            if d < 1e-12 {
                at_anchor = Some(idx);
                continue;
            }
            let inv = w / d;
            num_x += a.x * inv;
            num_y += a.y * inv;
            denom += inv;
        }

        let next = if let Some(idx) = at_anchor {
            // Vardi–Zhang: check whether the anchor itself is the minimizer.
            // r is the norm of the subgradient contribution of the others.
            let r = (num_x - current.x * denom).hypot(num_y - current.y * denom);
            let w_at = weights[idx];
            if r <= w_at || denom == 0.0 {
                // Anchor dominates: it is the optimum.
                break;
            }
            let t = (1.0 - w_at / r).max(0.0);
            let pull = Point::new(num_x / denom, num_y / denom);
            current.lerp(&pull, t)
        } else {
            Point::new(num_x / denom, num_y / denom)
        };

        let step = current.distance(&next).value();
        current = next;
        if step < options.tolerance {
            break;
        }
    }

    Ok(GeometricMedian {
        point: current,
        objective: weighted_distance_sum(&current, anchors, weights),
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "expected {a} ~ {b} within {eps}");
    }

    #[test]
    fn distance_and_lerp() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), Meters::new(5.0));
        assert_eq!(a.distance_sq(&b), 25.0);
        assert_eq!(a.lerp(&b, 0.5), Point::new(1.5, 2.0));
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
    }

    #[test]
    fn centroid_basic() {
        assert_eq!(Point::centroid(&[]), None);
        let c = Point::centroid(&[Point::new(0.0, 0.0), Point::new(2.0, 4.0)]).unwrap();
        assert_eq!(c, Point::new(1.0, 2.0));
    }

    #[test]
    fn rect_contains_clamp() {
        let r = Rect::square(10.0);
        assert!(r.contains(&Point::new(5.0, 5.0)));
        assert!(r.contains(&Point::new(0.0, 10.0)));
        assert!(!r.contains(&Point::new(-0.1, 5.0)));
        assert_eq!(r.clamp(Point::new(-3.0, 12.0)), Point::new(0.0, 10.0));
        assert_eq!(r.center(), Point::new(5.0, 5.0));
        assert_close(r.area(), 100.0, 1e-12);
        assert_close(r.diameter().value(), (200.0f64).sqrt(), 1e-12);
    }

    #[test]
    #[should_panic(expected = "rect min must be <= max")]
    fn rect_rejects_inverted_corners() {
        let _ = Rect::new(Point::new(1.0, 0.0), Point::new(0.0, 1.0));
    }

    #[test]
    fn rect_grid_covers_corners() {
        let r = Rect::square(10.0);
        let g = r.grid(3);
        assert_eq!(g.len(), 9);
        assert!(g.contains(&Point::new(0.0, 0.0)));
        assert!(g.contains(&Point::new(10.0, 10.0)));
        assert!(g.contains(&Point::new(5.0, 5.0)));
        assert_eq!(r.grid(1), vec![r.center()]);
    }

    #[test]
    fn median_of_two_points_lies_between() {
        let anchors = [Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let m =
            weighted_geometric_median(&anchors, &[1.0, 1.0], WeiszfeldOptions::default()).unwrap();
        // Any point on the segment is optimal; objective must be 10.
        assert_close(m.objective, 10.0, 1e-6);
        assert!(m.point.y.abs() < 1e-6);
    }

    #[test]
    fn median_equilateral_triangle_is_fermat_point() {
        // Equilateral triangle with side 1; Fermat point = centroid,
        // objective = sqrt(3) (sum of distances = side * sqrt(3)).
        let h = (3.0f64).sqrt() / 2.0;
        let anchors = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, h),
        ];
        let m =
            weighted_geometric_median(&anchors, &[1.0; 3], WeiszfeldOptions::default()).unwrap();
        let centroid = Point::centroid(&anchors).unwrap();
        assert!(m.point.distance(&centroid).value() < 1e-5);
        assert_close(m.objective, (3.0f64).sqrt(), 1e-6);
    }

    #[test]
    fn heavy_weight_pulls_median_to_anchor() {
        let anchors = [Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let m = weighted_geometric_median(&anchors, &[100.0, 1.0], WeiszfeldOptions::default())
            .unwrap();
        // Weight 100 vs 1: optimum is exactly the heavy anchor.
        assert!(m.point.distance(&anchors[0]).value() < 1e-6);
    }

    #[test]
    fn median_stops_when_start_anchor_is_optimal() {
        // Weighted centroid of x = (0, 10, 5) with weights (1, 1, 2) is x = 5,
        // exactly the third anchor — and that anchor is the weighted 1-D
        // median, so the Vardi–Zhang test must stop there immediately.
        let anchors = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(5.0, 0.0),
        ];
        let m = weighted_geometric_median(&anchors, &[1.0, 1.0, 2.0], WeiszfeldOptions::default())
            .unwrap();
        assert!(m.point.distance(&Point::new(5.0, 0.0)).value() < 1e-9);
    }

    #[test]
    fn median_starting_on_anchor_escapes_when_not_optimal() {
        // Anchors x = (0, 9, 10) with weights (1, a, 9) have weighted
        // centroid exactly 9 for every a, so the iterate starts on the middle
        // anchor. With a = 0.5 the unique optimum is x = 10, so Weiszfeld
        // must escape the anchor via the Vardi–Zhang correction.
        let anchors = [
            Point::new(0.0, 0.0),
            Point::new(9.0, 0.0),
            Point::new(10.0, 0.0),
        ];
        let m = weighted_geometric_median(&anchors, &[1.0, 0.5, 9.0], WeiszfeldOptions::default())
            .unwrap();
        assert!(m.point.is_finite());
        assert!(
            m.point.distance(&Point::new(10.0, 0.0)).value() < 1e-3,
            "got {}",
            m.point
        );
    }

    #[test]
    fn median_single_anchor_is_that_anchor() {
        let m =
            weighted_geometric_median(&[Point::new(3.0, 4.0)], &[2.0], WeiszfeldOptions::default())
                .unwrap();
        assert!(m.point.distance(&Point::new(3.0, 4.0)).value() < 1e-9);
        assert_close(m.objective, 0.0, 1e-9);
    }

    #[test]
    fn median_error_cases() {
        let opts = WeiszfeldOptions::default();
        assert_eq!(
            weighted_geometric_median(&[], &[], opts).unwrap_err(),
            GeometricMedianError::EmptyAnchors
        );
        assert_eq!(
            weighted_geometric_median(&[Point::ORIGIN], &[1.0, 2.0], opts).unwrap_err(),
            GeometricMedianError::LengthMismatch {
                anchors: 1,
                weights: 2
            }
        );
        assert_eq!(
            weighted_geometric_median(&[Point::ORIGIN], &[-1.0], opts).unwrap_err(),
            GeometricMedianError::InvalidWeights
        );
        assert_eq!(
            weighted_geometric_median(&[Point::ORIGIN, Point::ORIGIN], &[0.0, 0.0], opts)
                .unwrap_err(),
            GeometricMedianError::InvalidWeights
        );
    }

    #[test]
    fn median_beats_grid_search() {
        // Weiszfeld's objective should be <= the best of a fine grid.
        let anchors = [
            Point::new(1.0, 2.0),
            Point::new(8.0, 1.0),
            Point::new(4.0, 9.0),
            Point::new(6.0, 5.0),
        ];
        let weights = [1.0, 2.0, 1.5, 0.5];
        let m = weighted_geometric_median(&anchors, &weights, WeiszfeldOptions::default()).unwrap();
        let best_grid = Rect::square(10.0)
            .grid(60)
            .iter()
            .map(|p| weighted_distance_sum(p, &anchors, &weights))
            .fold(f64::INFINITY, f64::min);
        assert!(
            m.objective <= best_grid + 1e-3,
            "weiszfeld {} vs grid {}",
            m.objective,
            best_grid
        );
    }
}

/// Lloyd's k-means over 2-D points: returns the cluster index of each
/// point. Deterministic: centroids are seeded by a farthest-point sweep
/// from the first point (k-means++-style but noise-free), ties break on
/// index.
///
/// Empty clusters are re-seeded on the farthest point from its centroid,
/// so exactly `min(k, points.len())` nonempty clusters come back.
///
/// # Panics
///
/// Panics if `points` is empty or `k == 0`.
pub fn kmeans(points: &[Point], k: usize, max_iterations: usize) -> Vec<usize> {
    assert!(!points.is_empty(), "k-means needs at least one point");
    assert!(k >= 1, "k-means needs at least one cluster");
    let k = k.min(points.len());

    // Farthest-point initialization (deterministic).
    let mut centers: Vec<Point> = vec![points[0]];
    while centers.len() < k {
        let far = points
            .iter()
            .enumerate()
            .max_by(|(i, p), (j, q)| {
                let dp = centers
                    .iter()
                    .map(|c| p.distance_sq(c))
                    .fold(f64::INFINITY, f64::min);
                let dq = centers
                    .iter()
                    .map(|c| q.distance_sq(c))
                    .fold(f64::INFINITY, f64::min);
                dp.total_cmp(&dq).then(j.cmp(i))
            })
            .map(|(_, p)| *p)
            .expect("points is nonempty");
        centers.push(far);
    }

    let mut assignment = vec![0usize; points.len()];
    for _ in 0..max_iterations.max(1) {
        // Assign.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = centers
                .iter()
                .enumerate()
                .min_by(|(a, ca), (b, cb)| {
                    p.distance_sq(ca)
                        .total_cmp(&p.distance_sq(cb))
                        .then(a.cmp(b))
                })
                .map(|(c, _)| c)
                .expect("k >= 1");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Update.
        for (c, center) in centers.iter_mut().enumerate() {
            let members: Vec<Point> = points
                .iter()
                .zip(&assignment)
                .filter(|(_, &a)| a == c)
                .map(|(p, _)| *p)
                .collect();
            match Point::centroid(&members) {
                Some(new_center) => *center = new_center,
                None => {
                    // Re-seed an emptied cluster on the globally farthest
                    // point from its current assignment's center.
                    if let Some((i, p)) = points.iter().enumerate().max_by(|(_, p), (_, q)| {
                        let dp = p.distance_sq(&centers_snapshot(points, &assignment, p));
                        let dq = q.distance_sq(&centers_snapshot(points, &assignment, q));
                        dp.total_cmp(&dq)
                    }) {
                        *center = *p;
                        assignment[i] = c;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    assignment
}

/// Centroid of the cluster a point currently belongs to (k-means helper).
fn centers_snapshot(points: &[Point], assignment: &[usize], p: &Point) -> Point {
    let idx = points
        .iter()
        .position(|q| q == p)
        .expect("point comes from the slice");
    let c = assignment[idx];
    let members: Vec<Point> = points
        .iter()
        .zip(assignment)
        .filter(|(_, &a)| a == c)
        .map(|(q, _)| *q)
        .collect();
    Point::centroid(&members).unwrap_or(*p)
}

#[cfg(test)]
mod kmeans_tests {
    use super::*;

    #[test]
    fn two_obvious_clusters_separate() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(100.0, 100.0),
            Point::new(101.0, 100.0),
        ];
        let a = kmeans(&pts, 2, 50);
        assert_eq!(a[0], a[1]);
        assert_eq!(a[0], a[2]);
        assert_eq!(a[3], a[4]);
        assert_ne!(a[0], a[3]);
    }

    #[test]
    fn k_larger_than_points_degenerates_gracefully() {
        let pts = [Point::new(0.0, 0.0), Point::new(5.0, 5.0)];
        let a = kmeans(&pts, 10, 10);
        assert_eq!(a.len(), 2);
        assert_ne!(a[0], a[1], "two points, two clusters");
    }

    #[test]
    fn single_cluster_takes_everything() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
        ];
        let a = kmeans(&pts, 1, 10);
        assert!(a.iter().all(|&c| c == 0));
    }

    #[test]
    fn kmeans_is_deterministic() {
        let pts: Vec<Point> = (0..30)
            .map(|i| Point::new((i * 7 % 13) as f64, (i * 11 % 17) as f64))
            .collect();
        assert_eq!(kmeans(&pts, 4, 100), kmeans(&pts, 4, 100));
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn rejects_empty_input() {
        let _ = kmeans(&[], 2, 10);
    }
}
