//! Wireless power transmission (WPT) modeling.
//!
//! Mobile chargers deliver energy over short-range wireless links. The
//! received power follows the empirical inverse-square law used throughout
//! the WRSN charging literature (Fu et al., He et al.):
//!
//! ```text
//! P_r(d) = alpha / (d + beta)^2   for d <= range,   0 otherwise
//! ```
//!
//! where `alpha` bundles transmit power, antenna gains and rectifier
//! efficiency, and `beta` smooths the near-field singularity. Device-side
//! charge time for a demand `w` at distance `d` is `w / (eta * P_r(d))` with
//! battery charging efficiency `eta`.
//!
//! # Examples
//!
//! ```
//! use ccs_wrsn::wpt::WptModel;
//! use ccs_wrsn::units::{Meters, Joules};
//!
//! let wpt = WptModel::default();
//! let near = wpt.received_power(Meters::new(0.2));
//! let far = wpt.received_power(Meters::new(1.0));
//! assert!(near > far);
//! let t = wpt.charge_time(Joules::new(100.0), Meters::new(0.2)).unwrap();
//! assert!(t.value() > 0.0);
//! ```

use crate::units::{Joules, Meters, Seconds, Watts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned when a charge cannot physically happen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WptError {
    /// The receiver is beyond the charger's effective range.
    OutOfRange {
        /// Requested link distance.
        distance: Meters,
        /// The model's effective range.
        range: Meters,
    },
    /// Requested energy was negative or non-finite.
    InvalidDemand(Joules),
}

impl fmt::Display for WptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WptError::OutOfRange { distance, range } => {
                write!(f, "receiver at {distance} beyond charging range {range}")
            }
            WptError::InvalidDemand(w) => write!(f, "invalid energy demand {w}"),
        }
    }
}

impl std::error::Error for WptError {}

/// Parameters of the inverse-square WPT link model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WptModel {
    /// Combined transmit-side constant (W·m²): transmit power × gains.
    pub alpha: f64,
    /// Near-field smoothing constant (m).
    pub beta: f64,
    /// Battery charging efficiency in `(0, 1]`.
    pub efficiency: f64,
    /// Effective charging range; beyond it received power is zero.
    pub range: Meters,
}

impl WptModel {
    /// Creates a model, validating all parameters.
    ///
    /// # Panics
    ///
    /// Panics if `alpha <= 0`, `beta < 0`, `efficiency` outside `(0, 1]`,
    /// or `range <= 0` (construction-time programming errors).
    pub fn new(alpha: f64, beta: f64, efficiency: f64, range: Meters) -> Self {
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be > 0");
        assert!(beta >= 0.0 && beta.is_finite(), "beta must be >= 0");
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1], got {efficiency}"
        );
        assert!(
            range.is_finite() && range > Meters::ZERO,
            "range must be positive"
        );
        WptModel {
            alpha,
            beta,
            efficiency,
            range,
        }
    }

    /// Received RF power at link distance `d`, zero beyond range.
    ///
    /// Negative distances are treated as zero (co-located).
    pub fn received_power(&self, d: Meters) -> Watts {
        let d = d.max(Meters::ZERO);
        if d > self.range {
            return Watts::ZERO;
        }
        let denom = d.value() + self.beta;
        Watts::new(self.alpha / (denom * denom))
    }

    /// Effective charging power after battery efficiency losses.
    pub fn effective_power(&self, d: Meters) -> Watts {
        self.received_power(d) * self.efficiency
    }

    /// Time to deliver `demand` Joules into the battery at distance `d`.
    ///
    /// # Errors
    ///
    /// Returns [`WptError::OutOfRange`] beyond the model range and
    /// [`WptError::InvalidDemand`] for negative/non-finite demands.
    pub fn charge_time(&self, demand: Joules, d: Meters) -> Result<Seconds, WptError> {
        if !demand.is_finite() || demand < Joules::ZERO {
            return Err(WptError::InvalidDemand(demand));
        }
        let p = self.effective_power(d);
        if p == Watts::ZERO {
            return Err(WptError::OutOfRange {
                distance: d,
                range: self.range,
            });
        }
        Ok(demand / p)
    }

    /// Energy delivered into the battery over `duration` at distance `d`.
    pub fn energy_delivered(&self, duration: Seconds, d: Meters) -> Joules {
        self.effective_power(d) * duration.max(Seconds::ZERO)
    }
}

impl Default for WptModel {
    /// Defaults calibrated to commodity 5 W-class WPT hardware at sub-meter
    /// range, matching the scale of the paper's testbed chargers.
    fn default() -> Self {
        WptModel::new(4.32, 0.2, 0.85, Meters::new(3.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_decays_with_distance() {
        let m = WptModel::default();
        let p0 = m.received_power(Meters::ZERO);
        let p1 = m.received_power(Meters::new(1.0));
        let p2 = m.received_power(Meters::new(2.0));
        assert!(p0 > p1 && p1 > p2);
        assert_eq!(m.received_power(Meters::new(10.0)), Watts::ZERO);
    }

    #[test]
    fn negative_distance_treated_as_contact() {
        let m = WptModel::default();
        assert_eq!(
            m.received_power(Meters::new(-1.0)),
            m.received_power(Meters::ZERO)
        );
    }

    #[test]
    fn effective_power_scales_by_efficiency() {
        let m = WptModel::new(4.0, 0.0, 0.5, Meters::new(5.0));
        let d = Meters::new(2.0);
        assert_eq!(m.effective_power(d), m.received_power(d) * 0.5);
        // alpha / d^2 = 4 / 4 = 1 W received, 0.5 W effective.
        assert_eq!(m.effective_power(d), Watts::new(0.5));
    }

    #[test]
    fn charge_time_round_trips_energy() {
        let m = WptModel::default();
        let d = Meters::new(0.5);
        let demand = Joules::new(250.0);
        let t = m.charge_time(demand, d).unwrap();
        let delivered = m.energy_delivered(t, d);
        assert!((delivered.value() - demand.value()).abs() < 1e-9);
    }

    #[test]
    fn charge_time_errors() {
        let m = WptModel::default();
        assert!(matches!(
            m.charge_time(Joules::new(10.0), Meters::new(100.0)),
            Err(WptError::OutOfRange { .. })
        ));
        assert!(matches!(
            m.charge_time(Joules::new(-1.0), Meters::new(0.1)),
            Err(WptError::InvalidDemand(_))
        ));
        assert!(matches!(
            m.charge_time(Joules::new(f64::NAN), Meters::new(0.1)),
            Err(WptError::InvalidDemand(_))
        ));
    }

    #[test]
    fn zero_duration_delivers_nothing() {
        let m = WptModel::default();
        assert_eq!(
            m.energy_delivered(Seconds::ZERO, Meters::new(0.1)),
            Joules::ZERO
        );
        assert_eq!(
            m.energy_delivered(Seconds::new(-5.0), Meters::new(0.1)),
            Joules::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "efficiency must be in (0, 1]")]
    fn rejects_bad_efficiency() {
        let _ = WptModel::new(1.0, 0.1, 1.5, Meters::new(1.0));
    }

    #[test]
    fn error_display() {
        let err = WptError::OutOfRange {
            distance: Meters::new(5.0),
            range: Meters::new(3.0),
        };
        assert!(err.to_string().contains("beyond charging range"));
    }
}
