//! Mobile-charger energy state for the online service.
//!
//! The one-shot planner treats a charger's tank as a per-schedule budget
//! ([`crate::entities::Charger::energy_budget`]); a *live* charger
//! instead drains a finite on-board battery continuously — on every
//! meter driven (`ecr_move`, J/m) and on every joule delivered
//! (`ecr_charge`, J drawn per J received, the inverse WPT conversion
//! efficiency) — and must return to its depot to refill when the
//! remaining charge cannot cover a committed tour plus the ride home.
//!
//! # Examples
//!
//! ```
//! use ccs_wrsn::geometry::Point;
//! use ccs_wrsn::mobile::{EnergyModel, MobileCharger};
//! use ccs_wrsn::units::{Joules, Meters};
//!
//! let mut mc = MobileCharger::new(Point::new(0.0, 0.0), EnergyModel::default());
//! let travel = Meters::new(100.0);
//! let delivered = Joules::new(5_000.0);
//! assert!(mc.can_cover(travel, delivered, Meters::new(100.0)));
//! mc.commit(Point::new(100.0, 0.0), travel, delivered);
//! assert!(mc.energy() < mc.capacity());
//! mc.refill();
//! assert_eq!(mc.energy(), mc.capacity());
//! assert_eq!(mc.depot_cycles(), 1);
//! ```

use crate::energy::Battery;
use crate::geometry::Point;
use crate::units::{Joules, Meters};
use serde::{Deserialize, Serialize};

/// Energy parameters of a mobile charger.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// On-board battery capacity.
    pub battery_cap: Joules,
    /// Energy drained per meter of travel (J/m).
    pub ecr_move: f64,
    /// Energy drawn from the tank per joule delivered to a device —
    /// `1 / efficiency` of the wireless transfer, so always >= 1.
    pub ecr_charge: f64,
}

impl Default for EnergyModel {
    /// A tank good for a handful of full-fleet tours: 500 kJ capacity,
    /// 20 J/m of travel drain, 1.25 J drawn per delivered joule (80%
    /// transfer efficiency).
    fn default() -> Self {
        EnergyModel {
            battery_cap: Joules::new(500_000.0),
            ecr_move: 20.0,
            ecr_charge: 1.25,
        }
    }
}

impl EnergyModel {
    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics unless the capacity is positive, `ecr_move` nonnegative
    /// and `ecr_charge >= 1` (a transfer cannot create energy).
    pub fn validate(&self) {
        assert!(
            self.battery_cap.is_finite() && self.battery_cap > Joules::ZERO,
            "battery capacity must be positive"
        );
        assert!(
            self.ecr_move.is_finite() && self.ecr_move >= 0.0,
            "ecr_move must be nonnegative"
        );
        assert!(
            self.ecr_charge.is_finite() && self.ecr_charge >= 1.0,
            "ecr_charge must be >= 1"
        );
    }

    /// Tank energy one tour consumes: travel drain plus delivery drain.
    pub fn tour_energy(&self, travel: Meters, delivered: Joules) -> Joules {
        Joules::new(travel.value() * self.ecr_move + delivered.value() * self.ecr_charge)
    }
}

/// Live energy state of one charger: position, tank, depot.
#[derive(Debug, Clone)]
pub struct MobileCharger {
    depot: Point,
    position: Point,
    battery: Battery,
    model: EnergyModel,
    depot_cycles: usize,
}

impl MobileCharger {
    /// A charger parked at its depot with a full tank.
    ///
    /// # Panics
    ///
    /// Panics if the model fails [`EnergyModel::validate`].
    pub fn new(depot: Point, model: EnergyModel) -> Self {
        model.validate();
        MobileCharger {
            depot,
            position: depot,
            battery: Battery::full(model.battery_cap).expect("validated capacity"),
            model,
            depot_cycles: 0,
        }
    }

    /// Home depot (refill point).
    pub fn depot(&self) -> Point {
        self.depot
    }

    /// Current position.
    pub fn position(&self) -> Point {
        self.position
    }

    /// Remaining tank energy.
    pub fn energy(&self) -> Joules {
        self.battery.level()
    }

    /// Tank capacity.
    pub fn capacity(&self) -> Joules {
        self.battery.capacity()
    }

    /// The energy model.
    pub fn model(&self) -> &EnergyModel {
        &self.model
    }

    /// Completed refill trips.
    pub fn depot_cycles(&self) -> usize {
        self.depot_cycles
    }

    /// Whether the current tank covers a tour of `travel` meters
    /// delivering `delivered`, *plus* the `home` ride back to the depot
    /// afterwards — the reserve that guarantees the charger is never
    /// stranded.
    pub fn can_cover(&self, travel: Meters, delivered: Joules, home: Meters) -> bool {
        let need = self.model.tour_energy(travel, delivered)
            + Joules::new(home.value() * self.model.ecr_move);
        self.battery.level() >= need
    }

    /// [`Self::can_cover`] for a freshly refilled tank: whether the tour
    /// is feasible *at all* for this charger class.
    pub fn can_cover_from_full(&self, travel: Meters, delivered: Joules, home: Meters) -> bool {
        let need = self.model.tour_energy(travel, delivered)
            + Joules::new(home.value() * self.model.ecr_move);
        self.battery.capacity() >= need
    }

    /// Commits a tour: drains the tank and moves the charger to `to`.
    ///
    /// # Panics
    ///
    /// Panics if the tank cannot cover the tour — callers gate on
    /// [`Self::can_cover`] first.
    pub fn commit(&mut self, to: Point, travel: Meters, delivered: Joules) {
        let need = self.model.tour_energy(travel, delivered);
        self.battery
            .discharge(need)
            .expect("committed tour must fit the tank");
        self.position = to;
    }

    /// Sends the charger home: returns the length of the ride back, with
    /// the charger parked at the depot on a full tank afterwards.
    pub fn refill(&mut self) -> Meters {
        let ride = self.position.distance(&self.depot);
        // The return leg was reserved by `can_cover`; an empty-at-depot
        // tank is fine, so drain saturating rather than panicking.
        let drain = Joules::new((ride.value() * self.model.ecr_move).min(self.energy().value()));
        self.battery
            .discharge(drain)
            .expect("return drain is clamped to the level");
        self.position = self.depot;
        let headroom = self.battery.headroom();
        self.battery.charge(headroom);
        self.depot_cycles += 1;
        ride
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel {
            battery_cap: Joules::new(10_000.0),
            ecr_move: 10.0,
            ecr_charge: 1.25,
        }
    }

    #[test]
    fn tours_drain_travel_and_delivery() {
        let mut mc = MobileCharger::new(Point::new(0.0, 0.0), model());
        mc.commit(
            Point::new(100.0, 0.0),
            Meters::new(100.0),
            Joules::new(4_000.0),
        );
        // 100 m * 10 J/m + 4000 J * 1.25 = 6000 J drained.
        assert_eq!(mc.energy(), Joules::new(4_000.0));
        assert_eq!(mc.position(), Point::new(100.0, 0.0));
    }

    #[test]
    fn reserve_keeps_the_ride_home_covered() {
        let mc = MobileCharger::new(Point::new(0.0, 0.0), model());
        // Tour fits alone (6000 J) but not with a 500 m ride home.
        assert!(mc.can_cover(Meters::new(100.0), Joules::new(4_000.0), Meters::new(100.0)));
        assert!(!mc.can_cover(Meters::new(100.0), Joules::new(4_000.0), Meters::new(500.0)));
    }

    #[test]
    fn refill_returns_home_full_and_counts_the_cycle() {
        let mut mc = MobileCharger::new(Point::new(0.0, 0.0), model());
        mc.commit(
            Point::new(200.0, 0.0),
            Meters::new(200.0),
            Joules::new(2_000.0),
        );
        let ride = mc.refill();
        assert_eq!(ride, Meters::new(200.0));
        assert_eq!(mc.position(), mc.depot());
        assert_eq!(mc.energy(), mc.capacity());
        assert_eq!(mc.depot_cycles(), 1);
    }

    #[test]
    #[should_panic(expected = "ecr_charge must be >= 1")]
    fn transfers_cannot_create_energy() {
        MobileCharger::new(
            Point::new(0.0, 0.0),
            EnergyModel {
                ecr_charge: 0.5,
                ..model()
            },
        );
    }
}
