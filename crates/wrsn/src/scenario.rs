//! Deployment scenarios and seeded workload generation.
//!
//! A [`Scenario`] is the immutable world state handed to the schedulers: a
//! field, a set of devices and a set of chargers. [`ScenarioGenerator`]
//! produces randomized scenarios deterministically from a seed, with all
//! entity parameters drawn from configurable ranges — this is the workload
//! generator behind every simulation figure.
//!
//! # Examples
//!
//! ```
//! use ccs_wrsn::scenario::ScenarioGenerator;
//!
//! let scenario = ScenarioGenerator::new(42)
//!     .devices(20)
//!     .chargers(5)
//!     .field_side(200.0)
//!     .generate();
//! assert_eq!(scenario.devices().len(), 20);
//! assert_eq!(scenario.chargers().len(), 5);
//! // Deterministic per seed:
//! let again = ScenarioGenerator::new(42).devices(20).chargers(5).field_side(200.0).generate();
//! assert_eq!(scenario, again);
//! ```

use crate::energy::Battery;
use crate::entities::{Charger, ChargerId, Device, DeviceId};
use crate::geometry::{Point, Rect};
use crate::units::{Cost, CostPerJoule, CostPerMeter, Joules, MetersPerSecond};
use crate::wpt::WptModel;
use rand::distributions::{Distribution, Uniform};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The immutable world handed to schedulers: field, devices, chargers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    field: Rect,
    devices: Vec<Device>,
    chargers: Vec<Charger>,
}

/// Error returned by [`Scenario::new`] on malformed input.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A device id did not equal its index (`devices[i].id() != i`).
    NonDenseDeviceIds {
        /// Index at which the mismatch occurred.
        index: usize,
    },
    /// A charger id did not equal its index.
    NonDenseChargerIds {
        /// Index at which the mismatch occurred.
        index: usize,
    },
    /// An entity was placed outside the field.
    OutOfField {
        /// Human-readable entity name (e.g. `d3`).
        entity: String,
    },
    /// The scenario had no devices or no chargers.
    Empty,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::NonDenseDeviceIds { index } => {
                write!(f, "device at index {index} has non-dense id")
            }
            ScenarioError::NonDenseChargerIds { index } => {
                write!(f, "charger at index {index} has non-dense id")
            }
            ScenarioError::OutOfField { entity } => {
                write!(f, "entity {entity} placed outside the field")
            }
            ScenarioError::Empty => write!(f, "scenario needs at least one device and one charger"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl Scenario {
    /// Assembles a scenario, validating id density and field containment.
    ///
    /// # Errors
    ///
    /// See [`ScenarioError`]. Ids must be dense (`devices[i].id() == i`) so
    /// schedulers can use ids as array indices.
    pub fn new(
        field: Rect,
        devices: Vec<Device>,
        chargers: Vec<Charger>,
    ) -> Result<Self, ScenarioError> {
        if devices.is_empty() || chargers.is_empty() {
            return Err(ScenarioError::Empty);
        }
        for (i, d) in devices.iter().enumerate() {
            if d.id().index() != i {
                return Err(ScenarioError::NonDenseDeviceIds { index: i });
            }
            if !field.contains(&d.position()) {
                return Err(ScenarioError::OutOfField {
                    entity: d.id().to_string(),
                });
            }
        }
        for (j, c) in chargers.iter().enumerate() {
            if c.id().index() != j {
                return Err(ScenarioError::NonDenseChargerIds { index: j });
            }
            if !field.contains(&c.position()) {
                return Err(ScenarioError::OutOfField {
                    entity: c.id().to_string(),
                });
            }
        }
        Ok(Scenario {
            field,
            devices,
            chargers,
        })
    }

    /// The deployment field.
    #[inline]
    pub fn field(&self) -> Rect {
        self.field
    }

    /// All devices, indexed by `DeviceId::index()`.
    #[inline]
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// All chargers, indexed by `ChargerId::index()`.
    #[inline]
    pub fn chargers(&self) -> &[Charger] {
        &self.chargers
    }

    /// Looks up a device by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is not part of this scenario.
    #[inline]
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.index()]
    }

    /// Looks up a charger by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is not part of this scenario.
    #[inline]
    pub fn charger(&self, id: ChargerId) -> &Charger {
        &self.chargers[id.index()]
    }

    /// Iterator over all device ids.
    pub fn device_ids(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.devices.len() as u32).map(DeviceId::new)
    }

    /// Iterator over all charger ids.
    pub fn charger_ids(&self) -> impl Iterator<Item = ChargerId> + '_ {
        (0..self.chargers.len() as u32).map(ChargerId::new)
    }

    /// Total energy demanded by all devices this round.
    pub fn total_demand(&self) -> Joules {
        self.devices.iter().map(|d| d.demand()).sum()
    }
}

/// An inclusive range `[lo, hi]` a parameter is sampled from uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParamRange {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

impl ParamRange {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo <= hi, "range lower bound {lo} exceeds upper bound {hi}");
        ParamRange { lo, hi }
    }

    /// A degenerate range that always yields `v`.
    pub fn fixed(v: f64) -> Self {
        ParamRange::new(v, v)
    }

    /// Samples uniformly from the range.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lo == self.hi {
            self.lo
        } else {
            Uniform::new_inclusive(self.lo, self.hi).sample(rng)
        }
    }
}

/// Spatial placement of generated entities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Placement {
    /// Uniformly at random over the field.
    Uniform,
    /// Gaussian clusters: `count` cluster centers drawn uniformly, entities
    /// assigned round-robin with isotropic spread `sigma` (meters), clipped
    /// to the field.
    Clustered {
        /// Number of cluster centers.
        count: usize,
        /// Standard deviation of the per-entity offset, meters.
        sigma: f64,
    },
}

/// Deterministic, seeded scenario generator.
///
/// Defaults match the simulation parameter table reconstructed in
/// `DESIGN.md` (see experiment `table1`). Builder methods override
/// individual knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioGenerator {
    seed: u64,
    n_devices: usize,
    n_chargers: usize,
    field: Rect,
    device_placement: Placement,
    charger_placement: Placement,
    demand: ParamRange,
    battery_capacity: ParamRange,
    device_move_cost: ParamRange,
    device_speed: ParamRange,
    base_fee: ParamRange,
    charger_travel_cost: ParamRange,
    energy_price: ParamRange,
    occupancy_rate: ParamRange,
    charger_speed: ParamRange,
    charger_energy_budget: Option<ParamRange>,
}

impl ScenarioGenerator {
    /// Creates a generator with the default parameter table and the given seed.
    pub fn new(seed: u64) -> Self {
        ScenarioGenerator {
            seed,
            n_devices: 50,
            n_chargers: 10,
            field: Rect::square(300.0),
            device_placement: Placement::Uniform,
            charger_placement: Placement::Uniform,
            demand: ParamRange::new(2_000.0, 8_000.0),
            battery_capacity: ParamRange::new(10_000.0, 10_000.0),
            device_move_cost: ParamRange::new(0.04, 0.10),
            device_speed: ParamRange::new(0.5, 1.5),
            base_fee: ParamRange::new(10.0, 22.0),
            charger_travel_cost: ParamRange::new(0.08, 0.15),
            energy_price: ParamRange::new(0.0030, 0.0050),
            occupancy_rate: ParamRange::new(2.0, 6.0),
            charger_speed: ParamRange::new(1.5, 3.0),
            charger_energy_budget: None,
        }
    }

    /// Number of devices to generate.
    pub fn devices(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one device");
        self.n_devices = n;
        self
    }

    /// Number of chargers to generate.
    pub fn chargers(mut self, m: usize) -> Self {
        assert!(m > 0, "need at least one charger");
        self.n_chargers = m;
        self
    }

    /// Square field of side `side` meters.
    pub fn field_side(mut self, side: f64) -> Self {
        self.field = Rect::square(side);
        self
    }

    /// Arbitrary rectangular field.
    pub fn field(mut self, field: Rect) -> Self {
        self.field = field;
        self
    }

    /// Device placement distribution.
    pub fn device_placement(mut self, p: Placement) -> Self {
        self.device_placement = p;
        self
    }

    /// Charger placement distribution.
    pub fn charger_placement(mut self, p: Placement) -> Self {
        self.charger_placement = p;
        self
    }

    /// Energy demand range (Joules).
    pub fn demand_range(mut self, r: ParamRange) -> Self {
        self.demand = r;
        self
    }

    /// Device movement cost range ($/m).
    pub fn device_move_cost_range(mut self, r: ParamRange) -> Self {
        self.device_move_cost = r;
        self
    }

    /// Charger base service fee range ($).
    pub fn base_fee_range(mut self, r: ParamRange) -> Self {
        self.base_fee = r;
        self
    }

    /// Charger travel cost range ($/m).
    pub fn charger_travel_cost_range(mut self, r: ParamRange) -> Self {
        self.charger_travel_cost = r;
        self
    }

    /// Energy price range ($/J).
    pub fn energy_price_range(mut self, r: ParamRange) -> Self {
        self.energy_price = r;
        self
    }

    /// Occupancy (congestion) rate range ($ per sqrt-member).
    pub fn occupancy_rate_range(mut self, r: ParamRange) -> Self {
        self.occupancy_rate = r;
        self
    }

    /// Per-hire charger energy budget range (Joules); `None` (the default)
    /// means unlimited chargers.
    ///
    /// # Panics
    ///
    /// Panics if the range admits non-positive budgets.
    pub fn charger_energy_budget_range(mut self, r: ParamRange) -> Self {
        assert!(r.lo > 0.0, "energy budgets must be positive");
        self.charger_energy_budget = Some(r);
        self
    }

    /// The seed this generator uses.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates the scenario. Deterministic: equal generators (including
    /// seed) produce equal scenarios.
    pub fn generate(&self) -> Scenario {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let device_positions =
            place_points(&mut rng, self.n_devices, self.field, self.device_placement);
        let charger_positions = place_points(
            &mut rng,
            self.n_chargers,
            self.field,
            self.charger_placement,
        );

        let devices = device_positions
            .into_iter()
            .enumerate()
            .map(|(i, pos)| {
                let capacity = Joules::new(self.battery_capacity.sample(&mut rng));
                let demand = Joules::new(self.demand.sample(&mut rng))
                    .min(capacity)
                    .max(Joules::ZERO);
                let level = (capacity - demand).max(Joules::ZERO);
                Device::builder(DeviceId::new(i as u32), pos)
                    .battery(
                        Battery::new(capacity, level)
                            .expect("generated battery parameters are valid"),
                    )
                    .demand(demand)
                    .move_cost_rate(CostPerMeter::new(self.device_move_cost.sample(&mut rng)))
                    .speed(MetersPerSecond::new(self.device_speed.sample(&mut rng)))
                    .build()
            })
            .collect();

        let chargers = charger_positions
            .into_iter()
            .enumerate()
            .map(|(j, pos)| {
                let mut b = Charger::builder(ChargerId::new(j as u32), pos)
                    .base_fee(Cost::new(self.base_fee.sample(&mut rng)))
                    .travel_cost_rate(CostPerMeter::new(self.charger_travel_cost.sample(&mut rng)))
                    .energy_price(CostPerJoule::new(self.energy_price.sample(&mut rng)))
                    .occupancy_rate(Cost::new(self.occupancy_rate.sample(&mut rng)))
                    .speed(MetersPerSecond::new(self.charger_speed.sample(&mut rng)))
                    .wpt(WptModel::default());
                if let Some(range) = &self.charger_energy_budget {
                    b = b.energy_budget(Joules::new(range.sample(&mut rng)));
                }
                b.build()
            })
            .collect();

        Scenario::new(self.field, devices, chargers)
            .expect("generator output is valid by construction")
    }
}

fn place_points<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    field: Rect,
    placement: Placement,
) -> Vec<Point> {
    match placement {
        Placement::Uniform => {
            let ux = Uniform::new_inclusive(field.min.x, field.max.x);
            let uy = Uniform::new_inclusive(field.min.y, field.max.y);
            (0..n)
                .map(|_| Point::new(ux.sample(rng), uy.sample(rng)))
                .collect()
        }
        Placement::Clustered { count, sigma } => {
            assert!(count >= 1, "need at least one cluster");
            assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be >= 0");
            let ux = Uniform::new_inclusive(field.min.x, field.max.x);
            let uy = Uniform::new_inclusive(field.min.y, field.max.y);
            let centers: Vec<Point> = (0..count)
                .map(|_| Point::new(ux.sample(rng), uy.sample(rng)))
                .collect();
            (0..n)
                .map(|i| {
                    let c = centers[i % count];
                    // Box–Muller without extra deps.
                    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    let r = (-2.0 * u1.ln()).sqrt() * sigma;
                    let theta = 2.0 * std::f64::consts::PI * u2;
                    field.clamp(Point::new(c.x + r * theta.cos(), c.y + r * theta.sin()))
                })
                .collect()
        }
    }
}

/// The seeded large-`n` scenario preset behind the scaling-curve suite
/// (`bench_scaling`, the grid-equivalence property tests): `n` devices in
/// Gaussian clusters over a field whose side grows with `sqrt(n)` (constant
/// spatial density — the paper's setup scaled up, not compressed), one
/// charger per ~50 devices spread uniformly. Deterministic: the same
/// `(seed, n)` always generates the same scenario, so benchmark cells and
/// CI runs are comparable across machines.
pub fn scale_preset(seed: u64, n_devices: usize) -> ScenarioGenerator {
    let side = 300.0 * (n_devices as f64 / 50.0).sqrt().max(1.0);
    ScenarioGenerator::new(seed)
        .devices(n_devices)
        .chargers((n_devices / 50).max(8))
        .field_side(side)
        .device_placement(Placement::Clustered {
            count: (n_devices / 100).max(4),
            sigma: side / 40.0,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a = ScenarioGenerator::new(7).devices(15).chargers(4).generate();
        let b = ScenarioGenerator::new(7).devices(15).chargers(4).generate();
        assert_eq!(a, b);
        let c = ScenarioGenerator::new(8).devices(15).chargers(4).generate();
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn generated_entities_are_in_field_with_dense_ids() {
        let s = ScenarioGenerator::new(1).devices(30).chargers(6).generate();
        for (i, d) in s.devices().iter().enumerate() {
            assert_eq!(d.id().index(), i);
            assert!(s.field().contains(&d.position()));
            assert!(d.demand() >= Joules::ZERO);
            assert!(d.battery().level() + d.demand() <= d.battery().capacity() + Joules::new(1e-9));
        }
        for (j, c) in s.chargers().iter().enumerate() {
            assert_eq!(c.id().index(), j);
            assert!(s.field().contains(&c.position()));
        }
    }

    #[test]
    fn clustered_placement_stays_in_field() {
        let s = ScenarioGenerator::new(3)
            .devices(40)
            .chargers(5)
            .field_side(100.0)
            .device_placement(Placement::Clustered {
                count: 3,
                sigma: 15.0,
            })
            .generate();
        for d in s.devices() {
            assert!(s.field().contains(&d.position()));
        }
    }

    #[test]
    fn scenario_new_validates() {
        let field = Rect::square(10.0);
        let dev = |i: u32| Device::builder(DeviceId::new(i), Point::new(5.0, 5.0)).build();
        let ch = |j: u32| Charger::builder(ChargerId::new(j), Point::new(5.0, 5.0)).build();

        assert_eq!(
            Scenario::new(field, vec![], vec![ch(0)]).unwrap_err(),
            ScenarioError::Empty
        );
        assert_eq!(
            Scenario::new(field, vec![dev(1)], vec![ch(0)]).unwrap_err(),
            ScenarioError::NonDenseDeviceIds { index: 0 }
        );
        assert_eq!(
            Scenario::new(field, vec![dev(0)], vec![ch(5)]).unwrap_err(),
            ScenarioError::NonDenseChargerIds { index: 0 }
        );
        let outside = Device::builder(DeviceId::new(0), Point::new(50.0, 5.0)).build();
        assert!(matches!(
            Scenario::new(field, vec![outside], vec![ch(0)]).unwrap_err(),
            ScenarioError::OutOfField { .. }
        ));
        assert!(Scenario::new(field, vec![dev(0)], vec![ch(0)]).is_ok());
    }

    #[test]
    fn scenario_lookups_and_totals() {
        let s = ScenarioGenerator::new(2).devices(5).chargers(2).generate();
        assert_eq!(s.device(DeviceId::new(3)).id(), DeviceId::new(3));
        assert_eq!(s.charger(ChargerId::new(1)).id(), ChargerId::new(1));
        assert_eq!(s.device_ids().count(), 5);
        assert_eq!(s.charger_ids().count(), 2);
        let manual: Joules = s.devices().iter().map(|d| d.demand()).sum();
        assert_eq!(s.total_demand(), manual);
    }

    #[test]
    fn scenario_serde_round_trip() {
        let s = ScenarioGenerator::new(11).devices(8).chargers(3).generate();
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn param_range_fixed_and_sampling() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let fixed = ParamRange::fixed(2.5);
        for _ in 0..10 {
            assert_eq!(fixed.sample(&mut rng), 2.5);
        }
        let r = ParamRange::new(1.0, 2.0);
        for _ in 0..100 {
            let v = r.sample(&mut rng);
            assert!((1.0..=2.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "range lower bound")]
    fn param_range_rejects_inverted() {
        let _ = ParamRange::new(2.0, 1.0);
    }

    #[test]
    fn scale_preset_is_deterministic_and_density_preserving() {
        let a = scale_preset(7, 1_000).generate();
        let b = scale_preset(7, 1_000).generate();
        assert_eq!(a, b, "same (seed, n) must generate the same scenario");
        assert_eq!(a.devices().len(), 1_000);
        assert_eq!(a.chargers().len(), 20);
        // Side scales with sqrt(n): 20x the devices of the n=50 default on
        // ~20x the area keeps the per-square-meter density constant.
        let small = scale_preset(7, 50).generate();
        let ratio = a.field().width() / small.field().width();
        assert!((ratio - 20.0f64.sqrt()).abs() < 1e-9, "ratio {ratio}");
    }
}
