//! # ccs-wrsn — Wireless Rechargeable Sensor Network substrate
//!
//! World model underneath the Cooperative Charging as Service (CCS)
//! reproduction: strongly-typed units, planar geometry (including the
//! weighted geometric median used for gathering-point optimization), battery
//! and WPT power-transfer physics, device/charger entities, movement
//! modeling, and a deterministic seeded scenario generator that produces the
//! workloads behind every simulation figure.
//!
//! # Example
//!
//! ```
//! use ccs_wrsn::prelude::*;
//!
//! let scenario = ScenarioGenerator::new(1).devices(10).chargers(3).generate();
//! let d = scenario.device(DeviceId::new(0));
//! let c = scenario.charger(ChargerId::new(0));
//! let link = d.position().distance(&c.position());
//! assert!(link.value() >= 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod arrival;
pub mod energy;
pub mod entities;
pub mod geometry;
pub mod mobile;
pub mod mobility;
pub mod scenario;
pub mod units;
pub mod wpt;

/// Convenient glob import of the most commonly used items.
pub mod prelude {
    pub use crate::arrival::{ArrivalGenerator, ArrivalProfile, ChargeRequest};
    pub use crate::energy::{Battery, EnergyDemand};
    pub use crate::entities::{Charger, ChargerId, Device, DeviceId};
    pub use crate::geometry::{Point, Rect};
    pub use crate::mobile::{EnergyModel, MobileCharger};
    pub use crate::mobility::Trip;
    pub use crate::scenario::{ParamRange, Placement, Scenario, ScenarioGenerator};
    pub use crate::units::{
        Cost, CostPerJoule, CostPerMeter, Joules, Meters, MetersPerSecond, Seconds, Watts,
    };
    pub use crate::wpt::WptModel;
}
