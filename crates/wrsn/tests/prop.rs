//! Property-based tests of the WRSN substrate.

use ccs_wrsn::energy::Battery;
use ccs_wrsn::geometry::{
    weighted_distance_sum, weighted_geometric_median, Point, Rect, WeiszfeldOptions,
};
use ccs_wrsn::mobility::Trip;
use ccs_wrsn::scenario::{ParamRange, ScenarioGenerator};
use ccs_wrsn::units::*;
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-1e3f64..1e3, -1e3f64..1e3).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn distance_is_a_metric(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert_eq!(a.distance(&b), b.distance(&a));
        prop_assert!(a.distance(&a).value() == 0.0);
        prop_assert!(a.distance(&b) >= Meters::ZERO);
        // Triangle inequality.
        prop_assert!(
            a.distance(&c).value() <= a.distance(&b).value() + b.distance(&c).value() + 1e-9
        );
    }

    #[test]
    fn distance_squared_is_consistent(a in arb_point(), b in arb_point()) {
        let d = a.distance(&b).value();
        prop_assert!((d * d - a.distance_sq(&b)).abs() < 1e-6 * (1.0 + d * d));
    }

    #[test]
    fn lerp_stays_on_segment(a in arb_point(), b in arb_point(), t in 0.0f64..1.0) {
        let p = a.lerp(&b, t);
        let via = a.distance(&p).value() + p.distance(&b).value();
        prop_assert!((via - a.distance(&b).value()).abs() < 1e-6);
    }

    #[test]
    fn rect_clamp_is_idempotent_and_contained(p in arb_point(), side in 1.0f64..500.0) {
        let r = Rect::square(side);
        let q = r.clamp(p);
        prop_assert!(r.contains(&q));
        prop_assert_eq!(r.clamp(q), q);
        if r.contains(&p) {
            prop_assert_eq!(q, p);
        }
    }

    #[test]
    fn weiszfeld_never_beats_but_matches_anchors(
        pts in proptest::collection::vec(arb_point(), 1..8),
        raw_weights in proptest::collection::vec(0.01f64..5.0, 8),
    ) {
        let weights = &raw_weights[..pts.len()];
        let m = weighted_geometric_median(&pts, weights, WeiszfeldOptions::default()).unwrap();
        prop_assert!(m.point.is_finite());
        // Optimal objective can never exceed the best anchor's objective.
        let best_anchor = pts
            .iter()
            .map(|p| weighted_distance_sum(p, &pts, weights))
            .fold(f64::INFINITY, f64::min);
        // When the optimum sits exactly on an anchor, Weiszfeld converges
        // to it only asymptotically; allow a small relative slack.
        prop_assert!(m.objective <= best_anchor * 1.01 + 1e-9);
    }

    #[test]
    fn battery_never_leaves_bounds(
        capacity in 1.0f64..10_000.0,
        start_frac in 0.0f64..1.0,
        ops in proptest::collection::vec((any::<bool>(), 0.0f64..5_000.0), 0..40),
    ) {
        let cap = Joules::new(capacity);
        let mut b = Battery::new(cap, cap * start_frac).unwrap();
        for (charge, amount) in ops {
            let amount = Joules::new(amount);
            if charge {
                let overflow = b.charge(amount);
                prop_assert!(overflow >= Joules::ZERO);
            } else {
                // Discharge what is available.
                let take = amount.min(b.level());
                b.discharge(take).unwrap();
            }
            prop_assert!(b.level() >= Joules::ZERO);
            prop_assert!(b.level() <= b.capacity());
            prop_assert!((0.0..=1.0).contains(&b.state_of_charge()));
        }
    }

    #[test]
    fn trips_have_consistent_kinematics(
        a in arb_point(),
        b in arb_point(),
        speed in 0.1f64..10.0,
        rate in 0.0f64..1.0,
        t in 0.0f64..1e4,
    ) {
        let trip = Trip::new(a, b, MetersPerSecond::new(speed), CostPerMeter::new(rate));
        prop_assert!((trip.duration().value() - trip.distance().value() / speed).abs() < 1e-9);
        prop_assert!((trip.cost().value() - rate * trip.distance().value()).abs() < 1e-9);
        let pos = trip.position_at(Seconds::new(t));
        // Positions always lie on the segment.
        let via = a.distance(&pos).value() + pos.distance(&b).value();
        prop_assert!((via - trip.distance().value()).abs() < 1e-6);
    }

    #[test]
    fn generated_scenarios_always_validate(
        seed in any::<u64>(),
        n in 1usize..40,
        m in 1usize..10,
        side in 10.0f64..1_000.0,
    ) {
        let s = ScenarioGenerator::new(seed)
            .devices(n)
            .chargers(m)
            .field_side(side)
            .generate();
        prop_assert_eq!(s.devices().len(), n);
        prop_assert_eq!(s.chargers().len(), m);
        for d in s.devices() {
            prop_assert!(s.field().contains(&d.position()));
            prop_assert!(d.demand() >= Joules::ZERO);
        }
        prop_assert!(s.total_demand() >= Joules::ZERO);
    }

    #[test]
    fn param_range_samples_in_bounds(lo in -100.0f64..100.0, width in 0.0f64..50.0, seed in any::<u64>()) {
        use rand::SeedableRng;
        let r = ParamRange::new(lo, lo + width);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..32 {
            let v = r.sample(&mut rng);
            prop_assert!(v >= lo && v <= lo + width);
        }
    }
}
