//! # ccs-bench — benchmark harness of the CCS reproduction
//!
//! Regenerates every table and figure of the paper's evaluation (see the
//! per-experiment index in `DESIGN.md`):
//!
//! ```text
//! cargo run --release -p ccs-bench --bin experiments            # everything
//! cargo run --release -p ccs-bench --bin experiments -- fig8_vs_optimal
//! ```
//!
//! Results are printed and written as CSV/markdown under `results/`.
//! Criterion micro-benchmarks live under `benches/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod exp;
pub mod gate;
