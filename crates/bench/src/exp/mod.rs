//! The experiment registry: one runner per paper table/figure family
//! (see the per-experiment index in `DESIGN.md`).

pub mod ablations;
pub mod common;
pub mod extensions;
pub mod field_exp;
pub mod online_exp;
pub mod params;
pub mod plot;
pub mod runtime;
pub mod sharing_exp;
pub mod sim_figures;
pub mod small;

use std::io;
use std::path::Path;

/// All experiment ids, in recommended execution order.
pub const ALL: &[&str] = &[
    "table1",
    "fig5_cost_vs_devices",
    "fig6_cost_vs_chargers",
    "fig7_cost_vs_field",
    "fig8_vs_optimal",
    "fig9_runtime",
    "fig10_convergence",
    "fig11_sharing",
    "table2_field",
    "fig12_field_breakdown",
    "fig13_lifetime",
    "fig14_failures",
    "fig15_poa",
    "fig16_recovery",
    "fig_online",
    "abl_gathering",
    "abl_switch_rule",
    "abl_sfm",
    "abl_exclusive",
];

/// Runs one experiment by id into `out`.
///
/// # Errors
///
/// Returns `InvalidInput` for unknown ids, and propagates I/O errors from
/// result writing.
pub fn run(id: &str, out: &Path) -> io::Result<()> {
    match id {
        "table1" => params::table1(out),
        "fig5_cost_vs_devices" => sim_figures::fig5(out),
        "fig6_cost_vs_chargers" => sim_figures::fig6(out),
        "fig7_cost_vs_field" => sim_figures::fig7(out),
        "fig8_vs_optimal" => small::fig8(out).map(|_| ()),
        "fig9_runtime" => runtime::fig9(out),
        "fig10_convergence" => runtime::fig10(out),
        "fig11_sharing" => sharing_exp::fig11(out),
        "table2_field" => field_exp::table2(out).map(|_| ()),
        "fig12_field_breakdown" => field_exp::fig12(out),
        "fig13_lifetime" => extensions::fig13(out),
        "fig14_failures" => extensions::fig14(out),
        "fig15_poa" => extensions::fig15(out),
        "fig16_recovery" => extensions::fig16(out),
        "fig_online" => online_exp::fig_online(out),
        "abl_gathering" => ablations::abl_gathering(out),
        "abl_switch_rule" => ablations::abl_switch_rule(out),
        "abl_sfm" => ablations::abl_sfm(out),
        "abl_exclusive" => extensions::abl_exclusive(out),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("unknown experiment id '{other}'; known: {}", ALL.join(", ")),
        )),
    }
}
