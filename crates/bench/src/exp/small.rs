//! `fig8_vs_optimal`: the small-instance comparison against the exact
//! optimum — the experiment behind the paper's two simulation headlines:
//!
//! * **H1** — CCSA's average comprehensive cost ≈ 27.3% below the
//!   noncooperation baseline;
//! * **H2** — CCSA ≈ 7.3% above the optimal solution on average.
//!
//! We sweep `n ∈ 4..=12` with `m = 4` and many seeds, reporting the mean
//! saving over NCP and the mean gap above OPT per point and pooled.

use crate::exp::common::{mean_std, parallel_map, write_csv};
use ccs_core::prelude::*;
use ccs_wrsn::scenario::ScenarioGenerator;
use ccs_wrsn::units::Cost;
use std::io;
use std::path::Path;

const SEEDS: u64 = 20;

/// Runs the experiment, returning the pooled `(saving %, gap %)` for use by
/// EXPERIMENTS.md tooling.
pub fn fig8(out: &Path) -> io::Result<(f64, f64)> {
    println!("== fig8: CCSA vs OPT vs NCP on small instances (m = 4) ==");
    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>14} {:>13} {:>13}",
        "n", "opt avg$", "ccsa avg$", "ncp avg$", "ccsa save %", "ccsa gap %", "ccsga gap %"
    );

    let mut rows = Vec::new();
    let mut pooled_saving = Vec::new();
    let mut pooled_gap = Vec::new();
    for n in 4usize..=12 {
        let runs = parallel_map((0..SEEDS).collect::<Vec<u64>>(), |seed| {
            let scenario = ScenarioGenerator::new(seed.wrapping_mul(7919) + n as u64)
                .devices(n)
                .chargers(4)
                .field_side(200.0)
                .generate();
            let problem = CcsProblem::new(scenario);
            let exact = optimal(&problem, &EqualShare, OptimalOptions::default())
                .expect("n <= 12 is within the exact solver's budget");
            let approx = ccsa(&problem, &EqualShare, CcsaOptions::default());
            let game = ccsga(&problem, &EqualShare, CcsgaOptions::default());
            let solo = noncooperation(&problem, &EqualShare);
            (
                exact.total_cost().value(),
                approx.total_cost().value(),
                game.schedule.total_cost().value(),
                solo.total_cost().value(),
            )
        });

        let opt_avg = runs.iter().map(|r| r.0).sum::<f64>() / runs.len() as f64 / n as f64;
        let ccsa_avg = runs.iter().map(|r| r.1).sum::<f64>() / runs.len() as f64 / n as f64;
        let ncp_avg = runs.iter().map(|r| r.3).sum::<f64>() / runs.len() as f64 / n as f64;
        // Degenerate (non-positive) baselines make the ratios undefined;
        // the fallible metric forms drop those runs instead of feeding
        // `inf`/NaN into the pooled means.
        let savings: Vec<f64> = runs
            .iter()
            .filter_map(|r| try_saving_percent(Cost::new(r.1), Cost::new(r.3)))
            .collect();
        let gaps: Vec<f64> = runs
            .iter()
            .filter_map(|r| try_gap_above_optimal_percent(Cost::new(r.1), Cost::new(r.0)))
            .collect();
        let ccsga_gaps: Vec<f64> = runs
            .iter()
            .filter_map(|r| try_gap_above_optimal_percent(Cost::new(r.2), Cost::new(r.0)))
            .collect();
        pooled_saving.extend_from_slice(&savings);
        pooled_gap.extend_from_slice(&gaps);

        let (saving_mean, saving_std) = mean_std(&savings);
        let (gap_mean, gap_std) = mean_std(&gaps);
        let (ccsga_gap_mean, _) = mean_std(&ccsga_gaps);
        println!(
            "{:>4} {:>12.2} {:>12.2} {:>12.2} {:>14.1} {:>13.1} {:>13.1}",
            n, opt_avg, ccsa_avg, ncp_avg, saving_mean, gap_mean, ccsga_gap_mean
        );
        rows.push(format!(
            "{n},{opt_avg:.4},{ccsa_avg:.4},{ncp_avg:.4},{saving_mean:.2},{saving_std:.2},{gap_mean:.2},{gap_std:.2},{ccsga_gap_mean:.2}"
        ));
    }

    let (pooled_saving_mean, _) = mean_std(&pooled_saving);
    let (pooled_gap_mean, _) = mean_std(&pooled_gap);
    println!(
        "\npooled over all n and seeds: CCSA saves {pooled_saving_mean:.1}% vs NCP (paper: 27.3%), \
         sits {pooled_gap_mean:.1}% above OPT (paper: 7.3%)"
    );
    rows.push(format!(
        "pooled,,,,{pooled_saving_mean:.2},,{pooled_gap_mean:.2},,"
    ));
    write_csv(
        out,
        "fig8.csv",
        "n,opt_avg,ccsa_avg,ncp_avg,ccsa_saving_mean_pct,ccsa_saving_std,ccsa_gap_mean_pct,ccsa_gap_std,ccsga_gap_mean_pct",
        &rows,
    )?;
    Ok((pooled_saving_mean, pooled_gap_mean))
}
