//! Extension experiments beyond the paper's evaluation (the "future work"
//! directions its service framing implies):
//!
//! * `fig13_lifetime` — multi-round operation: cumulative operating
//!   expenditure and hire counts over a 30-round horizon per policy;
//! * `fig14_failures` — robustness: realized cost and served fraction
//!   under increasing charger-breakdown rates (cooperation makes fewer
//!   hires, so it exposes fewer failure opportunities);
//! * `fig15_poa` — price of anarchy: how far CCSGA's Nash equilibria sit
//!   from the exact optimum, and how often the allocations are core-stable;
//! * `fig16_recovery` — closed-loop recovery: served fraction and realized
//!   cost with recovery on/off under rising breakdown probability (what it
//!   costs to actually deliver the service instead of writing losses off);
//! * `abl_exclusive` — the price of exclusivity: CCSA with shared
//!   providers vs the Hungarian-reassigned one-hire-per-provider variant.

use crate::exp::common::{mean_std, parallel_map, write_csv};
use ccs_core::prelude::*;
use ccs_testbed::noise::{FailureModel, NoiseModel};
use ccs_testbed::recover::recover;
use ccs_testbed::sim::execute_with_failures;
use ccs_wrsn::scenario::ScenarioGenerator;
use std::io;
use std::path::Path;

/// Multi-round operating expenditure.
pub fn fig13(out: &Path) -> io::Result<()> {
    println!("== fig13: 30-round lifetime OPEX (n = 20, m = 5, 10 seeds) ==");
    println!(
        "{:>8} {:>12} {:>8} {:>14} {:>12}",
        "policy", "opex $", "hires", "energy kJ", "survival %"
    );
    let policies = [
        ("ncp", Policy::Noncooperative),
        ("ccsa", Policy::Ccsa(CcsaOptions::default())),
        ("ccsga", Policy::Ccsga(CcsgaOptions::default())),
    ];
    let runs = parallel_map((0..10u64).collect::<Vec<_>>(), |seed| {
        let scenario = ScenarioGenerator::new(seed.wrapping_mul(41) + 5)
            .devices(20)
            .chargers(5)
            .generate();
        let config = LifetimeConfig {
            rounds: 30,
            seed,
            ..Default::default()
        };
        policies
            .iter()
            .map(|(_, policy)| {
                let r = run_lifetime(
                    &scenario,
                    &CostParams::default(),
                    &EqualShare,
                    *policy,
                    &config,
                );
                (
                    r.total_cost.value(),
                    r.hires as f64,
                    r.energy_purchased.value() / 1000.0,
                    r.survival_rate * 100.0,
                )
            })
            .collect::<Vec<_>>()
    });
    let mut rows = Vec::new();
    for (pi, (name, _)) in policies.iter().enumerate() {
        let (opex, opex_std) = mean_std(&runs.iter().map(|r| r[pi].0).collect::<Vec<_>>());
        let (hires, _) = mean_std(&runs.iter().map(|r| r[pi].1).collect::<Vec<_>>());
        let (energy, _) = mean_std(&runs.iter().map(|r| r[pi].2).collect::<Vec<_>>());
        let (survival, _) = mean_std(&runs.iter().map(|r| r[pi].3).collect::<Vec<_>>());
        println!(
            "{:>8} {:>12.1} {:>8.1} {:>14.1} {:>12.1}",
            name, opex, hires, energy, survival
        );
        rows.push(format!(
            "{name},{opex:.4},{opex_std:.4},{hires:.2},{energy:.3},{survival:.2}"
        ));
    }
    write_csv(
        out,
        "fig13.csv",
        "policy,opex_mean,opex_std,hires_mean,energy_kJ,survival_pct",
        &rows,
    )?;
    Ok(())
}

/// Robustness to charger breakdowns.
pub fn fig14(out: &Path) -> io::Result<()> {
    println!(
        "== fig14: served fraction & realized cost vs breakdown rate (n = 12, m = 4, 20 seeds) =="
    );
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14}",
        "p_break", "ccsa served %", "ncp served %", "ccsa real $", "ncp real $"
    );
    let mut rows = Vec::new();
    for &p_break in &[0.0f64, 0.05, 0.10, 0.20, 0.30] {
        let runs = parallel_map((0..20u64).collect::<Vec<_>>(), |seed| {
            let problem = CcsProblem::new(
                ScenarioGenerator::new(seed.wrapping_mul(53) + 3)
                    .devices(12)
                    .chargers(4)
                    .generate(),
            );
            let failures = FailureModel {
                charger_breakdown_prob: p_break,
                device_no_show_prob: 0.0,
            };
            let coop = ccsa(&problem, &EqualShare, CcsaOptions::default());
            let solo = noncooperation(&problem, &EqualShare);
            let coop_run = execute_with_failures(
                &problem,
                &coop,
                &EqualShare,
                &NoiseModel::field(),
                &failures,
                seed,
            );
            let solo_run = execute_with_failures(
                &problem,
                &solo,
                &EqualShare,
                &NoiseModel::field(),
                &failures,
                seed,
            );
            (
                coop_run.served_fraction() * 100.0,
                solo_run.served_fraction() * 100.0,
                coop_run.total_cost().value(),
                solo_run.total_cost().value(),
            )
        });
        let (c_served, _) = mean_std(&runs.iter().map(|r| r.0).collect::<Vec<_>>());
        let (n_served, _) = mean_std(&runs.iter().map(|r| r.1).collect::<Vec<_>>());
        let (c_cost, _) = mean_std(&runs.iter().map(|r| r.2).collect::<Vec<_>>());
        let (n_cost, _) = mean_std(&runs.iter().map(|r| r.3).collect::<Vec<_>>());
        println!(
            "{:>8.2} {:>14.1} {:>14.1} {:>14.1} {:>14.1}",
            p_break, c_served, n_served, c_cost, n_cost
        );
        rows.push(format!(
            "{p_break},{c_served:.2},{n_served:.2},{c_cost:.4},{n_cost:.4}"
        ));
    }
    write_csv(
        out,
        "fig14.csv",
        "breakdown_prob,ccsa_served_pct,ncp_served_pct,ccsa_realized_cost,ncp_realized_cost",
        &rows,
    )?;
    Ok(())
}

/// Closed-loop recovery: what it costs to actually deliver the service.
///
/// Recovery re-plans unserved devices up to 3 extra rounds and then
/// degrades stragglers to solo dispatches, so its served fraction is 100%
/// by construction; the experiment measures the *price* of that guarantee
/// (realized cost and extra rounds) against the write-off baseline as
/// breakdowns get more likely.
pub fn fig16(out: &Path) -> io::Result<()> {
    println!("== fig16: recovery on/off vs breakdown rate (n = 12, m = 4, noshow 5%, 20 seeds) ==");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "p_break", "off served%", "on served%", "off real $", "on real $", "extra rds"
    );
    let mut rows = Vec::new();
    for &p_break in &[0.0f64, 0.05, 0.10, 0.20, 0.30] {
        let runs = parallel_map((0..20u64).collect::<Vec<_>>(), |seed| {
            let problem = CcsProblem::new(
                ScenarioGenerator::new(seed.wrapping_mul(67) + 19)
                    .devices(12)
                    .chargers(4)
                    .generate(),
            );
            let failures = FailureModel {
                charger_breakdown_prob: p_break,
                device_no_show_prob: 0.05,
            };
            let noise = NoiseModel::field();
            let plan = ccsa(&problem, &EqualShare, CcsaOptions::default());
            let off = execute_with_failures(&problem, &plan, &EqualShare, &noise, &failures, seed);
            let on = recover(
                &problem,
                &plan,
                Policy::Ccsa(CcsaOptions::default()),
                &EqualShare,
                &noise,
                &failures,
                seed,
                &RecoveryConfig::default(),
            );
            (
                off.served_fraction() * 100.0,
                on.served_fraction() * 100.0,
                off.total_cost().value(),
                on.total_cost().value(),
                on.recovery_rounds() as f64,
            )
        });
        let (off_served, _) = mean_std(&runs.iter().map(|r| r.0).collect::<Vec<_>>());
        let (on_served, _) = mean_std(&runs.iter().map(|r| r.1).collect::<Vec<_>>());
        let (off_cost, _) = mean_std(&runs.iter().map(|r| r.2).collect::<Vec<_>>());
        let (on_cost, _) = mean_std(&runs.iter().map(|r| r.3).collect::<Vec<_>>());
        let (extra, _) = mean_std(&runs.iter().map(|r| r.4).collect::<Vec<_>>());
        println!(
            "{:>8.2} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>10.2}",
            p_break, off_served, on_served, off_cost, on_cost, extra
        );
        rows.push(format!(
            "{p_break},{off_served:.2},{on_served:.2},{off_cost:.4},{on_cost:.4},{extra:.3}"
        ));
    }
    write_csv(
        out,
        "fig16.csv",
        "breakdown_prob,off_served_pct,on_served_pct,off_realized_cost,on_realized_cost,extra_rounds",
        &rows,
    )?;
    Ok(())
}

/// The price of exclusivity.
pub fn abl_exclusive(out: &Path) -> io::Result<()> {
    println!("== abl_exclusive: shared vs one-hire-per-charger (n = 30, m = 12, 15 seeds) ==");
    let runs = parallel_map((0..15u64).collect::<Vec<_>>(), |seed| {
        let problem = CcsProblem::new(
            ScenarioGenerator::new(seed.wrapping_mul(11) + 7)
                .devices(30)
                .chargers(12)
                .generate(),
        );
        let shared = ccsa(&problem, &EqualShare, CcsaOptions::default());
        let ratio = exclusivity_ratio(&shared);
        match enforce_exclusivity(&problem, &shared, &EqualShare) {
            Ok(exclusive) => Some((
                shared.total_cost().value(),
                exclusive.total_cost().value(),
                ratio,
            )),
            Err(_) => None, // more groups than chargers this seed
        }
    });
    let ok: Vec<_> = runs.into_iter().flatten().collect();
    let (shared_cost, _) = mean_std(&ok.iter().map(|r| r.0).collect::<Vec<_>>());
    let (exclusive_cost, _) = mean_std(&ok.iter().map(|r| r.1).collect::<Vec<_>>());
    let (ratio, _) = mean_std(&ok.iter().map(|r| r.2).collect::<Vec<_>>());
    let premium = (exclusive_cost / shared_cost - 1.0) * 100.0;
    println!(
        "shared {shared_cost:.1} $, exclusive {exclusive_cost:.1} $ (+{premium:.1}%); \
         CCSA already uses distinct chargers for {:.0}% of its groups",
        ratio * 100.0
    );
    write_csv(
        out,
        "abl_exclusive.csv",
        "shared_cost,exclusive_cost,premium_pct,natural_exclusivity_ratio",
        &[format!(
            "{shared_cost:.4},{exclusive_cost:.4},{premium:.3},{ratio:.4}"
        )],
    )?;
    Ok(())
}

/// Price of anarchy of the CCS coalition game: the ratio of CCSGA's
/// Nash-equilibrium cost to the exact optimum on small instances, plus how
/// often the resulting allocation is *core-stable* (no coalition of any
/// shape could profitably defect).
pub fn fig15(out: &Path) -> io::Result<()> {
    println!("== fig15: price of anarchy & core stability (n = 8, m = 3, 30 seeds) ==");
    let runs = parallel_map((0..30u64).collect::<Vec<_>>(), |seed| {
        let problem = CcsProblem::new(
            ScenarioGenerator::new(seed.wrapping_mul(61) + 13)
                .devices(8)
                .chargers(3)
                .generate(),
        );
        let exact = optimal(&problem, &EqualShare, OptimalOptions::default())
            .expect("n = 8 fits the exact solver");
        let game = ccsga(&problem, &EqualShare, CcsgaOptions::default());
        let poa = game.schedule.total_cost() / exact.total_cost();
        let ne_core_stable =
            is_core_stable(&problem, &game.schedule, ccs_wrsn::units::Cost::new(1e-6));
        let opt_core_stable = is_core_stable(&problem, &exact, ccs_wrsn::units::Cost::new(1e-6));
        (poa, game.nash_stable, ne_core_stable, opt_core_stable)
    });

    let poas: Vec<f64> = runs.iter().map(|r| r.0).collect();
    let (poa_mean, poa_std) = mean_std(&poas);
    let poa_max = poas.iter().copied().fold(1.0f64, f64::max);
    let nash = runs.iter().filter(|r| r.1).count() as f64 / runs.len() as f64 * 100.0;
    let ne_core = runs.iter().filter(|r| r.2).count() as f64 / runs.len() as f64 * 100.0;
    let opt_core = runs.iter().filter(|r| r.3).count() as f64 / runs.len() as f64 * 100.0;
    println!(
        "price of anarchy: mean {poa_mean:.4} ± {poa_std:.4}, worst {poa_max:.4}; \
         Nash-stable {nash:.0}%, NE allocation core-stable {ne_core:.0}%, \
         OPT allocation core-stable {opt_core:.0}%"
    );
    write_csv(
        out,
        "fig15.csv",
        "poa_mean,poa_std,poa_max,nash_stable_pct,ne_core_stable_pct,opt_core_stable_pct",
        &[format!(
            "{poa_mean:.6},{poa_std:.6},{poa_max:.6},{nash:.1},{ne_core:.1},{opt_core:.1}"
        )],
    )?;
    Ok(())
}
