//! Scalability figures (the paper's **H4**):
//!
//! * `fig9_runtime` — wall-clock running time of CCSA vs CCSGA as the
//!   network grows. The paper's claim: "CCSGA is much faster than the
//!   approximation algorithm and is more suitable for large-scale
//!   cooperative charging scheduling."
//! * `fig10_convergence` — CCSGA's switch operations and rounds until a
//!   Nash-stable partition, vs network size (convergence cost grows
//!   modestly, supporting the large-scale claim).

use crate::exp::common::{mean_std, parallel_map, write_csv};
use ccs_core::prelude::*;
use ccs_wrsn::scenario::ScenarioGenerator;
use std::io;
use std::path::Path;
use std::time::Instant;

const SIZES: &[usize] = &[20, 50, 100, 200, 300];

fn instance(n: usize, seed: u64) -> CcsProblem {
    CcsProblem::new(
        ScenarioGenerator::new(seed.wrapping_mul(31) + n as u64)
            .devices(n)
            .chargers((n / 10).max(2))
            .field_side(400.0)
            .generate(),
    )
}

/// Fig. 9 family: running time vs number of devices.
pub fn fig9(out: &Path) -> io::Result<()> {
    println!("== fig9: running time vs n (3 seeds each) ==");
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "n", "ccsa ms", "ccsga ms", "speedup", "ccsa $", "ccsga $"
    );
    let mut rows = Vec::new();
    for &n in SIZES {
        let runs = parallel_map(vec![0u64, 1, 2], |seed| {
            let problem = instance(n, seed);
            let t0 = Instant::now();
            let a = ccsa(&problem, &EqualShare, CcsaOptions::default());
            let ccsa_ms = t0.elapsed().as_secs_f64() * 1e3;
            let t1 = Instant::now();
            let g = ccsga(&problem, &EqualShare, CcsgaOptions::default());
            let ccsga_ms = t1.elapsed().as_secs_f64() * 1e3;
            (
                ccsa_ms,
                ccsga_ms,
                a.total_cost().value(),
                g.schedule.total_cost().value(),
            )
        });
        let (ccsa_ms, _) = mean_std(&runs.iter().map(|r| r.0).collect::<Vec<_>>());
        let (ccsga_ms, _) = mean_std(&runs.iter().map(|r| r.1).collect::<Vec<_>>());
        let (ccsa_cost, _) = mean_std(&runs.iter().map(|r| r.2).collect::<Vec<_>>());
        let (ccsga_cost, _) = mean_std(&runs.iter().map(|r| r.3).collect::<Vec<_>>());
        let speedup = ccsa_ms / ccsga_ms.max(1e-9);
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>10.1} {:>12.1} {:>12.1}",
            n, ccsa_ms, ccsga_ms, speedup, ccsa_cost, ccsga_cost
        );
        rows.push(format!(
            "{n},{ccsa_ms:.3},{ccsga_ms:.3},{speedup:.2},{ccsa_cost:.2},{ccsga_cost:.2}"
        ));
    }
    write_csv(
        out,
        "fig9.csv",
        "n,ccsa_ms,ccsga_ms,ccsa_over_ccsga,ccsa_cost,ccsga_cost",
        &rows,
    )?;
    Ok(())
}

/// Fig. 10 family: CCSGA convergence statistics vs network size.
pub fn fig10(out: &Path) -> io::Result<()> {
    println!("== fig10: CCSGA convergence vs n (5 seeds each) ==");
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>10}",
        "n", "switches", "rounds", "converged %", "NE %"
    );
    let mut rows = Vec::new();
    for &n in SIZES {
        let runs = parallel_map((0..5u64).collect::<Vec<_>>(), |seed| {
            let problem = instance(n, seed);
            let g = ccsga(&problem, &EqualShare, CcsgaOptions::default());
            (
                g.switches as f64,
                g.rounds as f64,
                g.converged,
                g.nash_stable,
            )
        });
        let (switches, switches_std) = mean_std(&runs.iter().map(|r| r.0).collect::<Vec<_>>());
        let (rounds, _) = mean_std(&runs.iter().map(|r| r.1).collect::<Vec<_>>());
        let converged = runs.iter().filter(|r| r.2).count() as f64 / runs.len() as f64 * 100.0;
        let stable = runs.iter().filter(|r| r.3).count() as f64 / runs.len() as f64 * 100.0;
        println!(
            "{:>6} {:>10.1} {:>10.1} {:>12.0} {:>10.0}",
            n, switches, rounds, converged, stable
        );
        rows.push(format!(
            "{n},{switches:.2},{switches_std:.2},{rounds:.2},{converged:.0},{stable:.0}"
        ));
    }
    write_csv(
        out,
        "fig10.csv",
        "n,switches_mean,switches_std,rounds_mean,converged_pct,nash_stable_pct",
        &rows,
    )?;
    Ok(())
}
