//! Shared machinery of the experiment harness: output files, statistics
//! and a `std::thread::scope`-based parallel map for seed sweeps.

use parking_lot::Mutex;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Mean and (population) standard deviation of a sample.
///
/// Returns `(0, 0)` for an empty sample.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Writes a CSV file (header + rows) under `dir`, creating it if needed.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(dir: &Path, name: &str, header: &str, rows: &[String]) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let mut content =
        String::with_capacity(rows.iter().map(|r| r.len() + 1).sum::<usize>() + header.len() + 1);
    content.push_str(header);
    content.push('\n');
    for row in rows {
        content.push_str(row);
        content.push('\n');
    }
    fs::write(&path, content)?;
    Ok(path)
}

/// Writes a markdown file under `dir`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_markdown(dir: &Path, name: &str, content: &str) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    fs::write(&path, content)?;
    Ok(path)
}

/// Applies `f` to every item on a scoped thread pool sized to the machine,
/// preserving input order in the output.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len().max(1));
    let results: Mutex<Vec<Option<U>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    let work: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().rev().collect());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = work.lock().pop();
                match next {
                    Some((idx, item)) => {
                        let out = f(item);
                        results.lock()[idx] = Some(out);
                    }
                    None => break,
                }
            });
        }
    });

    results
        .into_inner()
        .into_iter()
        .map(|o| o.expect("all work items completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        let (m, s) = mean_std(&[2.0, 2.0, 2.0]);
        assert_eq!((m, s), (2.0, 0.0));
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 1.0);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let empty: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(empty.is_empty());
        assert_eq!(parallel_map(vec![7], |x: i32| x + 1), vec![8]);
    }

    #[test]
    fn csv_and_markdown_round_trip() {
        let dir = std::env::temp_dir().join("ccs_bench_test_common");
        let p = write_csv(&dir, "t.csv", "a,b", &["1,2".into(), "3,4".into()]).unwrap();
        let text = std::fs::read_to_string(p).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
        let p = write_markdown(&dir, "t.md", "# hi\n").unwrap();
        assert_eq!(std::fs::read_to_string(p).unwrap(), "# hi\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
