//! Simulation cost-curve figures: comprehensive cost vs network scale.
//!
//! * `fig5_cost_vs_devices` — average comprehensive cost as the number of
//!   devices grows (fixed chargers);
//! * `fig6_cost_vs_chargers` — as the number of chargers grows (fixed
//!   devices);
//! * `fig7_cost_vs_field` — as the field side grows (fixed populations).
//!
//! Every point is a mean over seeds; CCSA, CCSGA and NCP run on identical
//! instances. The expected *shape* (per the paper): both cooperative
//! algorithms sit well below NCP everywhere, with the relative saving
//! growing with device density (more devices per charger → more fee
//! amortization) and shrinking with field size (longer gathering trips eat
//! the shared savings).

use crate::exp::common::{mean_std, parallel_map, write_csv};
use ccs_core::prelude::*;
use ccs_wrsn::scenario::ScenarioGenerator;
use ccs_wrsn::units::Cost;
use std::io;
use std::path::Path;

const SEEDS: u64 = 10;

struct PointStats {
    ccsa_mean: f64,
    ccsa_std: f64,
    ccsga_mean: f64,
    ccsga_std: f64,
    clu_mean: f64,
    ncp_mean: f64,
    ncp_std: f64,
}

fn run_point(make: impl Fn(u64) -> ScenarioGenerator + Sync) -> PointStats {
    let runs = parallel_map((0..SEEDS).collect::<Vec<u64>>(), |seed| {
        let problem = CcsProblem::new(make(seed).generate());
        let ccsa_cost = ccsa(&problem, &EqualShare, CcsaOptions::default())
            .average_cost()
            .value();
        let ccsga_cost = ccsga(&problem, &EqualShare, CcsgaOptions::default())
            .schedule
            .average_cost()
            .value();
        let clu_cost = clustering(&problem, &EqualShare, ClusterOptions::default())
            .average_cost()
            .value();
        let ncp_cost = noncooperation(&problem, &EqualShare).average_cost().value();
        (ccsa_cost, ccsga_cost, clu_cost, ncp_cost)
    });
    let (ccsa_mean, ccsa_std) = mean_std(&runs.iter().map(|r| r.0).collect::<Vec<_>>());
    let (ccsga_mean, ccsga_std) = mean_std(&runs.iter().map(|r| r.1).collect::<Vec<_>>());
    let (clu_mean, _) = mean_std(&runs.iter().map(|r| r.2).collect::<Vec<_>>());
    let (ncp_mean, ncp_std) = mean_std(&runs.iter().map(|r| r.3).collect::<Vec<_>>());
    PointStats {
        ccsa_mean,
        ccsa_std,
        ccsga_mean,
        ccsga_std,
        clu_mean,
        ncp_mean,
        ncp_std,
    }
}

fn emit(out: &Path, file: &str, x_name: &str, points: Vec<(f64, PointStats)>) -> io::Result<()> {
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>14} {:>14}",
        x_name, "ccsa avg$", "ccsga avg$", "clu avg$", "ncp avg$", "ccsa save %", "ccsga save %"
    );
    let mut rows = Vec::new();
    for (x, p) in &points {
        // A zero/negative NCP baseline makes the saving undefined; emit an
        // explicit `na` marker rather than an `inf` that poisons the CSV.
        let ccsa_save = try_saving_percent(Cost::new(p.ccsa_mean), Cost::new(p.ncp_mean));
        let ccsga_save = try_saving_percent(Cost::new(p.ccsga_mean), Cost::new(p.ncp_mean));
        let pct = |s: Option<f64>, digits: usize| match s {
            Some(v) => format!("{v:.digits$}"),
            None => "na".to_string(),
        };
        println!(
            "{:>8} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>14} {:>14}",
            x,
            p.ccsa_mean,
            p.ccsga_mean,
            p.clu_mean,
            p.ncp_mean,
            pct(ccsa_save, 1),
            pct(ccsga_save, 1)
        );
        rows.push(format!(
            "{x},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{},{}",
            p.ccsa_mean,
            p.ccsa_std,
            p.ccsga_mean,
            p.ccsga_std,
            p.clu_mean,
            p.ncp_mean,
            p.ncp_std,
            pct(ccsa_save, 2),
            pct(ccsga_save, 2)
        ));
    }
    write_csv(
        out,
        file,
        &format!("{x_name},ccsa_mean,ccsa_std,ccsga_mean,ccsga_std,clu_mean,ncp_mean,ncp_std,ccsa_saving_pct,ccsga_saving_pct"),
        &rows,
    )?;
    Ok(())
}

/// Fig. 5 family: average comprehensive cost vs number of devices.
pub fn fig5(out: &Path) -> io::Result<()> {
    println!("== fig5: cost vs number of devices (m = 10, field 300 m) ==");
    let points = [10usize, 20, 30, 40, 50, 60, 70, 80, 90, 100]
        .iter()
        .map(|&n| {
            let stats = run_point(|seed| {
                ScenarioGenerator::new(seed.wrapping_mul(1000) + n as u64)
                    .devices(n)
                    .chargers(10)
            });
            (n as f64, stats)
        })
        .collect();
    emit(out, "fig5.csv", "n_devices", points)
}

/// Fig. 6 family: average comprehensive cost vs number of chargers.
pub fn fig6(out: &Path) -> io::Result<()> {
    println!("== fig6: cost vs number of chargers (n = 50, field 300 m) ==");
    let points = [2usize, 4, 6, 8, 10, 12, 14, 16, 18, 20]
        .iter()
        .map(|&m| {
            let stats = run_point(|seed| {
                ScenarioGenerator::new(seed.wrapping_mul(1000) + m as u64)
                    .devices(50)
                    .chargers(m)
            });
            (m as f64, stats)
        })
        .collect();
    emit(out, "fig6.csv", "m_chargers", points)
}

/// Fig. 7 family: average comprehensive cost vs field side length.
pub fn fig7(out: &Path) -> io::Result<()> {
    println!("== fig7: cost vs field side (n = 50, m = 10) ==");
    let points = [100.0f64, 200.0, 300.0, 400.0, 500.0]
        .iter()
        .map(|&side| {
            let stats = run_point(|seed| {
                ScenarioGenerator::new(seed.wrapping_mul(1000) + side as u64)
                    .devices(50)
                    .chargers(10)
                    .field_side(side)
            });
            (side, stats)
        })
        .collect();
    emit(out, "fig7.csv", "field_side_m", points)
}
