//! Online-mode experiment: streaming arrivals with deadlines served by
//! online-CCSGA (incremental coalition re-planning with deadline
//! degradation) versus the naive first-come-first-served baseline, at
//! equal fleet and identical request streams.

use crate::exp::common::{mean_std, parallel_map, write_csv};
use ccs_core::online::{OnlineConfig, OnlineMetrics, OnlinePolicy, OnlineSim};
use ccs_core::prelude::*;
use ccs_wrsn::arrival::{ArrivalGenerator, ArrivalProfile};
use ccs_wrsn::scenario::ScenarioGenerator;
use std::io;
use std::path::Path;

/// The two online policies at equal fleet, over seeded streams.
pub fn fig_online(out: &Path) -> io::Result<()> {
    println!("== fig_online: streaming service, ccsga vs fcfs (n = 20, m = 4, 10 seeds) ==");
    println!(
        "{:>8} {:>10} {:>12} {:>14} {:>12}",
        "policy", "miss %", "util %", "kJ/served", "replans"
    );
    let policies = [
        (
            "ccsga",
            OnlinePolicy::Ccsga(CcsgaOptions {
                worklist: true,
                ..CcsgaOptions::default()
            }),
        ),
        ("fcfs", OnlinePolicy::Fcfs),
    ];
    let runs = parallel_map((0..10u64).collect::<Vec<_>>(), |seed| {
        let scenario = ScenarioGenerator::new(seed.wrapping_mul(37) + 11)
            .devices(20)
            .chargers(4)
            .generate();
        let stream = ArrivalGenerator::new(seed)
            .rate(0.25)
            .horizon(240.0)
            .slack(500.0)
            .profile(ArrivalProfile::Hotspot {
                fraction: 0.2,
                share: 0.8,
            })
            .generate(20);
        policies
            .iter()
            .map(|(_, policy)| {
                let config = OnlineConfig {
                    policy: *policy,
                    ..OnlineConfig::default()
                };
                OnlineSim::new(
                    CcsProblem::new(scenario.clone()),
                    stream.clone(),
                    &EqualShare,
                    config,
                )
                .run()
                .metrics
            })
            .collect::<Vec<OnlineMetrics>>()
    });
    let mut rows = Vec::new();
    for (pi, (name, _)) in policies.iter().enumerate() {
        let col = |f: &dyn Fn(&OnlineMetrics) -> f64| -> Vec<f64> {
            runs.iter().map(|r| f(&r[pi])).collect()
        };
        let (miss, miss_std) = mean_std(&col(&|m| m.miss_rate * 100.0));
        let (util, _) = mean_std(&col(&|m| m.charger_utilization * 100.0));
        let (kj, _) = mean_std(&col(&|m| m.energy_per_served / 1000.0));
        let (replans, _) = mean_std(&col(&|m| m.replans as f64));
        println!("{name:>8} {miss:>10.1} {util:>12.1} {kj:>14.2} {replans:>12.1}");
        rows.push(format!(
            "{name},{miss:.4},{miss_std:.4},{util:.2},{kj:.4},{replans:.1}"
        ));
    }
    // The headline claim: at equal fleet and identical streams, the
    // coalition policy must not lose to naive dispatch on deadline
    // misses — and per-seed wins make the dominance visible.
    let wins = runs
        .iter()
        .filter(|r| r[0].miss_rate < r[1].miss_rate)
        .count();
    let ties = runs
        .iter()
        .filter(|r| r[0].miss_rate == r[1].miss_rate)
        .count();
    println!("ccsga beats fcfs on miss rate in {wins}/10 seeds ({ties} ties)");
    assert!(
        wins + ties == runs.len() && wins > 0,
        "online-CCSGA must dominate FCFS on miss rate (won {wins}, tied {ties} of {})",
        runs.len()
    );
    write_csv(
        out,
        "fig_online.csv",
        "policy,miss_pct_mean,miss_pct_std,util_pct,kJ_per_served,replans_mean",
        &rows,
    )?;
    Ok(())
}
