//! Ablations of the design choices called out in `DESIGN.md`:
//!
//! * `abl_gathering` — gathering-point strategy (Weiszfeld vs centroid vs
//!   best-member vs grid): solution quality vs planning time;
//! * `abl_switch_rule` — CCSGA switch rules (history vs consent vs
//!   utilitarian): cost, switches, Nash-stability rate;
//! * `abl_sfm` — CCSA's inner density minimizer (prefix scan vs
//!   Dinkelbach+separable vs Dinkelbach+min-norm-point vs greedy):
//!   identical costs for the exact engines, very different runtimes.

use crate::exp::common::{mean_std, parallel_map, write_csv};
use ccs_coalition::engine::SwitchRule;
use ccs_core::prelude::*;
use ccs_wrsn::scenario::ScenarioGenerator;
use std::io;
use std::path::Path;
use std::time::Instant;

fn instance(seed: u64, n: usize) -> CcsProblem {
    CcsProblem::new(
        ScenarioGenerator::new(seed.wrapping_mul(97) + n as u64)
            .devices(n)
            .chargers(10)
            .generate(),
    )
}

/// Gathering-strategy ablation.
pub fn abl_gathering(out: &Path) -> io::Result<()> {
    println!("== abl_gathering: gathering-point strategy (n = 50, m = 10, 10 seeds) ==");
    println!(
        "{:>12} {:>12} {:>12} {:>10}",
        "strategy", "total $", "vs best %", "ms"
    );
    let strategies = [
        ("weiszfeld", GatheringStrategy::Weiszfeld),
        ("centroid", GatheringStrategy::Centroid),
        ("bestmember", GatheringStrategy::BestMember),
        ("grid6", GatheringStrategy::Grid(6)),
    ];
    let runs = parallel_map((0..10u64).collect::<Vec<_>>(), |seed| {
        strategies
            .iter()
            .map(|(_, strategy)| {
                let scenario = ScenarioGenerator::new(seed.wrapping_mul(97) + 50)
                    .devices(50)
                    .chargers(10)
                    .generate();
                let problem = CcsProblem::with_params(
                    scenario,
                    CostParams {
                        gathering: *strategy,
                        ..Default::default()
                    },
                );
                let t = Instant::now();
                let s = ccsa(&problem, &EqualShare, CcsaOptions::default());
                (s.total_cost().value(), t.elapsed().as_secs_f64() * 1e3)
            })
            .collect::<Vec<_>>()
    });
    let mut rows = Vec::new();
    let best: f64 = (0..strategies.len())
        .map(|si| runs.iter().map(|r| r[si].0).sum::<f64>() / runs.len() as f64)
        .fold(f64::INFINITY, f64::min);
    for (si, (name, _)) in strategies.iter().enumerate() {
        let (total, _) = mean_std(&runs.iter().map(|r| r[si].0).collect::<Vec<_>>());
        let (ms, _) = mean_std(&runs.iter().map(|r| r[si].1).collect::<Vec<_>>());
        let delta = (total / best - 1.0) * 100.0;
        println!("{:>12} {:>12.2} {:>12.2} {:>10.1}", name, total, delta, ms);
        rows.push(format!("{name},{total:.4},{delta:.3},{ms:.3}"));
    }
    write_csv(
        out,
        "abl_gathering.csv",
        "strategy,total_mean,delta_vs_best_pct,time_ms",
        &rows,
    )?;
    Ok(())
}

/// Switch-rule ablation.
pub fn abl_switch_rule(out: &Path) -> io::Result<()> {
    println!("== abl_switch_rule: CCSGA switch rules (5 seeds each) ==");
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>8} {:>8}",
        "n", "rule", "total $", "switches", "rounds", "NE %"
    );
    let rules = [
        ("history", SwitchRule::SelfishWithHistory),
        ("consent", SwitchRule::SelfishWithConsent),
        ("utilitarian", SwitchRule::Utilitarian),
    ];
    let mut rows = Vec::new();
    for &n in &[50usize, 100, 200] {
        let runs = parallel_map((0..5u64).collect::<Vec<_>>(), |seed| {
            rules
                .iter()
                .map(|(_, rule)| {
                    let problem = instance(seed, n);
                    let g = ccsga(
                        &problem,
                        &EqualShare,
                        CcsgaOptions {
                            rule: *rule,
                            ..Default::default()
                        },
                    );
                    (
                        g.schedule.total_cost().value(),
                        g.switches as f64,
                        g.rounds as f64,
                        g.nash_stable,
                    )
                })
                .collect::<Vec<_>>()
        });
        for (ri, (name, _)) in rules.iter().enumerate() {
            let (total, _) = mean_std(&runs.iter().map(|r| r[ri].0).collect::<Vec<_>>());
            let (switches, _) = mean_std(&runs.iter().map(|r| r[ri].1).collect::<Vec<_>>());
            let (rounds, _) = mean_std(&runs.iter().map(|r| r[ri].2).collect::<Vec<_>>());
            let stable = runs.iter().filter(|r| r[ri].3).count() as f64 / runs.len() as f64 * 100.0;
            println!(
                "{:>6} {:>12} {:>12.1} {:>10.1} {:>8.1} {:>8.0}",
                n, name, total, switches, rounds, stable
            );
            rows.push(format!(
                "{n},{name},{total:.4},{switches:.2},{rounds:.2},{stable:.0}"
            ));
        }
    }
    write_csv(
        out,
        "abl_switch.csv",
        "n,rule,total_mean,switches_mean,rounds_mean,nash_stable_pct",
        &rows,
    )?;
    Ok(())
}

/// Inner-minimizer ablation.
pub fn abl_sfm(out: &Path) -> io::Result<()> {
    println!("== abl_sfm: CCSA inner density minimizer (3 seeds each) ==");
    println!(
        "{:>6} {:>22} {:>12} {:>10}",
        "n", "minimizer", "total $", "ms"
    );
    let minimizers = [
        ("prefix_scan", InnerMinimizer::PrefixScan),
        ("dinkelbach_separable", InnerMinimizer::DinkelbachSeparable),
        ("dinkelbach_mnp", InnerMinimizer::DinkelbachMnp),
        ("greedy_accretion", InnerMinimizer::GreedyAccretion),
    ];
    let mut rows = Vec::new();
    for &n in &[20usize, 40, 60] {
        let runs = parallel_map((0..3u64).collect::<Vec<_>>(), |seed| {
            minimizers
                .iter()
                .map(|(_, minimizer)| {
                    let problem = instance(seed, n);
                    let t = Instant::now();
                    let s = ccsa(
                        &problem,
                        &EqualShare,
                        CcsaOptions {
                            minimizer: *minimizer,
                            ..Default::default()
                        },
                    );
                    (s.total_cost().value(), t.elapsed().as_secs_f64() * 1e3)
                })
                .collect::<Vec<_>>()
        });
        for (mi, (name, _)) in minimizers.iter().enumerate() {
            let (total, _) = mean_std(&runs.iter().map(|r| r[mi].0).collect::<Vec<_>>());
            let (ms, _) = mean_std(&runs.iter().map(|r| r[mi].1).collect::<Vec<_>>());
            println!("{:>6} {:>22} {:>12.2} {:>10.1}", n, name, total, ms);
            rows.push(format!("{n},{name},{total:.4},{ms:.3}"));
        }
    }
    write_csv(out, "abl_sfm.csv", "n,minimizer,total_mean,time_ms", &rows)?;
    Ok(())
}
