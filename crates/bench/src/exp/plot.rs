//! Terminal line charts for experiment series.
//!
//! The harness is terminal-first; these renderers turn the CSV series into
//! quick-look ASCII charts (`ccs-bench --bin plot results/fig5.csv`) so
//! trends can be eyeballed without leaving the shell.

use std::fmt::Write as _;

/// A named series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// The points, in x order.
    pub points: Vec<(f64, f64)>,
}

/// Renders one or more series into an ASCII chart of the given size.
///
/// The canvas is `width × height` characters plus a y-axis gutter and an
/// x-range footer. Each series draws with its own glyph (`*`, `o`, `+`,
/// `x`, …); overlapping points show the later series.
///
/// # Panics
///
/// Panics if `width < 8`, `height < 4`, no series is given, or all series
/// are empty.
pub fn render(series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 4, "chart too small to draw");
    assert!(!series.is_empty(), "nothing to plot");
    let glyphs = ['*', 'o', '+', 'x', '#', '@'];

    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    assert!(!all.is_empty(), "all series are empty");
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    // Degenerate ranges render as a flat mid-line.
    if x_max - x_min < 1e-12 {
        x_max = x_min + 1.0;
    }
    if y_max - y_min < 1e-12 {
        y_max = y_min + 1.0;
    }

    let mut canvas = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = glyphs[si % glyphs.len()];
        for &(x, y) in &s.points {
            let cx = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let cy = (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
            canvas[height - 1 - cy][cx.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    for (row, line) in canvas.iter().enumerate() {
        let y_label = if row == 0 {
            format!("{y_max:>10.2} ")
        } else if row == height - 1 {
            format!("{y_min:>10.2} ")
        } else {
            " ".repeat(11)
        };
        let _ = writeln!(out, "{y_label}|{}", line.iter().collect::<String>());
    }
    let _ = writeln!(out, "{}+{}", " ".repeat(11), "-".repeat(width));
    let _ = writeln!(
        out,
        "{}{x_min:<12.1}{:>width$.1}",
        " ".repeat(12),
        x_max,
        width = width.saturating_sub(12)
    );
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(out, "  {} {}", glyphs[si % glyphs.len()], s.name);
    }
    out
}

/// Parses a harness CSV (header + numeric rows; non-numeric cells skipped)
/// into one series per numeric column, with the first column as x.
///
/// Returns `None` if fewer than two numeric columns exist.
pub fn series_from_csv(text: &str) -> Option<Vec<Series>> {
    let mut lines = text.lines();
    let header: Vec<&str> = lines.next()?.split(',').collect();
    if header.len() < 2 {
        return None;
    }
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); header.len()];
    for line in lines {
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != header.len() {
            continue;
        }
        let parsed: Vec<Option<f64>> = cells.iter().map(|c| c.trim().parse().ok()).collect();
        if parsed.iter().any(|p| p.is_none()) {
            continue; // summary rows etc.
        }
        for (col, v) in columns.iter_mut().zip(parsed) {
            col.push(v.expect("checked above"));
        }
    }
    if columns[0].is_empty() {
        return None;
    }
    let x = columns[0].clone();
    let series: Vec<Series> = header
        .iter()
        .zip(&columns)
        .skip(1)
        .map(|(name, ys)| Series {
            name: (*name).to_string(),
            points: x.iter().copied().zip(ys.iter().copied()).collect(),
        })
        .collect();
    (!series.is_empty()).then_some(series)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(name: &str, pts: &[(f64, f64)]) -> Series {
        Series {
            name: name.into(),
            points: pts.to_vec(),
        }
    }

    #[test]
    fn renders_monotone_series_diagonally() {
        let s = line("up", &[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        let chart = render(&[s], 21, 5);
        let rows: Vec<&str> = chart.lines().collect();
        // Highest point in the top row, lowest in the bottom canvas row.
        assert!(rows[0].contains('*'));
        assert!(rows[4].contains('*'));
        assert!(chart.contains("up"));
        assert!(chart.contains("2.00"), "y max label present");
    }

    #[test]
    fn multiple_series_use_distinct_glyphs() {
        let a = line("a", &[(0.0, 0.0), (1.0, 1.0)]);
        let b = line("b", &[(0.0, 1.0), (1.0, 0.0)]);
        let chart = render(&[a, b], 20, 6);
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("  * a"));
        assert!(chart.contains("  o b"));
    }

    #[test]
    fn flat_series_render_without_dividing_by_zero() {
        let s = line("flat", &[(0.0, 5.0), (1.0, 5.0)]);
        let chart = render(&[s], 12, 4);
        assert!(chart.contains('*'));
    }

    #[test]
    #[should_panic(expected = "chart too small")]
    fn rejects_tiny_canvas() {
        let s = line("x", &[(0.0, 0.0)]);
        let _ = render(&[s], 4, 2);
    }

    #[test]
    fn csv_parsing_extracts_series() {
        let csv = "n,ccsa,ncp\n10,28.3,40.7\n20,25.6,40.7\npooled,,\n";
        let series = series_from_csv(csv).unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].name, "ccsa");
        assert_eq!(series[0].points, vec![(10.0, 28.3), (20.0, 25.6)]);
        assert_eq!(series[1].points.len(), 2, "summary row skipped");
    }

    #[test]
    fn csv_parsing_rejects_empty() {
        assert!(series_from_csv("onlyheader\n").is_none());
        assert!(series_from_csv("a,b\n").is_none());
    }

    #[test]
    fn end_to_end_chart_from_csv() {
        let csv = "x,y\n0,1\n1,3\n2,2\n";
        let series = series_from_csv(csv).unwrap();
        let chart = render(&series, 30, 8);
        assert!(chart.lines().count() >= 10);
    }
}
