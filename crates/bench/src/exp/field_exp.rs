//! The field-experiment reproduction (**H3**):
//!
//! * `table2_field` — many noisy replays of the paper's 5-charger /
//!   8-node testbed; the headline row is CCSA's average realized saving
//!   over the noncooperation baseline (the paper reports 42.9%).
//! * `fig12_field_breakdown` — one trial in detail: per-node share,
//!   moving cost and realized total under CCSA vs NCP.

use crate::exp::common::{mean_std, parallel_map, write_csv, write_markdown};
use ccs_core::prelude::*;
use ccs_testbed::field::{field_noise, field_problem, FIELD_CHARGERS, FIELD_DEVICES};
use ccs_testbed::sim::execute;
use ccs_wrsn::units::Cost;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

const TRIALS: u64 = 50;

/// Runs the field table; returns the mean realized CCSA saving (%) for the
/// EXPERIMENTS.md summary.
pub fn table2(out: &Path) -> io::Result<f64> {
    println!(
        "== table2: field experiment, {FIELD_CHARGERS} chargers x {FIELD_DEVICES} nodes, {TRIALS} noisy trials =="
    );
    let runs = parallel_map((0..TRIALS).collect::<Vec<u64>>(), |trial| {
        let problem = field_problem(trial);
        let noise = field_noise();
        let coop = ccsa(&problem, &EqualShare, CcsaOptions::default());
        let game = ccsga(&problem, &EqualShare, CcsgaOptions::default());
        let solo = noncooperation(&problem, &EqualShare);
        let coop_run = execute(&problem, &coop, &EqualShare, &noise, trial);
        let game_run = execute(&problem, &game.schedule, &EqualShare, &noise, trial);
        let solo_run = execute(&problem, &solo, &EqualShare, &noise, trial);
        (
            coop.total_cost().value(),
            coop_run.total_cost().value(),
            game_run.total_cost().value(),
            solo.total_cost().value(),
            solo_run.total_cost().value(),
            coop_run.makespan.value(),
            coop_run.average_wait().value(),
        )
    });

    let (ccsa_plan, _) = mean_std(&runs.iter().map(|r| r.0).collect::<Vec<_>>());
    let (ccsa_real, ccsa_real_std) = mean_std(&runs.iter().map(|r| r.1).collect::<Vec<_>>());
    let (ccsga_real, _) = mean_std(&runs.iter().map(|r| r.2).collect::<Vec<_>>());
    let (ncp_plan, _) = mean_std(&runs.iter().map(|r| r.3).collect::<Vec<_>>());
    let (ncp_real, ncp_real_std) = mean_std(&runs.iter().map(|r| r.4).collect::<Vec<_>>());
    let (makespan, _) = mean_std(&runs.iter().map(|r| r.5).collect::<Vec<_>>());
    let (wait, _) = mean_std(&runs.iter().map(|r| r.6).collect::<Vec<_>>());
    // Fallible saving form: trials whose realized NCP baseline degenerates
    // to zero (total failure) are dropped instead of contributing `inf`.
    let savings: Vec<f64> = runs
        .iter()
        .filter_map(|r| try_saving_percent(Cost::new(r.1), Cost::new(r.4)))
        .collect();
    let (saving_mean, saving_std) = mean_std(&savings);
    let ccsga_saving = try_saving_percent(Cost::new(ccsga_real), Cost::new(ncp_real))
        .map_or("na".to_string(), |s| format!("{s:.1}"));

    let mut md = String::new();
    let _ = writeln!(md, "# Table 2 — field experiment ({TRIALS} noisy trials)\n");
    let _ = writeln!(md, "| metric | CCSA | CCSGA | NCP |");
    let _ = writeln!(md, "|---|---|---|---|");
    let _ = writeln!(
        md,
        "| planned total cost ($) | {ccsa_plan:.2} | — | {ncp_plan:.2} |"
    );
    let _ = writeln!(
        md,
        "| realized total cost ($) | {ccsa_real:.2} ± {ccsa_real_std:.2} | {ccsga_real:.2} | {ncp_real:.2} ± {ncp_real_std:.2} |"
    );
    let _ = writeln!(
        md,
        "| realized saving vs NCP (%) | **{saving_mean:.1} ± {saving_std:.1}** | {ccsga_saving} | 0 |"
    );
    let _ = writeln!(md, "| CCSA makespan (s) | {makespan:.1} | — | — |");
    let _ = writeln!(md, "| CCSA mean queueing delay (s) | {wait:.1} | — | — |");
    let _ = writeln!(
        md,
        "\nPaper's field headline: CCSA outperforms noncooperation by **42.9%** on average."
    );
    print!("{md}");
    write_markdown(out, "table2_field.md", &md)?;
    Ok(saving_mean)
}

/// Per-node cost breakdown on one field trial.
pub fn fig12(out: &Path) -> io::Result<()> {
    println!("== fig12: field per-node cost breakdown (trial 0) ==");
    let trial = 0u64;
    let problem = field_problem(trial);
    let noise = field_noise();
    let coop = ccsa(&problem, &EqualShare, CcsaOptions::default());
    let solo = noncooperation(&problem, &EqualShare);
    let coop_run = execute(&problem, &coop, &EqualShare, &noise, trial);
    let solo_run = execute(&problem, &solo, &EqualShare, &noise, trial);

    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>12}",
        "node", "ccsa plan $", "ccsa real $", "ncp real $", "saving %"
    );
    let mut rows = Vec::new();
    for d in problem.scenario().device_ids() {
        let plan = coop.device_cost(d).expect("scheduled").value();
        let real = coop_run.device_costs[d.index()].value();
        let ncp_real = solo_run.device_costs[d.index()].value();
        let saving = try_saving_percent(Cost::new(real), Cost::new(ncp_real));
        println!(
            "{:>6} {:>14.2} {:>14.2} {:>14.2} {:>12}",
            d.to_string(),
            plan,
            real,
            ncp_real,
            saving.map_or("na".to_string(), |s| format!("{s:.1}")),
        );
        rows.push(format!(
            "{d},{plan:.4},{real:.4},{ncp_real:.4},{}",
            saving.map_or("na".to_string(), |s| format!("{s:.2}")),
        ));
    }
    write_csv(
        out,
        "fig12.csv",
        "node,ccsa_planned,ccsa_realized,ncp_realized,saving_pct",
        &rows,
    )?;
    Ok(())
}
