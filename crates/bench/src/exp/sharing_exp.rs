//! `fig11_sharing`: the intragroup cost-sharing comparison.
//!
//! Same CCSA groupings, three ways to split every group's bill — equal,
//! demand-proportional, and exact Shapley — compared on total cost
//! (identical by budget balance, a built-in sanity check), per-device
//! spread, and Jain's fairness index of the comprehensive-cost vector.

use crate::exp::common::{mean_std, parallel_map, write_csv};
use ccs_core::prelude::*;
use ccs_wrsn::scenario::ScenarioGenerator;
use ccs_wrsn::units::Cost;
use std::io;
use std::path::Path;

const SEEDS: u64 = 20;

/// Runs the sharing-scheme comparison.
pub fn fig11(out: &Path) -> io::Result<()> {
    println!("== fig11: cost-sharing schemes on CCSA groupings (n = 30, m = 8) ==");
    println!(
        "{:>14} {:>12} {:>10} {:>12} {:>12} {:>12}",
        "scheme", "total $", "fairness", "min dev $", "max dev $", "ir viol %"
    );

    let scheme_names = ["equal", "proportional", "shapley"];
    let runs = parallel_map((0..SEEDS).collect::<Vec<u64>>(), |seed| {
        let scenario = ScenarioGenerator::new(seed.wrapping_mul(131) + 17)
            .devices(30)
            .chargers(8)
            .generate();
        // Cap group size below the exact-Shapley guard so all three schemes
        // price identical groupings.
        let problem = CcsProblem::with_params(
            scenario,
            CostParams {
                max_group_size: Some(12),
                ..Default::default()
            },
        );
        let solo = noncooperation(&problem, &EqualShare);

        all_schemes()
            .into_iter()
            .map(|scheme| {
                let schedule = ccsa(&problem, scheme.as_ref(), CcsaOptions::default());
                let costs = schedule.device_costs(problem.num_devices());
                let fairness = jain_fairness(&costs);
                let min = costs
                    .iter()
                    .copied()
                    .fold(Cost::new(f64::INFINITY), Cost::min);
                let max = costs.iter().copied().fold(Cost::ZERO, Cost::max);
                let violations = problem
                    .scenario()
                    .device_ids()
                    .filter(|&d| {
                        schedule.device_cost(d).unwrap()
                            > solo.device_cost(d).unwrap() + Cost::new(1e-6)
                    })
                    .count();
                (
                    schedule.total_cost().value(),
                    fairness,
                    min.value(),
                    max.value(),
                    violations as f64 / problem.num_devices() as f64 * 100.0,
                )
            })
            .collect::<Vec<_>>()
    });

    let mut rows = Vec::new();
    for (si, name) in scheme_names.iter().enumerate() {
        let totals: Vec<f64> = runs.iter().map(|r| r[si].0).collect();
        let fair: Vec<f64> = runs.iter().map(|r| r[si].1).collect();
        let mins: Vec<f64> = runs.iter().map(|r| r[si].2).collect();
        let maxs: Vec<f64> = runs.iter().map(|r| r[si].3).collect();
        let viol: Vec<f64> = runs.iter().map(|r| r[si].4).collect();
        let (t, _) = mean_std(&totals);
        let (f, f_std) = mean_std(&fair);
        let (lo, _) = mean_std(&mins);
        let (hi, _) = mean_std(&maxs);
        let (v, _) = mean_std(&viol);
        println!(
            "{:>14} {:>12.2} {:>10.3} {:>12.2} {:>12.2} {:>12.1}",
            name, t, f, lo, hi, v
        );
        rows.push(format!(
            "{name},{t:.4},{f:.4},{f_std:.4},{lo:.4},{hi:.4},{v:.2}"
        ));
    }
    write_csv(
        out,
        "fig11.csv",
        "scheme,total_mean,fairness_mean,fairness_std,min_device_cost,max_device_cost,ir_violation_pct",
        &rows,
    )?;
    Ok(())
}
