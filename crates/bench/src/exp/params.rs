//! `table1`: the simulation parameter settings, printed from the actual
//! defaults so the table can never drift from the code.

use crate::exp::common::write_markdown;
use ccs_testbed::noise::NoiseModel;
use ccs_wrsn::scenario::ScenarioGenerator;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Emits the parameter table.
pub fn table1(out: &Path) -> io::Result<()> {
    // Generate a reference scenario and report observed ranges, so the
    // table reflects what the generator actually does.
    let s = ScenarioGenerator::new(0)
        .devices(500)
        .chargers(100)
        .generate();
    let min_max = |xs: Vec<f64>| {
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (lo, hi)
    };
    let demand = min_max(s.devices().iter().map(|d| d.demand().value()).collect());
    let kappa = min_max(
        s.devices()
            .iter()
            .map(|d| d.move_cost_rate().value())
            .collect(),
    );
    let fee = min_max(s.chargers().iter().map(|c| c.base_fee().value()).collect());
    let tau = min_max(
        s.chargers()
            .iter()
            .map(|c| c.travel_cost_rate().value())
            .collect(),
    );
    let price = min_max(
        s.chargers()
            .iter()
            .map(|c| c.energy_price().value())
            .collect(),
    );
    let eta = min_max(
        s.chargers()
            .iter()
            .map(|c| c.occupancy_rate().value())
            .collect(),
    );
    let noise = NoiseModel::field();

    let mut md = String::new();
    let _ = writeln!(md, "# Table 1 — simulation parameter settings\n");
    let _ = writeln!(md, "| parameter | value |");
    let _ = writeln!(md, "|---|---|");
    let _ = writeln!(
        md,
        "| field side | 300 m (default), swept 100–500 m in fig7 |"
    );
    let _ = writeln!(
        md,
        "| devices n | swept 10–100 (fig5), 4–12 vs OPT (fig8) |"
    );
    let _ = writeln!(md, "| chargers m | 10 (default), swept 2–20 (fig6) |");
    let _ = writeln!(
        md,
        "| energy demand w_i | {:.0}–{:.0} J |",
        demand.0, demand.1
    );
    let _ = writeln!(
        md,
        "| device move cost κ_i | {:.3}–{:.3} $/m |",
        kappa.0, kappa.1
    );
    let _ = writeln!(md, "| base service fee b_j | {:.1}–{:.1} $ |", fee.0, fee.1);
    let _ = writeln!(
        md,
        "| charger travel cost τ_j | {:.3}–{:.3} $/m |",
        tau.0, tau.1
    );
    let _ = writeln!(
        md,
        "| energy price π_j | {:.4}–{:.4} $/J |",
        price.0, price.1
    );
    let _ = writeln!(md, "| occupancy rate η_j | {:.1}–{:.1} $ |", eta.0, eta.1);
    let _ = writeln!(md, "| congestion curve g(k) | sqrt(k) |");
    let _ = writeln!(
        md,
        "| gathering strategy | Weiszfeld weighted geometric median |"
    );
    let _ = writeln!(
        md,
        "| field noise | detour ×{:.2}±{:.2}, speed ±{:.0}%, WPT efficiency ×{:.2}±{:.2} |",
        noise.detour_mean,
        noise.detour_std,
        noise.speed_std * 100.0,
        noise.efficiency_mean,
        noise.efficiency_std
    );
    print!("{md}");
    write_markdown(out, "table1_params.md", &md)?;
    Ok(())
}
