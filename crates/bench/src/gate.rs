//! The shared bench-regression gate.
//!
//! Every bench binary emits a `BENCH_<N>.json` document with a top-level
//! `benches` object mapping bench names to numeric metrics, and gates a
//! `--check` run against the newest committed baseline. Different binaries
//! emit disjoint bench families (`bench_smoke` the hot-path timings,
//! `serve_load` the daemon throughput), so the baseline lookup is
//! *name-aware*: it picks the newest `BENCH_<N>.json` that covers at least
//! one of the caller's bench names. A freshly committed `BENCH_5.json`
//! from one family therefore never silently turns the other family's gate
//! into a no-op.
//!
//! # Host calibration
//!
//! Wall-clock baselines only transfer between hosts of similar speed: a
//! `serial_ms` recorded on a fast CI runner fails any 20% gate on a slower
//! laptop even when the code got *faster*. Documents therefore record a
//! `host_sentinel_ms` — the wall clock of [`host_sentinel_ms`], a fixed
//! deterministic single-threaded workload — and [`regressions`] rescales
//! the baseline of every [`Gate`] marked `host_sensitive` by the sentinel
//! ratio before comparing. When either side lacks the sentinel (baselines
//! committed before calibration existed), host-sensitive gates are skipped
//! with a notice on stderr; host-independent gates (exact work counters)
//! still apply, so the algorithmic regression net stays up.

use serde_json::Value;

/// Root field under which bench documents record their host calibration.
pub const SENTINEL_FIELD: &str = "host_sentinel_ms";

/// Which direction of drift is a regression for a gated field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger numbers are regressions (timings, work counters).
    HigherIsWorse,
    /// Smaller numbers are regressions (throughput).
    LowerIsWorse,
}

/// One gated metric: a field of each bench entry, a relative tolerance,
/// and the regression direction.
#[derive(Debug, Clone, Copy)]
pub struct Gate {
    /// Field name inside each `benches.<name>` object.
    pub field: &'static str,
    /// Relative tolerance (0.20 = 20% drift allowed).
    pub tolerance: f64,
    /// Which way drift counts as a regression.
    pub direction: Direction,
    /// Whether a zero baseline with a nonzero current value fails (exact
    /// counters: any growth from zero is real) or is skipped (timings:
    /// a zero baseline carries no signal).
    pub zero_base_fails: bool,
    /// Whether the metric tracks raw host speed (wall-clock timings) and
    /// must be compared through the `host_sentinel_ms` calibration, or is
    /// host-independent (work counters, ratios) and compares as recorded.
    pub host_sensitive: bool,
}

/// Wall clock (ms) of a fixed, deterministic, single-threaded workload —
/// the calibration constant that makes timing baselines comparable across
/// hosts. Min of five passes: the minimum estimates the host's unloaded
/// speed, which is what the gate's ratio needs, and is far more stable
/// than a mean under background load.
pub fn host_sentinel_ms() -> f64 {
    fn pass() -> f64 {
        // xorshift64* feeding a square root: exercises both the integer
        // and the floating-point pipes, cannot be const-folded, and has a
        // loop-carried dependency so faster hosts win on latency, not on
        // vectorization tricks the real solvers don't benefit from.
        let mut x = 0x9e37_79b9_7f4a_7c15_u64;
        let mut acc = 0.0_f64;
        for _ in 0..2_000_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc += ((x >> 11) as f64).sqrt();
        }
        acc
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = std::time::Instant::now();
        std::hint::black_box(pass());
        best = best.min(start.elapsed().as_secs_f64() * 1000.0);
    }
    best
}

/// The baseline→current calibration factor: >1 means the current host is
/// that much slower than the baseline's, so host-sensitive thresholds
/// stretch by it. `None` when either document lacks a positive sentinel.
pub fn timing_scale(current: &Value, baseline: &Value) -> Option<f64> {
    let read = |doc: &Value| match doc.field(SENTINEL_FIELD) {
        Value::Number(n) if n.as_f64() > 0.0 => Some(n.as_f64()),
        _ => None,
    };
    Some(read(current)? / read(baseline)?)
}

/// The newest committed baseline *covering this bench family*: the
/// `BENCH_<N>.json` in the current directory with the largest `N` whose
/// `benches` object shares at least one name with `names`. Unreadable or
/// unrelated files are skipped, so the gate degrades gracefully on a fresh
/// checkout (no baseline → `None` → skip).
pub fn newest_baseline(names: &[&str]) -> Option<(String, Value)> {
    let mut candidates: Vec<(u64, String)> = std::fs::read_dir(".")
        .ok()?
        .flatten()
        .filter_map(|entry| {
            let file = entry.file_name().to_string_lossy().into_owned();
            let num = file
                .strip_prefix("BENCH_")?
                .strip_suffix(".json")?
                .parse::<u64>()
                .ok()?;
            Some((num, file))
        })
        .collect();
    candidates.sort_by_key(|c| std::cmp::Reverse(c.0));
    for (_, file) in candidates {
        let Ok(text) = std::fs::read_to_string(&file) else {
            continue;
        };
        let Ok(value) = serde_json::from_str::<Value>(&text) else {
            continue;
        };
        let covers = value
            .field("benches")
            .as_object()
            .is_some_and(|benches| names.iter().any(|n| benches.contains_key(*n)));
        if covers {
            return Some((file, value));
        }
    }
    None
}

/// Compares `current` against `baseline` under `gates`, returning one
/// human-readable line per regression beyond its tolerance. Benches or
/// fields absent from either side are ignored (older baseline schemas
/// simply gate on fewer metrics). Host-sensitive gates compare against the
/// baseline rescaled by [`timing_scale`]; without sentinels on both sides
/// they are skipped with a notice on stderr.
pub fn regressions(current: &Value, baseline: &Value, gates: &[Gate]) -> Vec<String> {
    let mut failures = Vec::new();
    let Some(base_benches) = baseline.field("benches").as_object() else {
        return failures;
    };
    let Some(cur_benches) = current.field("benches").as_object() else {
        return failures;
    };
    let scale = timing_scale(current, baseline);
    if scale.is_none() && gates.iter().any(|g| g.host_sensitive) {
        eprintln!(
            "bench-regression gate: no host_sentinel_ms on both sides — \
             skipping host-sensitive fields (timings don't transfer across \
             hosts; counters still gate)"
        );
    }
    for (name, entry) in cur_benches {
        let Some(base_entry) = base_benches.get(name) else {
            continue;
        };
        for gate in gates {
            let (Value::Number(cur), Value::Number(base)) =
                (entry.field(gate.field), base_entry.field(gate.field))
            else {
                continue;
            };
            let (cur, mut base) = (cur.as_f64(), base.as_f64());
            if gate.host_sensitive {
                match scale {
                    Some(s) => base *= s,
                    None => continue,
                }
            }
            let failed = if base > 0.0 {
                match gate.direction {
                    Direction::HigherIsWorse => cur > base * (1.0 + gate.tolerance),
                    Direction::LowerIsWorse => cur < base * (1.0 - gate.tolerance),
                }
            } else {
                gate.zero_base_fails && gate.direction == Direction::HigherIsWorse && cur > 0.0
            };
            if failed {
                let drift = if base > 0.0 {
                    format!(" ({:+.0}%)", (cur / base - 1.0) * 100.0)
                } else {
                    String::new()
                };
                let scaled = match scale {
                    Some(s) if gate.host_sensitive => format!(" (host-scaled ×{s:.2})"),
                    _ => String::new(),
                };
                failures.push(format!(
                    "{name}: {} {cur:.2} vs baseline {base:.2}{scaled}{drift}",
                    gate.field
                ));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(json: &str) -> Value {
        serde_json::from_str(json).unwrap()
    }

    const GATES: [Gate; 2] = [
        Gate {
            field: "serial_ms",
            tolerance: 0.20,
            direction: Direction::HigherIsWorse,
            zero_base_fails: false,
            host_sensitive: false,
        },
        Gate {
            field: "oracle_evals",
            tolerance: 0.05,
            direction: Direction::HigherIsWorse,
            zero_base_fails: true,
            host_sensitive: false,
        },
    ];

    /// `serial_ms` gated through the sentinel calibration, the counter raw.
    const CALIBRATED: [Gate; 2] = [
        Gate {
            field: "serial_ms",
            tolerance: 0.20,
            direction: Direction::HigherIsWorse,
            zero_base_fails: false,
            host_sensitive: true,
        },
        Gate {
            field: "oracle_evals",
            tolerance: 0.05,
            direction: Direction::HigherIsWorse,
            zero_base_fails: true,
            host_sensitive: false,
        },
    ];

    #[test]
    fn flags_only_out_of_tolerance_drift() {
        let base = doc(r#"{"benches":{"a":{"serial_ms":100.0,"oracle_evals":200}}}"#);
        let ok = doc(r#"{"benches":{"a":{"serial_ms":115.0,"oracle_evals":205}}}"#);
        assert!(regressions(&ok, &base, &GATES).is_empty());
        let slow = doc(r#"{"benches":{"a":{"serial_ms":130.0,"oracle_evals":200}}}"#);
        assert_eq!(regressions(&slow, &base, &GATES).len(), 1);
        let churn = doc(r#"{"benches":{"a":{"serial_ms":100.0,"oracle_evals":300}}}"#);
        assert_eq!(regressions(&churn, &base, &GATES).len(), 1);
    }

    #[test]
    fn zero_baselines_follow_the_per_gate_policy() {
        let base = doc(r#"{"benches":{"a":{"serial_ms":0.0,"oracle_evals":0}}}"#);
        let cur = doc(r#"{"benches":{"a":{"serial_ms":50.0,"oracle_evals":3}}}"#);
        let fails = regressions(&cur, &base, &GATES);
        assert_eq!(fails.len(), 1, "timing skipped, counter flagged: {fails:?}");
        assert!(fails[0].contains("oracle_evals"));
    }

    #[test]
    fn sentinel_rescales_host_sensitive_gates() {
        // Baseline from a 10× faster host (sentinel 1 ms vs our 10 ms):
        // its 100 ms budget stretches to 1000 ms here.
        let base =
            doc(r#"{"host_sentinel_ms":1.0,"benches":{"a":{"serial_ms":100.0,"oracle_evals":5}}}"#);
        let ok = doc(
            r#"{"host_sentinel_ms":10.0,"benches":{"a":{"serial_ms":900.0,"oracle_evals":5}}}"#,
        );
        assert!(regressions(&ok, &base, &CALIBRATED).is_empty());
        let slow = doc(
            r#"{"host_sentinel_ms":10.0,"benches":{"a":{"serial_ms":1300.0,"oracle_evals":5}}}"#,
        );
        let fails = regressions(&slow, &base, &CALIBRATED);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("host-scaled"), "{fails:?}");
    }

    #[test]
    fn missing_sentinel_skips_timing_but_still_gates_counters() {
        // Pre-calibration baseline: no sentinel. The wall clock can't be
        // compared, the exact counter still can.
        let base = doc(r#"{"benches":{"a":{"serial_ms":5.0,"oracle_evals":100}}}"#);
        let cur = doc(
            r#"{"host_sentinel_ms":10.0,"benches":{"a":{"serial_ms":50.0,"oracle_evals":120}}}"#,
        );
        let fails = regressions(&cur, &base, &CALIBRATED);
        assert_eq!(fails.len(), 1, "timing skipped, counter flagged: {fails:?}");
        assert!(fails[0].contains("oracle_evals"));
    }

    #[test]
    fn host_sentinel_is_positive_and_finite() {
        let ms = host_sentinel_ms();
        assert!(ms.is_finite() && ms > 0.0, "sentinel {ms}");
    }

    #[test]
    fn lower_is_worse_gates_throughput() {
        let gate = [Gate {
            field: "throughput_rps",
            tolerance: 0.5,
            direction: Direction::LowerIsWorse,
            zero_base_fails: false,
            host_sensitive: false,
        }];
        let base = doc(r#"{"benches":{"s":{"throughput_rps":100.0}}}"#);
        assert!(regressions(
            &doc(r#"{"benches":{"s":{"throughput_rps":60.0}}}"#),
            &base,
            &gate
        )
        .is_empty());
        assert_eq!(
            regressions(
                &doc(r#"{"benches":{"s":{"throughput_rps":40.0}}}"#),
                &base,
                &gate
            )
            .len(),
            1
        );
    }

    #[test]
    fn missing_benches_and_fields_are_ignored() {
        let base = doc(r#"{"benches":{"other":{"serial_ms":1.0}}}"#);
        let cur = doc(r#"{"benches":{"a":{"serial_ms":99.0}}}"#);
        assert!(regressions(&cur, &base, &GATES).is_empty());
        let v1 = doc(r#"{"benches":{"a":{"serial_ms":1.0}}}"#);
        let cur = doc(r#"{"benches":{"a":{"serial_ms":1.0,"oracle_evals":999}}}"#);
        assert!(regressions(&cur, &v1, &GATES).is_empty());
    }
}
