//! The shared bench-regression gate.
//!
//! Every bench binary emits a `BENCH_<N>.json` document with a top-level
//! `benches` object mapping bench names to numeric metrics, and gates a
//! `--check` run against the newest committed baseline. Different binaries
//! emit disjoint bench families (`bench_smoke` the hot-path timings,
//! `serve_load` the daemon throughput), so the baseline lookup is
//! *name-aware*: it picks the newest `BENCH_<N>.json` that covers at least
//! one of the caller's bench names. A freshly committed `BENCH_5.json`
//! from one family therefore never silently turns the other family's gate
//! into a no-op.

use serde_json::Value;

/// Which direction of drift is a regression for a gated field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger numbers are regressions (timings, work counters).
    HigherIsWorse,
    /// Smaller numbers are regressions (throughput).
    LowerIsWorse,
}

/// One gated metric: a field of each bench entry, a relative tolerance,
/// and the regression direction.
#[derive(Debug, Clone, Copy)]
pub struct Gate {
    /// Field name inside each `benches.<name>` object.
    pub field: &'static str,
    /// Relative tolerance (0.20 = 20% drift allowed).
    pub tolerance: f64,
    /// Which way drift counts as a regression.
    pub direction: Direction,
    /// Whether a zero baseline with a nonzero current value fails (exact
    /// counters: any growth from zero is real) or is skipped (timings:
    /// a zero baseline carries no signal).
    pub zero_base_fails: bool,
}

/// The newest committed baseline *covering this bench family*: the
/// `BENCH_<N>.json` in the current directory with the largest `N` whose
/// `benches` object shares at least one name with `names`. Unreadable or
/// unrelated files are skipped, so the gate degrades gracefully on a fresh
/// checkout (no baseline → `None` → skip).
pub fn newest_baseline(names: &[&str]) -> Option<(String, Value)> {
    let mut candidates: Vec<(u64, String)> = std::fs::read_dir(".")
        .ok()?
        .flatten()
        .filter_map(|entry| {
            let file = entry.file_name().to_string_lossy().into_owned();
            let num = file
                .strip_prefix("BENCH_")?
                .strip_suffix(".json")?
                .parse::<u64>()
                .ok()?;
            Some((num, file))
        })
        .collect();
    candidates.sort_by_key(|c| std::cmp::Reverse(c.0));
    for (_, file) in candidates {
        let Ok(text) = std::fs::read_to_string(&file) else {
            continue;
        };
        let Ok(value) = serde_json::from_str::<Value>(&text) else {
            continue;
        };
        let covers = value
            .field("benches")
            .as_object()
            .is_some_and(|benches| names.iter().any(|n| benches.contains_key(*n)));
        if covers {
            return Some((file, value));
        }
    }
    None
}

/// Compares `current` against `baseline` under `gates`, returning one
/// human-readable line per regression beyond its tolerance. Benches or
/// fields absent from either side are ignored (older baseline schemas
/// simply gate on fewer metrics).
pub fn regressions(current: &Value, baseline: &Value, gates: &[Gate]) -> Vec<String> {
    let mut failures = Vec::new();
    let Some(base_benches) = baseline.field("benches").as_object() else {
        return failures;
    };
    let Some(cur_benches) = current.field("benches").as_object() else {
        return failures;
    };
    for (name, entry) in cur_benches {
        let Some(base_entry) = base_benches.get(name) else {
            continue;
        };
        for gate in gates {
            let (Value::Number(cur), Value::Number(base)) =
                (entry.field(gate.field), base_entry.field(gate.field))
            else {
                continue;
            };
            let (cur, base) = (cur.as_f64(), base.as_f64());
            let failed = if base > 0.0 {
                match gate.direction {
                    Direction::HigherIsWorse => cur > base * (1.0 + gate.tolerance),
                    Direction::LowerIsWorse => cur < base * (1.0 - gate.tolerance),
                }
            } else {
                gate.zero_base_fails && gate.direction == Direction::HigherIsWorse && cur > 0.0
            };
            if failed {
                let drift = if base > 0.0 {
                    format!(" ({:+.0}%)", (cur / base - 1.0) * 100.0)
                } else {
                    String::new()
                };
                failures.push(format!(
                    "{name}: {} {cur:.2} vs baseline {base:.2}{drift}",
                    gate.field
                ));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(json: &str) -> Value {
        serde_json::from_str(json).unwrap()
    }

    const GATES: [Gate; 2] = [
        Gate {
            field: "serial_ms",
            tolerance: 0.20,
            direction: Direction::HigherIsWorse,
            zero_base_fails: false,
        },
        Gate {
            field: "oracle_evals",
            tolerance: 0.05,
            direction: Direction::HigherIsWorse,
            zero_base_fails: true,
        },
    ];

    #[test]
    fn flags_only_out_of_tolerance_drift() {
        let base = doc(r#"{"benches":{"a":{"serial_ms":100.0,"oracle_evals":200}}}"#);
        let ok = doc(r#"{"benches":{"a":{"serial_ms":115.0,"oracle_evals":205}}}"#);
        assert!(regressions(&ok, &base, &GATES).is_empty());
        let slow = doc(r#"{"benches":{"a":{"serial_ms":130.0,"oracle_evals":200}}}"#);
        assert_eq!(regressions(&slow, &base, &GATES).len(), 1);
        let churn = doc(r#"{"benches":{"a":{"serial_ms":100.0,"oracle_evals":300}}}"#);
        assert_eq!(regressions(&churn, &base, &GATES).len(), 1);
    }

    #[test]
    fn zero_baselines_follow_the_per_gate_policy() {
        let base = doc(r#"{"benches":{"a":{"serial_ms":0.0,"oracle_evals":0}}}"#);
        let cur = doc(r#"{"benches":{"a":{"serial_ms":50.0,"oracle_evals":3}}}"#);
        let fails = regressions(&cur, &base, &GATES);
        assert_eq!(fails.len(), 1, "timing skipped, counter flagged: {fails:?}");
        assert!(fails[0].contains("oracle_evals"));
    }

    #[test]
    fn lower_is_worse_gates_throughput() {
        let gate = [Gate {
            field: "throughput_rps",
            tolerance: 0.5,
            direction: Direction::LowerIsWorse,
            zero_base_fails: false,
        }];
        let base = doc(r#"{"benches":{"s":{"throughput_rps":100.0}}}"#);
        assert!(regressions(
            &doc(r#"{"benches":{"s":{"throughput_rps":60.0}}}"#),
            &base,
            &gate
        )
        .is_empty());
        assert_eq!(
            regressions(
                &doc(r#"{"benches":{"s":{"throughput_rps":40.0}}}"#),
                &base,
                &gate
            )
            .len(),
            1
        );
    }

    #[test]
    fn missing_benches_and_fields_are_ignored() {
        let base = doc(r#"{"benches":{"other":{"serial_ms":1.0}}}"#);
        let cur = doc(r#"{"benches":{"a":{"serial_ms":99.0}}}"#);
        assert!(regressions(&cur, &base, &GATES).is_empty());
        let v1 = doc(r#"{"benches":{"a":{"serial_ms":1.0}}}"#);
        let cur = doc(r#"{"benches":{"a":{"serial_ms":1.0,"oracle_evals":999}}}"#);
        assert!(regressions(&cur, &v1, &GATES).is_empty());
    }
}
