//! `bench_scaling` — the scaling-curve suite: wall-clock of the CCS
//! solvers across problem sizes and worker-thread counts, with a CI gate.
//!
//! ```text
//! bench_scaling [--out FILE] [--check] [--iters N]
//! ```
//!
//! Every cell is one `(workload, n)` pair from the seeded
//! [`scale_preset`] family, timed at 1
//! and 4 worker threads over `--iters` runs (mean and p95 per thread
//! count) plus one untimed serial telemetry pass capturing the
//! activity-driven work counters, and emitted as a JSON document:
//!
//! ```json
//! {
//!   "schema": "ccs-bench-scaling/v2",
//!   "available_parallelism": 4,
//!   "host_sentinel_ms": 3.1,
//!   "benches": {
//!     "scale_ccsa_n1k": {
//!       "t1_mean_ms": 810.0, "t1_p95_ms": 840.2,
//!       "t4_mean_ms": 270.1, "t4_p95_ms": 280.9, "speedup": 3.0,
//!       "cores": 4, "probes_skipped": 0, "facilities_skipped": 91
//!     }
//!   }
//! }
//! ```
//!
//! `cores` records `available_parallelism` *at the moment the cell ran*
//! (thread pools can be re-pinned mid-process; the root field only knows
//! the value at emit time); on hosts that cannot express parallelism
//! (`cores < 2`) `speedup` is `null` — the 1-vs-4-thread ratio measured
//! on one physical core is pool overhead, not a scaling signal, and must
//! not be read as one. `probes_skipped` (`coalition.probes_skipped`) and
//! `facilities_skipped` (`ccsa.facilities_skipped`) count the work the
//! activity-driven worklist and the incremental facility sweep avoided:
//! CCSGA cells skip probes, the CCSA cell skips facility re-pricings.
//!
//! The paper-size cells run the exact algorithms; the `n = 1k`, `n = 10k`
//! and `n = 100k` CCSGA cells run the documented scale mode
//! (`neighbor_cap`, `check_stability: false`, a round cap) — the
//! configuration the scaling claims in `README.md` are about. The
//! `n = 100k` frontier cell always runs a single timed iteration per
//! thread count, whatever `--iters` says; in the default sweep it only
//! runs on hosts with at least 4 cores (it is the suite's time-budget
//! hog), but `--only scale_ccsga_n100k` forces it on any host.
//!
//! With `--check` the run fails (exit 1) when:
//!
//! * any cell's 1-thread vs 4-thread result fingerprints diverge — the
//!   `ccs-par` determinism contract, asserted on every machine;
//! * on a host with ≥ 4 cores: the 4-thread CCSGA run at `n = 50` is
//!   slower than serial, or the CCSA `n = 1k` speedup is below 2.5× —
//!   the thread-scaling curve itself. Hosts with fewer cores (where the
//!   pool cannot physically beat serial) skip these with a loud notice;
//! * the `n = 10k` CCSGA scale-mode mean exceeds 1 second (wherever at
//!   least 4 cores are available; single-core hosts report but don't
//!   gate);
//! * any cell's `t1_mean_ms` regresses more than 20% against the newest
//!   committed `BENCH_<N>.json` covering this binary's cell names (see
//!   [`ccs_bench::gate`]; the baseline is read before `--out` writes, so
//!   a fresh checkout skips gracefully).

use ccs_bench::gate::{self, Direction, Gate};
use ccs_core::prelude::*;
use ccs_wrsn::scenario::scale_preset;
use serde_json::{Number, Value};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;

/// Cell names (disjoint from every other bench binary's families, so the
/// name-aware baseline lookup never cross-matches).
const CELL_NAMES: [&str; 5] = [
    "scale_ccsga_n50",
    "scale_ccsa_n1k",
    "scale_ccsga_n1k",
    "scale_ccsga_n10k",
    "scale_ccsga_n100k",
];

/// The regression gate: serial mean within 20% (wall clock is noisy),
/// compared through the host-sentinel calibration so baselines from
/// faster machines don't fail slower ones.
const GATES: [Gate; 1] = [Gate {
    field: "t1_mean_ms",
    tolerance: 0.20,
    direction: Direction::HigherIsWorse,
    zero_base_fails: false,
    host_sensitive: true,
}];

/// CCSGA scale mode for the large cells: shortlist joins to the nearest
/// coalitions, skip the final stability audit, bound the rounds. This is
/// the configuration `README.md` documents for `n ≥ 1k`.
fn scale_mode(neighbor_cap: usize, max_rounds: usize) -> CcsgaOptions {
    CcsgaOptions {
        neighbor_cap,
        check_stability: false,
        max_rounds,
        ..CcsgaOptions::default()
    }
}

/// Mean and p95 (ms) of `iters` timed calls after one untimed warmup that
/// also yields the determinism fingerprint (the warmup call absorbs the
/// lazy `ProblemTables` build, so cells time the solver, not the setup).
fn time_ms(iters: usize, f: &dyn Fn() -> u64) -> (f64, f64, u64) {
    let fingerprint = f();
    let mut runs = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        assert_eq!(f(), fingerprint, "bench workload is nondeterministic");
        runs.push(start.elapsed().as_secs_f64() * 1000.0);
    }
    let mean = runs.iter().sum::<f64>() / runs.len() as f64;
    let mut sorted = runs;
    sorted.sort_by(f64::total_cmp);
    let p95 = sorted[((sorted.len() as f64 * 0.95).ceil() as usize).max(1) - 1];
    (mean, p95, fingerprint)
}

struct Cell {
    t1_mean_ms: f64,
    t1_p95_ms: f64,
    t4_mean_ms: f64,
    t4_p95_ms: f64,
    /// `available_parallelism` when this cell ran, not at emit time.
    cores: u64,
    /// `coalition.probes_skipped` over one serial run (CCSGA cells).
    probes_skipped: u64,
    /// `ccsa.facilities_skipped` over one serial run (the CCSA cell).
    facilities_skipped: u64,
}

/// Times `f` pinned to 1 and 4 worker threads, asserting bit-identical
/// fingerprints across the two, then runs one untimed serial pass with
/// telemetry on to capture the skipped-work counters.
fn run_cell(name: &str, iters: usize, f: &dyn Fn() -> u64) -> Cell {
    ccs_par::set_threads(1);
    let (t1_mean_ms, t1_p95_ms, fp1) = time_ms(iters, f);
    ccs_par::set_threads(4);
    let (t4_mean_ms, t4_p95_ms, fp4) = time_ms(iters, f);
    assert_eq!(
        fp1, fp4,
        "{name}: 1-thread and 4-thread results diverged — determinism bug"
    );

    ccs_par::set_threads(1);
    let registry = ccs_telemetry::global();
    registry.reset();
    registry.enable();
    f();
    let report = registry.report();
    registry.disable();
    registry.reset();
    ccs_par::set_threads(0);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let cell = Cell {
        t1_mean_ms,
        t1_p95_ms,
        t4_mean_ms,
        t4_p95_ms,
        cores,
        probes_skipped: report.counter("coalition.probes_skipped"),
        facilities_skipped: report.counter("ccsa.facilities_skipped"),
    };
    eprintln!(
        "cell {name}: t1 {t1_mean_ms:.1} ms (p95 {t1_p95_ms:.1}), \
         t4 {t4_mean_ms:.1} ms (p95 {t4_p95_ms:.1}), speedup {:.2}, \
         skipped probes {} / facilities {}",
        t1_mean_ms / t4_mean_ms,
        cell.probes_skipped,
        cell.facilities_skipped
    );
    cell
}

fn cells(iters: usize, only: Option<&str>) -> BTreeMap<String, Cell> {
    let mut out = BTreeMap::new();
    let wanted = |name: &str| only.is_none_or(|o| o == name);

    // Paper size, exact algorithm: the "parallel must not lose to serial"
    // cell.
    if wanted("scale_ccsga_n50") {
        let p50 = CcsProblem::new(scale_preset(50, 50).generate());
        out.insert(
            "scale_ccsga_n50".to_string(),
            run_cell("scale_ccsga_n50", iters, &|| {
                ccsga(&p50, &EqualShare, CcsgaOptions::default())
                    .schedule
                    .total_cost()
                    .value()
                    .to_bits()
            }),
        );
    }

    // CCSA's greedy core at n = 1k: per-round facility batches of ~20k
    // items, the thread-scaling workhorse cell. The serial
    // `local_improvement` post-pass is off — it is a polish step that
    // dominates wall clock at scale (>90% at n = 250) without exercising
    // the parallel path this suite curves.
    if wanted("scale_ccsa_n1k") {
        let p1k = CcsProblem::new(scale_preset(50, 1_000).generate());
        let opts = CcsaOptions {
            local_improvement: false,
            ..CcsaOptions::default()
        };
        out.insert(
            "scale_ccsa_n1k".to_string(),
            run_cell("scale_ccsa_n1k", iters, &|| {
                ccsa(&p1k, &EqualShare, opts).total_cost().value().to_bits()
            }),
        );
    }

    // CCSGA scale mode at n = 1k and n = 10k.
    if wanted("scale_ccsga_n1k") {
        let p1k = CcsProblem::new(scale_preset(50, 1_000).generate());
        out.insert(
            "scale_ccsga_n1k".to_string(),
            run_cell("scale_ccsga_n1k", iters, &|| {
                ccsga(&p1k, &EqualShare, scale_mode(6, 0))
                    .schedule
                    .total_cost()
                    .value()
                    .to_bits()
            }),
        );
    }

    // The n = 10k cell adds a service-capacity cap (`max_group_size`, a
    // paper knob): full coalitions are rejected by the cheap feasibility
    // check before any facility evaluation, which is what keeps the cell's
    // per-round cost bounded.
    if wanted("scale_ccsga_n10k") {
        let p10k = CcsProblem::with_params(
            scale_preset(50, 10_000).generate(),
            ccs_core::problem::CostParams {
                max_group_size: Some(8),
                ..Default::default()
            },
        );
        out.insert(
            "scale_ccsga_n10k".to_string(),
            run_cell("scale_ccsga_n10k", iters, &|| {
                ccsga(&p10k, &EqualShare, scale_mode(4, 2))
                    .schedule
                    .total_cost()
                    .value()
                    .to_bits()
            }),
        );
    }

    // The frontier cell: n = 100k, same scale mode and capacity cap as the
    // 10k cell. One timed iteration per thread count regardless of
    // `--iters` — the cell exists to prove the size completes and to track
    // its order of magnitude, not to resolve single-digit-percent drift.
    // It is the suite's time budget hog, so the default sweep only runs it
    // on hosts with >= 4 cores (CI's scaling runners); `--only` forces it
    // anywhere.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let frontier_forced = only == Some("scale_ccsga_n100k");
    if wanted("scale_ccsga_n100k") && (cores >= 4 || frontier_forced) {
        let p100k = CcsProblem::with_params(
            scale_preset(50, 100_000).generate(),
            ccs_core::problem::CostParams {
                max_group_size: Some(8),
                ..Default::default()
            },
        );
        out.insert(
            "scale_ccsga_n100k".to_string(),
            run_cell("scale_ccsga_n100k", 1, &|| {
                ccsga(&p100k, &EqualShare, scale_mode(4, 2))
                    .schedule
                    .total_cost()
                    .value()
                    .to_bits()
            }),
        );
    } else if wanted("scale_ccsga_n100k") {
        eprintln!(
            "cell scale_ccsga_n100k: host has {cores} core(s) < 4 — skipped \
             (run with `--only scale_ccsga_n100k` to force it)"
        );
    }

    out
}

fn num(x: f64) -> Value {
    Value::Number(Number::Float((x * 100.0).round() / 100.0))
}

fn to_json(results: &BTreeMap<String, Cell>, cores: u64) -> Value {
    let mut benches = BTreeMap::new();
    for (name, c) in results {
        let mut entry = BTreeMap::new();
        entry.insert("t1_mean_ms".to_string(), num(c.t1_mean_ms));
        entry.insert("t1_p95_ms".to_string(), num(c.t1_p95_ms));
        entry.insert("t4_mean_ms".to_string(), num(c.t4_mean_ms));
        entry.insert("t4_p95_ms".to_string(), num(c.t4_p95_ms));
        // A "speedup" measured on one physical core is pool overhead, not
        // parallel scaling — emit null rather than a number that invites
        // misreading (consumers must handle both).
        let speedup = if c.cores >= 2 {
            num(c.t1_mean_ms / c.t4_mean_ms)
        } else {
            Value::Null
        };
        entry.insert("speedup".to_string(), speedup);
        entry.insert("cores".to_string(), Value::Number(Number::PosInt(c.cores)));
        entry.insert(
            "probes_skipped".to_string(),
            Value::Number(Number::PosInt(c.probes_skipped)),
        );
        entry.insert(
            "facilities_skipped".to_string(),
            Value::Number(Number::PosInt(c.facilities_skipped)),
        );
        benches.insert(name.clone(), Value::Object(entry));
    }
    let mut root = BTreeMap::new();
    root.insert(
        "schema".to_string(),
        Value::String("ccs-bench-scaling/v2".to_string()),
    );
    root.insert(
        "available_parallelism".to_string(),
        Value::Number(Number::PosInt(cores)),
    );
    root.insert(
        gate::SENTINEL_FIELD.to_string(),
        num(gate::host_sentinel_ms()),
    );
    root.insert("benches".to_string(), Value::Object(benches));
    Value::Object(root)
}

/// The scaling-curve assertions themselves. Physical speedups need
/// physical cores: the curve cells only gate on hosts with ≥ 4.
fn scaling_failures(results: &BTreeMap<String, Cell>, cores: u64) -> Vec<String> {
    let mut failures = Vec::new();
    if cores < 4 {
        eprintln!(
            "scaling gate: host has {cores} core(s) < 4 — skipping the \
             speedup and 10k-latency assertions (CI runners enforce them)"
        );
        return failures;
    }
    let speedup = |name: &str| {
        results
            .get(name)
            .map(|c| c.t1_mean_ms / c.t4_mean_ms)
            .unwrap_or(f64::INFINITY)
    };
    let s50 = speedup("scale_ccsga_n50");
    if s50 < 1.0 {
        failures.push(format!(
            "scale_ccsga_n50: 4-thread run slower than serial (speedup {s50:.2} < 1.0)"
        ));
    }
    let s1k = speedup("scale_ccsa_n1k");
    if s1k < 2.5 {
        failures.push(format!(
            "scale_ccsa_n1k: thread scaling below par (speedup {s1k:.2} < 2.5)"
        ));
    }
    if let Some(big) = results.get("scale_ccsga_n10k").map(|c| c.t4_mean_ms) {
        if big >= 1_000.0 {
            failures.push(format!(
                "scale_ccsga_n10k: scale-mode mean {big:.0} ms >= 1000 ms"
            ));
        }
    }
    failures
}

fn main() -> ExitCode {
    let mut out_path: Option<String> = None;
    let mut check = false;
    let mut iters = 3usize;
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next(),
            "--check" => check = true,
            "--only" => only = args.next(),
            "--iters" => match args.next().map(|v| (v.clone(), v.parse::<usize>())) {
                Some((_, Ok(n))) if n > 0 => iters = n,
                Some((raw, _)) => {
                    eprintln!("error: --iters needs a positive integer, got '{raw}'");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("error: --iters needs a value");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!(
                    "usage: bench_scaling [--out FILE] [--check] [--iters N] \
                     [--only CELL] (got '{other}')"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    // Capture the baseline before writing anything, so `--out BENCH_6.json
    // --check` compares against the committed file, not the fresh one.
    let baseline = gate::newest_baseline(&CELL_NAMES);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let results = cells(iters, only.as_deref());
    let doc = to_json(&results, cores);
    let json = serde_json::to_string_pretty(&doc).expect("results serialize");

    match &out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }

    if check {
        let mut failures = scaling_failures(&results, cores);
        match baseline {
            Some((name, base)) => {
                let regressions = gate::regressions(&doc, &base, &GATES);
                if regressions.is_empty() {
                    eprintln!("bench-regression gate: ok vs {name}");
                } else {
                    for r in &regressions {
                        eprintln!("  vs {name}: {r}");
                    }
                    failures.extend(regressions);
                }
            }
            None => {
                eprintln!("bench-regression gate: no committed BENCH_*.json baseline, skipping")
            }
        }
        if !failures.is_empty() {
            eprintln!("scaling gate: FAILED:");
            for f in &failures {
                eprintln!("  {f}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!("scaling gate: ok");
    }
    ExitCode::SUCCESS
}
