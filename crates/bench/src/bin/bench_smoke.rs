//! `bench_smoke` — fast wall-clock benches of the parallelized hot paths,
//! with a regression gate for CI.
//!
//! ```text
//! bench_smoke [--out FILE] [--check] [--iters N]
//! ```
//!
//! Runs each bench twice — pinned to 1 worker thread (the exact serial
//! path) and to 4 — plus one untimed serial telemetry pass that captures
//! the algorithmic work counters, and emits a JSON document:
//!
//! ```json
//! {
//!   "schema": "ccs-bench-smoke/v3",
//!   "available_parallelism": 4,
//!   "host_sentinel_ms": 3.1,
//!   "benches": {
//!     "ccsga_n100": {
//!       "serial_ms": 123.4, "par_ms": 61.7, "speedup": 2.0,
//!       "oracle_evals": 0, "cache_hits": 310, "cache_misses": 129
//!     }
//!   }
//! }
//! ```
//!
//! Wall-clock catches regressions only coarsely (20% tolerance, noisy
//! machines); the counters catch them *algorithmically* — an extra oracle
//! round-trip per candidate move shows up as an exact integer jump even
//! when the timing noise hides it.
//!
//! With `--check`, the newest committed `BENCH_<N>.json` in the working
//! directory *covering this binary's bench names* (see [`ccs_bench::gate`]:
//! other binaries emit disjoint bench families and must not shadow this
//! gate's baseline) is used *before* any output is written: if any
//! bench's `serial_ms` regresses by more than 20% — after rescaling the
//! baseline by the `host_sentinel_ms` ratio, so a slow laptop isn't
//! gated against a fast CI runner's wall clock — or its `oracle_evals`
//! grows by more than 5%, the process exits with status 1. Version-1
//! baselines (no counter fields) gate on timing only; baselines without
//! a sentinel skip the timing gate with a notice (the counters still
//! gate); when no baseline exists at all the gate is skipped gracefully,
//! so the first run of a fresh checkout always passes.
//!
//! Every run also cross-checks that the 1-thread and 4-thread schedules
//! are bit-identical — the determinism contract of `ccs-par` — and aborts
//! loudly if they ever diverge.

use ccs_bench::gate::{self, Direction, Gate};
use ccs_core::prelude::*;
use ccs_submodular::minimize::SeparableFn;
use ccs_submodular::mnp::{minimize, MnpOptions};
use ccs_submodular::set_fn::{CardinalityCurve, CardinalityPenalized};
use ccs_wrsn::scenario::ScenarioGenerator;
use serde_json::{Number, Value};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;

/// The `--check` gates: serial mean within 20% (wall clock is noisy), the
/// deterministic oracle counter within 5% (slack for intentional drifts
/// only; any growth from a zero baseline is real).
const GATES: [Gate; 2] = [
    Gate {
        field: "serial_ms",
        tolerance: 0.20,
        direction: Direction::HigherIsWorse,
        zero_base_fails: false,
        // Wall clock transfers across hosts only through the sentinel
        // calibration; baselines without one skip this gate loudly.
        host_sensitive: true,
    },
    Gate {
        field: "oracle_evals",
        tolerance: 0.05,
        direction: Direction::HigherIsWorse,
        zero_base_fails: true,
        host_sensitive: false,
    },
];

fn instance(n: usize) -> CcsProblem {
    CcsProblem::new(
        ScenarioGenerator::new(n as u64)
            .devices(n)
            .chargers((n / 10).max(2))
            .generate(),
    )
}

fn sfm_instance(n: usize) -> CardinalityPenalized<SeparableFn> {
    let weights: Vec<f64> = (0..n)
        .map(|i| ((i * 2654435761) % 97) as f64 / 10.0)
        .collect();
    let bill = SeparableFn::new(weights, 25.0, CardinalityCurve::Sqrt, 3.0);
    CardinalityPenalized::new(bill, 4.0)
}

/// One warmup call, then the mean of `iters` timed calls, in milliseconds.
/// Returns the mean and a determinism fingerprint of the workload's result.
fn time_ms(iters: usize, f: &dyn Fn() -> u64) -> (f64, u64) {
    let fingerprint = f();
    let start = Instant::now();
    for _ in 0..iters {
        assert_eq!(f(), fingerprint, "bench workload is nondeterministic");
    }
    let mean = start.elapsed().as_secs_f64() * 1000.0 / iters as f64;
    (mean, fingerprint)
}

struct BenchResult {
    serial_ms: f64,
    par_ms: f64,
    oracle_evals: u64,
    cache_hits: u64,
    cache_misses: u64,
}

/// Runs `f` under 1 and 4 worker threads, asserting bit-identical results,
/// then one untimed serial pass with telemetry enabled to capture the
/// workload counters (oracle evaluations, coalition-cache hits/misses).
fn run_bench(name: &str, iters: usize, f: &dyn Fn() -> u64) -> BenchResult {
    ccs_par::set_threads(1);
    let (serial_ms, serial_fp) = time_ms(iters, f);
    ccs_par::set_threads(4);
    let (par_ms, par_fp) = time_ms(iters, f);
    assert_eq!(
        serial_fp, par_fp,
        "{name}: 1-thread and 4-thread results diverged — determinism bug"
    );

    ccs_par::set_threads(1);
    let registry = ccs_telemetry::global();
    registry.reset();
    registry.enable();
    f();
    let report = registry.report();
    registry.disable();
    registry.reset();
    ccs_par::set_threads(0);

    let result = BenchResult {
        serial_ms,
        par_ms,
        oracle_evals: report.counter("sfm.oracle_evals"),
        cache_hits: report.counter("cache.hits"),
        cache_misses: report.counter("cache.misses"),
    };
    eprintln!(
        "bench {name}: serial {serial_ms:.2} ms, par {par_ms:.2} ms, \
         oracle {} (cache {}/{})",
        result.oracle_evals, result.cache_hits, result.cache_misses
    );
    result
}

fn benches(iters: usize) -> BTreeMap<String, BenchResult> {
    let mut out = BTreeMap::new();

    let p40 = instance(40);
    out.insert(
        "ccsa_n40".to_string(),
        run_bench("ccsa_n40", iters, &|| {
            ccsa(&p40, &EqualShare, CcsaOptions::default())
                .total_cost()
                .value()
                .to_bits()
        }),
    );

    let p50 = instance(50);
    out.insert(
        "ccsga_n50".to_string(),
        run_bench("ccsga_n50", iters, &|| {
            ccsga(&p50, &EqualShare, CcsgaOptions::default())
                .schedule
                .total_cost()
                .value()
                .to_bits()
        }),
    );

    let p100 = instance(100);
    out.insert(
        "ccsga_n100".to_string(),
        run_bench("ccsga_n100", iters, &|| {
            ccsga(&p100, &EqualShare, CcsgaOptions::default())
                .schedule
                .total_cost()
                .value()
                .to_bits()
        }),
    );

    let f48 = sfm_instance(48);
    out.insert(
        "sfm_mnp_n48".to_string(),
        run_bench("sfm_mnp_n48", iters, &|| {
            let sol = minimize(&f48, MnpOptions::default());
            sol.value.to_bits() ^ sol.minimizer.len() as u64
        }),
    );

    out
}

fn num(x: f64) -> Value {
    Value::Number(Number::Float((x * 100.0).round() / 100.0))
}

fn to_json(results: &BTreeMap<String, BenchResult>) -> Value {
    let mut benches = BTreeMap::new();
    for (name, r) in results {
        let mut entry = BTreeMap::new();
        entry.insert("serial_ms".to_string(), num(r.serial_ms));
        entry.insert("par_ms".to_string(), num(r.par_ms));
        entry.insert("speedup".to_string(), num(r.serial_ms / r.par_ms));
        entry.insert(
            "oracle_evals".to_string(),
            Value::Number(Number::PosInt(r.oracle_evals)),
        );
        entry.insert(
            "cache_hits".to_string(),
            Value::Number(Number::PosInt(r.cache_hits)),
        );
        entry.insert(
            "cache_misses".to_string(),
            Value::Number(Number::PosInt(r.cache_misses)),
        );
        benches.insert(name.clone(), Value::Object(entry));
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let mut root = BTreeMap::new();
    root.insert(
        "schema".to_string(),
        Value::String("ccs-bench-smoke/v3".to_string()),
    );
    root.insert(
        "available_parallelism".to_string(),
        Value::Number(Number::PosInt(cores)),
    );
    root.insert(
        gate::SENTINEL_FIELD.to_string(),
        num(gate::host_sentinel_ms()),
    );
    root.insert("benches".to_string(), Value::Object(benches));
    Value::Object(root)
}

fn main() -> ExitCode {
    let mut out_path: Option<String> = None;
    let mut check = false;
    let mut iters = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next(),
            "--check" => check = true,
            "--iters" => {
                // A typo must not silently bench with the default count.
                match args.next().map(|v| (v.clone(), v.parse::<usize>())) {
                    Some((_, Ok(n))) if n > 0 => iters = n,
                    Some((raw, _)) => {
                        eprintln!("error: --iters needs a positive integer, got '{raw}'");
                        return ExitCode::FAILURE;
                    }
                    None => {
                        eprintln!("error: --iters needs a value");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!("usage: bench_smoke [--out FILE] [--check] [--iters N] (got '{other}')");
                return ExitCode::FAILURE;
            }
        }
    }

    // Capture the baseline before writing anything, so `--out BENCH_2.json
    // --check` compares against the committed file, not the fresh one.
    let baseline = gate::newest_baseline(&["ccsa_n40", "ccsga_n50", "ccsga_n100", "sfm_mnp_n48"]);

    let results = benches(iters);
    let doc = to_json(&results);
    let json = serde_json::to_string_pretty(&doc).expect("results serialize");

    match &out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }

    if check {
        match baseline {
            Some((name, base)) => {
                let failures = gate::regressions(&doc, &base, &GATES);
                if failures.is_empty() {
                    eprintln!("bench-regression gate: ok vs {name}");
                } else {
                    eprintln!(
                        "bench-regression gate: FAILED vs {name} \
                         (>20% slower or >5% more oracle evals):"
                    );
                    for f in &failures {
                        eprintln!("  {f}");
                    }
                    return ExitCode::FAILURE;
                }
            }
            None => {
                eprintln!("bench-regression gate: no committed BENCH_*.json baseline, skipping")
            }
        }
    }
    ExitCode::SUCCESS
}
