//! Quick-look terminal charts for harness CSVs.
//!
//! ```text
//! cargo run -p ccs-bench --bin plot -- results/fig5.csv [width] [height]
//! ```

use ccs_bench::exp::plot::{render, series_from_csv};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        eprintln!("usage: plot <results.csv> [width] [height]");
        return ExitCode::FAILURE;
    };
    let width: usize = args.get(1).and_then(|w| w.parse().ok()).unwrap_or(72);
    let height: usize = args.get(2).and_then(|h| h.parse().ok()).unwrap_or(18);
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match series_from_csv(&text) {
        Some(series) => {
            println!("{path}");
            print!("{}", render(&series, width, height));
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("{path}: no numeric series found");
            ExitCode::FAILURE
        }
    }
}
