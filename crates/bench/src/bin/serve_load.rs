//! `serve_load` — load generator for the `ccs serve` daemon.
//!
//! ```text
//! serve_load [--clients N] [--requests M] [--workers W] [--out FILE] [--check]
//! serve_load --gateway [--clients N] [--requests M] [--shards S] [--workers W]
//!            [--out FILE] [--check]
//! ```
//!
//! Starts an in-process daemon on a Unix socket (the same [`serve_unix`]
//! engine `ccs serve --socket` runs), then drives it with `N` concurrent
//! client connections, each sending `M` requests — a mix of `plan` calls
//! over a handful of scenarios (exercising the scenario and plan caches),
//! `replay` calls with per-request seeds (cache-hitting the plan but doing
//! fresh testbed work), and one deliberately malformed line per client
//! (exercising the error path under load). Every client asserts it gets
//! exactly one response per request and that the daemon never drops a
//! connection. Per-request round-trip latency is recorded into a shared
//! log-linear histogram ([`ccs_telemetry::Histogram`] — the same backend
//! the daemon's own metrics use).
//!
//! After the batch (while the daemon is quiescent) the harness probes
//! `{"cmd":"stats"}` and asserts the snapshot: the schema tag, non-zero
//! p50/p99 for `serve.plan`, and the error-counter consistency invariant
//! `errors == bad_request + expired + failed + panics`.
//!
//! The run emits a `BENCH_5.json`-style document:
//!
//! ```json
//! {
//!   "schema": "ccs-serve-load/v2",
//!   "clients": 4,
//!   "requests_per_client": 25,
//!   "benches": {
//!     "serve_mixed": {
//!       "throughput_rps": 412.7, "total_ms": 242.3,
//!       "p50_ms": 7.4, "p99_ms": 31.2, "max_ms": 48.5,
//!       "ok": 96, "errors": 4, "rejected": 0
//!     }
//!   }
//! }
//! ```
//!
//! With `--check`, the newest committed `BENCH_<N>.json` covering
//! `serve_mixed` gates the run on *both* axes: throughput more than 50%
//! below the baseline fails, and tail latency (`p99_ms`) more than 100%
//! above it fails. Generous tolerances — CI machines are noisy; the point
//! is to catch an accidental serialization of the worker pool or a
//! tail-latency cliff, each of which costs far more.
//!
//! # Gateway mode (`--gateway`)
//!
//! Starts an in-process `ccs gateway` ([`run_gateway_on`]) on an ephemeral
//! TCP port and drives it over real HTTP/1.1 keep-alive connections with a
//! **mixed-tenant** workload: client `c` identifies as tenant
//! `alpha`/`beta`/`gamma` via `X-Tenant` (so the run spans three private
//! caches and three stats sections), sending a mix of `POST /v1/plan`
//! bodies, four-item `POST /v1/batch` requests (the scenario-grouped
//! amortization path), and one malformed body per lap (the `400` path).
//! Round-trip latency lands in a global histogram *and* a per-tenant one.
//! After the batch the harness probes `GET /v1/stats` and asserts the
//! `ccs-gateway-stats/v1` schema and that every tenant shows up with
//! consistent counters. The run emits a `ccs-serve-load/v3` document
//! (`BENCH_7.json`-style): one gated `gateway_mixed` bench plus ungated
//! per-tenant `gateway_tenant_*` entries carrying p50/p99/requests. The
//! same [`GATES`] apply (throughput −50%, p99 +100%).

use ccs_bench::gate::{self, Direction, Gate};
use ccs_gateway::{run_gateway_on, GatewayConfig, GATEWAY_STATS_SCHEMA};
use ccs_serve::prelude::*;
use ccs_telemetry::Histogram;
use ccs_wrsn::scenario::ScenarioGenerator;
use serde::Serialize;
use serde_json::{Number, Value};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::UnixStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Throughput and tail-latency gates (see module docs). Not marked
/// host-sensitive: the 50%/100% tolerances already absorb host-speed
/// drift, and these documents predate the sentinel calibration.
const GATES: [Gate; 2] = [
    Gate {
        field: "throughput_rps",
        tolerance: 0.5,
        direction: Direction::LowerIsWorse,
        zero_base_fails: false,
        host_sensitive: false,
    },
    Gate {
        field: "p99_ms",
        tolerance: 1.0,
        direction: Direction::HigherIsWorse,
        zero_base_fails: false,
        host_sensitive: false,
    },
];

/// Scenario pool the clients draw from (small enough that plans are
/// cache-hot after the first lap, large enough to exercise eviction-free
/// multi-entry behavior).
fn scenario_pool() -> Vec<String> {
    (1u64..=3)
        .map(|seed| {
            let scenario = ScenarioGenerator::new(seed)
                .devices(10)
                .chargers(3)
                .generate();
            serde_json::to_string(&scenario.to_value()).expect("scenario serializes")
        })
        .collect()
}

struct ClientOutcome {
    ok: u64,
    errors: u64,
    rejected: u64,
}

/// One client: `requests` JSONL requests down a fresh connection, reading
/// each response before sending the next (closed-loop load). Round-trip
/// latency of every request lands in the shared histogram.
fn run_client(
    socket: &str,
    client: usize,
    requests: usize,
    scenarios: &[String],
    latency: &Histogram,
) -> std::io::Result<ClientOutcome> {
    let stream = UnixStream::connect(socket)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut outcome = ClientOutcome {
        ok: 0,
        errors: 0,
        rejected: 0,
    };
    for i in 0..requests {
        let scenario = &scenarios[(client + i) % scenarios.len()];
        let id = (client * requests + i) as u64;
        let line = match i % 5 {
            // One malformed line per lap: the error path must not cost a
            // connection or wedge the daemon under load.
            4 => "{not json".to_string(),
            3 => format!(
                r#"{{"id":{id},"cmd":"replay","scenario":{scenario},"seed":{i},"noshow":0.2}}"#
            ),
            _ => format!(
                r#"{{"id":{id},"cmd":"plan","scenario":{scenario},"algo":"{}"}}"#,
                if i % 2 == 0 { "ccsa" } else { "ncp" }
            ),
        };
        let start = Instant::now();
        writeln!(writer, "{line}")?;
        let mut response = String::new();
        if reader.read_line(&mut response)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection mid-batch",
            ));
        }
        latency.record_duration(start.elapsed());
        let parsed: Value = serde_json::from_str(&response).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparseable response: {e}"),
            )
        })?;
        match parsed.field("ok") {
            Value::Bool(true) => outcome.ok += 1,
            Value::Bool(false) => {
                if let Value::String(kind) = parsed.field("error").field("kind") {
                    if kind == "rejected" {
                        outcome.rejected += 1;
                    }
                }
                outcome.errors += 1;
            }
            _ => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "response carries no 'ok' field",
                ))
            }
        }
    }
    Ok(outcome)
}

/// Probes `{"cmd":"stats"}` on a quiescent daemon and cross-checks the
/// snapshot against the acceptance invariants. Returns an error message on
/// any violation.
fn probe_stats(socket: &str) -> Result<(), String> {
    let io_err = |e: std::io::Error| format!("stats probe io: {e}");
    let stream = UnixStream::connect(socket).map_err(io_err)?;
    let mut reader = BufReader::new(stream.try_clone().map_err(io_err)?);
    let mut writer = stream;
    writeln!(writer, r#"{{"id":"stats-probe","cmd":"stats"}}"#).map_err(io_err)?;
    let mut line = String::new();
    reader.read_line(&mut line).map_err(io_err)?;
    let response: Value =
        serde_json::from_str(&line).map_err(|e| format!("stats response unparseable: {e}"))?;
    if response.field("ok") != &Value::Bool(true) {
        return Err(format!("stats probe not ok: {line}"));
    }
    let snapshot = response.field("result");
    if snapshot.field("schema") != &Value::String(ccs_serve::STATS_SCHEMA.to_string()) {
        return Err(format!("unexpected schema: {:?}", snapshot.field("schema")));
    }
    let u64_at = |v: &Value, path: &[&str]| -> Result<u64, String> {
        let mut cur = v.clone();
        for key in path {
            cur = cur.field(key).clone();
        }
        match cur {
            Value::Number(Number::PosInt(u)) => Ok(u),
            other => Err(format!("{} is not a u64: {other:?}", path.join("."))),
        }
    };
    let plan_p50 = u64_at(snapshot, &["latency_us", "serve.plan", "p50"])?;
    let plan_p99 = u64_at(snapshot, &["latency_us", "serve.plan", "p99"])?;
    if plan_p50 == 0 || plan_p99 == 0 {
        return Err(format!(
            "serve.plan latency is zero under load (p50 {plan_p50} us, p99 {plan_p99} us)"
        ));
    }
    let errors = u64_at(snapshot, &["requests", "errors"])?;
    let by_kind = u64_at(snapshot, &["requests", "bad_request"])?
        + u64_at(snapshot, &["requests", "expired"])?
        + u64_at(snapshot, &["requests", "failed"])?
        + u64_at(snapshot, &["requests", "panics"])?;
    if errors != by_kind {
        return Err(format!(
            "error counters inconsistent: errors {errors} != by-kind sum {by_kind}"
        ));
    }
    Ok(())
}

/// The mixed-tenant pool: client `c` identifies as tenant `c % 3`.
const TENANTS: [&str; 3] = ["alpha", "beta", "gamma"];

/// Sends one HTTP/1.1 request down a keep-alive connection and reads the
/// full response. Returns `(status, body)`.
fn http_round_trip(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    method: &str,
    path: &str,
    tenant: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    // One write per request (and TCP_NODELAY on the stream): fragmented
    // writes would hand Nagle a reason to stall each round trip.
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: serve-load\r\nX-Tenant: {tenant}\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    writer.write_all(request.as_bytes())?;
    writer.flush()?;
    let invalid = |what: String| std::io::Error::new(std::io::ErrorKind::InvalidData, what);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "gateway closed the connection mid-batch",
        ));
    }
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid(format!("malformed status line: {line:?}")))?;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(invalid("connection closed mid-headers".to_string()));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some(value) = header.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| invalid(format!("bad content-length: {header:?}")))?;
        }
    }
    let mut response = vec![0u8; content_length];
    reader.read_exact(&mut response)?;
    String::from_utf8(response)
        .map(|body| (status, body))
        .map_err(|_| invalid("response body is not UTF-8".to_string()))
}

/// Tallies one JSONL-semantics response value into `outcome`.
fn tally(outcome: &mut ClientOutcome, value: &Value) -> std::io::Result<()> {
    match value.field("ok") {
        Value::Bool(true) => outcome.ok += 1,
        Value::Bool(false) => {
            if let Value::String(kind) = value.field("error").field("kind") {
                if kind == "rejected" {
                    outcome.rejected += 1;
                }
            }
            outcome.errors += 1;
        }
        _ => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "response carries no 'ok' field",
            ))
        }
    }
    Ok(())
}

/// One gateway client: `requests` HTTP round trips over one keep-alive
/// connection as its tenant — plans, four-item batches, and one malformed
/// body per lap. Round-trip latency lands in both histograms.
fn run_gateway_client(
    addr: &str,
    client: usize,
    requests: usize,
    scenarios: &[String],
    latency: &Histogram,
    tenant_latency: &Histogram,
) -> std::io::Result<ClientOutcome> {
    let tenant = TENANTS[client % TENANTS.len()];
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut outcome = ClientOutcome {
        ok: 0,
        errors: 0,
        rejected: 0,
    };
    for i in 0..requests {
        let scenario = &scenarios[(client + i) % scenarios.len()];
        let id = (client * requests + i) as u64;
        let (path, body) = match i % 7 {
            // One malformed body per lap: the 400 path must not cost the
            // connection (the gateway keeps well-framed streams alive).
            6 => ("/v1/plan", "{not json".to_string()),
            // One four-item batch per lap: same-scenario items, the
            // grouped amortization path.
            4 => {
                let items: Vec<String> = (0..4)
                    .map(|j| {
                        format!(
                            r#"{{"id":{},"cmd":"plan","scenario":{scenario},"algo":"{}"}}"#,
                            id * 10 + j,
                            if j % 2 == 0 { "ccsa" } else { "ncp" }
                        )
                    })
                    .collect();
                (
                    "/v1/batch",
                    format!(r#"{{"id":{id},"requests":[{}]}}"#, items.join(",")),
                )
            }
            _ => (
                "/v1/plan",
                format!(
                    r#"{{"id":{id},"cmd":"plan","scenario":{scenario},"algo":"{}"}}"#,
                    if i % 2 == 0 { "ccsa" } else { "ncp" }
                ),
            ),
        };
        let start = Instant::now();
        let (_status, response) =
            http_round_trip(&mut writer, &mut reader, "POST", path, tenant, &body)?;
        let took = start.elapsed();
        latency.record_duration(took);
        tenant_latency.record_duration(took);
        let parsed: Value = serde_json::from_str(&response).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparseable response: {e}"),
            )
        })?;
        if path == "/v1/batch" {
            if let (Value::Bool(true), Value::Array(items)) =
                (parsed.field("ok"), parsed.field("result"))
            {
                for item in items {
                    tally(&mut outcome, item)?;
                }
            } else {
                // The whole batch was refused (e.g. backpressure): count
                // its items so the answered-everything invariant holds.
                for _ in 0..4 {
                    tally(&mut outcome, &parsed)?;
                }
            }
        } else {
            tally(&mut outcome, &parsed)?;
        }
    }
    Ok(outcome)
}

/// Items one gateway client sends: plans count 1, batches count 4 (the
/// mirror of `run_gateway_client`'s `i % 7` mix).
fn gateway_items(requests: usize) -> u64 {
    (0..requests).map(|i| if i % 7 == 4 { 4 } else { 1 }).sum()
}

/// Probes `GET /v1/stats` on the quiescent gateway: schema tag, every
/// tenant present, and per-tenant counter consistency.
fn probe_gateway_stats(addr: &str) -> Result<(), String> {
    let io_err = |e: std::io::Error| format!("gateway stats probe io: {e}");
    let stream = TcpStream::connect(addr).map_err(io_err)?;
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone().map_err(io_err)?);
    let mut writer = stream;
    let (status, body) =
        http_round_trip(&mut writer, &mut reader, "GET", "/v1/stats", TENANTS[0], "")
            .map_err(io_err)?;
    if status != 200 {
        return Err(format!("stats probe answered {status}: {body}"));
    }
    let response: Value =
        serde_json::from_str(&body).map_err(|e| format!("stats unparseable: {e}"))?;
    let snapshot = response.field("result");
    if snapshot.field("schema") != &Value::String(GATEWAY_STATS_SCHEMA.to_string()) {
        return Err(format!("unexpected schema: {:?}", snapshot.field("schema")));
    }
    for tenant in TENANTS {
        let entry = snapshot.field("tenants").field(tenant);
        let Value::Object(_) = entry else {
            return Err(format!("tenant {tenant:?} missing from the stats snapshot"));
        };
        let requests = entry.field("requests");
        let completed = entry.field("completed");
        let (Value::Number(Number::PosInt(r)), Value::Number(Number::PosInt(c))) =
            (requests, completed)
        else {
            return Err(format!("tenant {tenant:?} counters malformed"));
        };
        // `completed` counts plan items (a batch carries several), while
        // `requests` counts HTTP requests — so completed may exceed
        // requests; both must simply be live.
        if *c == 0 || *r == 0 {
            return Err(format!(
                "tenant {tenant:?} counters dead: completed {c}, requests {r}"
            ));
        }
    }
    Ok(())
}

fn uint(x: u64) -> Value {
    Value::Number(Number::PosInt(x))
}

fn num(x: f64) -> Value {
    Value::Number(Number::Float((x * 100.0).round() / 100.0))
}

fn to_json(
    clients: usize,
    requests: usize,
    total: &ClientOutcome,
    elapsed: Duration,
    latency: &Histogram,
) -> Value {
    let answered = total.ok + total.errors;
    let snap = latency.snapshot();
    let ms = |ns: u64| ns as f64 / 1e6;
    let mut entry = BTreeMap::new();
    entry.insert(
        "throughput_rps".to_string(),
        num(answered as f64 / elapsed.as_secs_f64()),
    );
    entry.insert("total_ms".to_string(), num(elapsed.as_secs_f64() * 1000.0));
    entry.insert("p50_ms".to_string(), num(ms(snap.quantile(0.50))));
    entry.insert("p99_ms".to_string(), num(ms(snap.quantile(0.99))));
    entry.insert("max_ms".to_string(), num(ms(snap.max)));
    entry.insert("ok".to_string(), uint(total.ok));
    entry.insert("errors".to_string(), uint(total.errors));
    entry.insert("rejected".to_string(), uint(total.rejected));
    let mut benches = BTreeMap::new();
    benches.insert("serve_mixed".to_string(), Value::Object(entry));
    let mut root = BTreeMap::new();
    root.insert(
        "schema".to_string(),
        Value::String("ccs-serve-load/v2".to_string()),
    );
    root.insert("clients".to_string(), uint(clients as u64));
    root.insert("requests_per_client".to_string(), uint(requests as u64));
    root.insert("benches".to_string(), Value::Object(benches));
    Value::Object(root)
}

/// The `ccs-serve-load/v3` document: the gated `gateway_mixed` bench plus
/// ungated per-tenant latency entries.
fn to_json_gateway(
    clients: usize,
    requests: usize,
    total: &ClientOutcome,
    elapsed: Duration,
    latency: &Histogram,
    tenant_latency: &BTreeMap<&str, Histogram>,
) -> Value {
    let answered = total.ok + total.errors;
    let ms = |ns: u64| ns as f64 / 1e6;
    let mut benches = BTreeMap::new();
    let snap = latency.snapshot();
    let mut mixed = BTreeMap::new();
    mixed.insert(
        "throughput_rps".to_string(),
        num(answered as f64 / elapsed.as_secs_f64()),
    );
    mixed.insert("total_ms".to_string(), num(elapsed.as_secs_f64() * 1000.0));
    mixed.insert("p50_ms".to_string(), num(ms(snap.quantile(0.50))));
    mixed.insert("p99_ms".to_string(), num(ms(snap.quantile(0.99))));
    mixed.insert("max_ms".to_string(), num(ms(snap.max)));
    mixed.insert("ok".to_string(), uint(total.ok));
    mixed.insert("errors".to_string(), uint(total.errors));
    mixed.insert("rejected".to_string(), uint(total.rejected));
    benches.insert("gateway_mixed".to_string(), Value::Object(mixed));
    for (tenant, hist) in tenant_latency {
        let snap = hist.snapshot();
        let mut entry = BTreeMap::new();
        entry.insert("requests".to_string(), uint(snap.count));
        entry.insert("p50_ms".to_string(), num(ms(snap.quantile(0.50))));
        entry.insert("p99_ms".to_string(), num(ms(snap.quantile(0.99))));
        benches.insert(format!("gateway_tenant_{tenant}"), Value::Object(entry));
    }
    let mut root = BTreeMap::new();
    root.insert(
        "schema".to_string(),
        Value::String("ccs-serve-load/v3".to_string()),
    );
    root.insert("mode".to_string(), Value::String("gateway".to_string()));
    root.insert("clients".to_string(), uint(clients as u64));
    root.insert("requests_per_client".to_string(), uint(requests as u64));
    root.insert("benches".to_string(), Value::Object(benches));
    Value::Object(root)
}

/// The `--gateway` run: in-process gateway on an ephemeral TCP port,
/// mixed-tenant HTTP clients, stats probe, v3 document, gate.
fn gateway_main(
    clients: usize,
    requests: usize,
    shards: usize,
    workers: usize,
    out_path: Option<&str>,
    check: bool,
) -> ExitCode {
    // Capture the baseline before writing anything (see bench_smoke).
    let baseline = gate::newest_baseline(&["gateway_mixed"]);

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener
        .local_addr()
        .expect("listener has a local addr")
        .to_string();
    let config = GatewayConfig {
        shards,
        workers_per_shard: workers.max(1),
        queue_depth: 256,
        ..GatewayConfig::default()
    };
    let scenarios = scenario_pool();
    let latency = Histogram::new();
    let tenant_latency: BTreeMap<&str, Histogram> = TENANTS
        .iter()
        .map(|tenant| (*tenant, Histogram::new()))
        .collect();

    let (summary, total, elapsed, stats_probe) = std::thread::scope(|scope| {
        let config = &config;
        let gateway = scope.spawn(move || run_gateway_on(listener, config));

        let start = Instant::now();
        let outcomes: Vec<_> = (0..clients)
            .map(|c| {
                let addr = &addr;
                let scenarios = &scenarios;
                let latency = &latency;
                let tenant_hist = &tenant_latency[TENANTS[c % TENANTS.len()]];
                scope.spawn(move || {
                    run_gateway_client(addr, c, requests, scenarios, latency, tenant_hist)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();
        let elapsed = start.elapsed();

        // All clients are done and their connections dropped: the gateway
        // is quiescent, so the stats snapshot's counters are final.
        let stats_probe = probe_gateway_stats(&addr);

        {
            let stream = TcpStream::connect(&addr).expect("shutdown connection");
            let _ = stream.set_nodelay(true);
            let mut reader = BufReader::new(stream.try_clone().expect("stream clone"));
            let mut writer = stream;
            http_round_trip(
                &mut writer,
                &mut reader,
                "POST",
                "/v1/shutdown",
                "alpha",
                "",
            )
            .expect("shutdown request");
        }
        let summary = gateway
            .join()
            .expect("gateway thread")
            .expect("gateway serve");

        let mut total = ClientOutcome {
            ok: 0,
            errors: 0,
            rejected: 0,
        };
        for outcome in outcomes {
            let outcome = outcome.expect("client io");
            total.ok += outcome.ok;
            total.errors += outcome.errors;
            total.rejected += outcome.rejected;
        }
        (summary, total, elapsed, stats_probe)
    });

    let expected = clients as u64 * gateway_items(requests);
    assert_eq!(
        total.ok + total.errors,
        expected,
        "every plan item must be answered"
    );
    if let Err(why) = stats_probe {
        eprintln!("error: gateway stats probe failed: {why}");
        return ExitCode::FAILURE;
    }
    let snap = latency.snapshot();
    eprintln!(
        "serve_load --gateway: {clients} clients x {requests} round trips \
         ({expected} items) in {:.1} ms ({:.0} items/s, p50 {:.2} ms, \
         p99 {:.2} ms, max {:.2} ms) — ok {} errors {} rejected {} \
         (gateway: requests {} batches {} rate_limited {})",
        elapsed.as_secs_f64() * 1000.0,
        expected as f64 / elapsed.as_secs_f64(),
        snap.quantile(0.50) as f64 / 1e6,
        snap.quantile(0.99) as f64 / 1e6,
        snap.max as f64 / 1e6,
        total.ok,
        total.errors,
        total.rejected,
        summary.requests,
        summary.batches,
        summary.rate_limited,
    );

    let doc = to_json_gateway(
        clients,
        requests,
        &total,
        elapsed,
        &latency,
        &tenant_latency,
    );
    let json = serde_json::to_string_pretty(&doc).expect("results serialize");
    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }

    if check {
        match baseline {
            Some((name, base)) => {
                let failures = gate::regressions(&doc, &base, &GATES);
                if failures.is_empty() {
                    eprintln!("serve-load gate: ok vs {name}");
                } else {
                    eprintln!("serve-load gate: FAILED vs {name}:");
                    for f in &failures {
                        eprintln!("  {f}");
                    }
                    return ExitCode::FAILURE;
                }
            }
            None => eprintln!("serve-load gate: no committed gateway baseline, skipping"),
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut clients = 4usize;
    let mut requests = 25usize;
    let mut workers = 0usize;
    let mut shards = 0usize;
    let mut gateway = false;
    let mut out_path: Option<String> = None;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut uint_flag = |name: &str| -> Result<usize, String> {
            match args.next().map(|v| (v.clone(), v.parse::<usize>())) {
                Some((_, Ok(n))) => Ok(n),
                Some((raw, _)) => Err(format!(
                    "--{name} needs a non-negative integer, got '{raw}'"
                )),
                None => Err(format!("--{name} needs a value")),
            }
        };
        let parsed = match arg.as_str() {
            "--clients" => uint_flag("clients").map(|n| clients = n.max(1)),
            "--requests" => uint_flag("requests").map(|n| requests = n.max(1)),
            "--workers" => uint_flag("workers").map(|n| workers = n),
            "--shards" => uint_flag("shards").map(|n| shards = n),
            "--gateway" => {
                gateway = true;
                Ok(())
            }
            "--out" => {
                out_path = args.next();
                if out_path.is_none() {
                    Err("--out needs a value".to_string())
                } else {
                    Ok(())
                }
            }
            "--check" => {
                check = true;
                Ok(())
            }
            other => Err(format!(
                "usage: serve_load [--gateway] [--clients N] [--requests M] \
                 [--workers W] [--shards S] [--out FILE] [--check] (got '{other}')"
            )),
        };
        if let Err(err) = parsed {
            eprintln!("error: {err}");
            return ExitCode::FAILURE;
        }
    }

    if gateway {
        return gateway_main(
            clients,
            requests,
            shards,
            workers,
            out_path.as_deref(),
            check,
        );
    }

    // Capture the baseline before writing anything (see bench_smoke).
    let baseline = gate::newest_baseline(&["serve_mixed"]);

    let socket = std::env::temp_dir().join(format!("ccs-serve-load-{}.sock", std::process::id()));
    let socket = socket.to_string_lossy().into_owned();
    let config = ServeConfig {
        workers,
        queue_depth: 64,
        stats_every: None,
        ..ServeConfig::default()
    };
    let scenarios = scenario_pool();
    let latency = Histogram::new();

    let (summary, total, elapsed, stats_probe) = std::thread::scope(|scope| {
        let daemon = {
            let socket = socket.clone();
            scope.spawn(move || serve_unix(&socket, &config))
        };
        // Wait for the socket to come up.
        let deadline = Instant::now() + Duration::from_secs(10);
        while !std::path::Path::new(&socket).exists() {
            assert!(Instant::now() < deadline, "daemon socket never appeared");
            std::thread::sleep(Duration::from_millis(10));
        }

        let start = Instant::now();
        let outcomes: Vec<_> = (0..clients)
            .map(|c| {
                let socket = &socket;
                let scenarios = &scenarios;
                let latency = &latency;
                scope.spawn(move || run_client(socket, c, requests, scenarios, latency))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();
        let elapsed = start.elapsed();

        // All clients are done: the daemon is quiescent, so the stats
        // snapshot's counters are final (bar the probe itself).
        let stats_probe = probe_stats(&socket);

        let mut shutdown = UnixStream::connect(&socket).expect("shutdown connection");
        writeln!(shutdown, r#"{{"cmd":"shutdown"}}"#).expect("shutdown request");
        let summary = daemon.join().expect("daemon thread").expect("daemon bind");

        let mut total = ClientOutcome {
            ok: 0,
            errors: 0,
            rejected: 0,
        };
        for outcome in outcomes {
            let outcome = outcome.expect("client io");
            total.ok += outcome.ok;
            total.errors += outcome.errors;
            total.rejected += outcome.rejected;
        }
        (summary, total, elapsed, stats_probe)
    });

    let expected = (clients * requests) as u64;
    assert_eq!(
        total.ok + total.errors,
        expected,
        "every request must be answered"
    );
    if let Err(why) = stats_probe {
        eprintln!("error: stats probe failed: {why}");
        return ExitCode::FAILURE;
    }
    let snap = latency.snapshot();
    eprintln!(
        "serve_load: {clients} clients x {requests} requests in {:.1} ms \
         ({:.0} req/s, p50 {:.2} ms, p99 {:.2} ms, max {:.2} ms) — \
         ok {} errors {} rejected {} \
         (daemon: completed {} errors {} panics {})",
        elapsed.as_secs_f64() * 1000.0,
        expected as f64 / elapsed.as_secs_f64(),
        snap.quantile(0.50) as f64 / 1e6,
        snap.quantile(0.99) as f64 / 1e6,
        snap.max as f64 / 1e6,
        total.ok,
        total.errors,
        total.rejected,
        summary.completed,
        summary.errors,
        summary.panics,
    );

    let doc = to_json(clients, requests, &total, elapsed, &latency);
    let json = serde_json::to_string_pretty(&doc).expect("results serialize");
    match &out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }

    if check {
        match baseline {
            Some((name, base)) => {
                let failures = gate::regressions(&doc, &base, &GATES);
                if failures.is_empty() {
                    eprintln!("serve-load gate: ok vs {name}");
                } else {
                    eprintln!("serve-load gate: FAILED vs {name}:");
                    for f in &failures {
                        eprintln!("  {f}");
                    }
                    return ExitCode::FAILURE;
                }
            }
            None => eprintln!("serve-load gate: no committed serve baseline, skipping"),
        }
    }
    ExitCode::SUCCESS
}
