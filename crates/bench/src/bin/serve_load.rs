//! `serve_load` — load generator for the `ccs serve` daemon.
//!
//! ```text
//! serve_load [--clients N] [--requests M] [--workers W] [--out FILE] [--check]
//! ```
//!
//! Starts an in-process daemon on a Unix socket (the same [`serve_unix`]
//! engine `ccs serve --socket` runs), then drives it with `N` concurrent
//! client connections, each sending `M` requests — a mix of `plan` calls
//! over a handful of scenarios (exercising the scenario and plan caches),
//! `replay` calls with per-request seeds (cache-hitting the plan but doing
//! fresh testbed work), and one deliberately malformed line per client
//! (exercising the error path under load). Every client asserts it gets
//! exactly one response per request and that the daemon never drops a
//! connection.
//!
//! The run emits a `BENCH_4.json`-style document:
//!
//! ```json
//! {
//!   "schema": "ccs-serve-load/v1",
//!   "clients": 4,
//!   "requests_per_client": 25,
//!   "benches": {
//!     "serve_mixed": {
//!       "throughput_rps": 412.7, "total_ms": 242.3,
//!       "ok": 96, "errors": 4, "rejected": 0
//!     }
//!   }
//! }
//! ```
//!
//! With `--check`, the newest committed `BENCH_<N>.json` covering
//! `serve_mixed` gates the run: throughput more than 50% below the
//! baseline fails (generous — CI machines are noisy; the point is to catch
//! an accidental serialization of the worker pool, which costs far more
//! than 50%).

use ccs_bench::gate::{self, Direction, Gate};
use ccs_serve::prelude::*;
use ccs_wrsn::scenario::ScenarioGenerator;
use serde::Serialize;
use serde_json::{Number, Value};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Throughput gate: anything under half the committed baseline fails.
const GATES: [Gate; 1] = [Gate {
    field: "throughput_rps",
    tolerance: 0.5,
    direction: Direction::LowerIsWorse,
    zero_base_fails: false,
}];

/// Scenario pool the clients draw from (small enough that plans are
/// cache-hot after the first lap, large enough to exercise eviction-free
/// multi-entry behavior).
fn scenario_pool() -> Vec<String> {
    (1u64..=3)
        .map(|seed| {
            let scenario = ScenarioGenerator::new(seed)
                .devices(10)
                .chargers(3)
                .generate();
            serde_json::to_string(&scenario.to_value()).expect("scenario serializes")
        })
        .collect()
}

struct ClientOutcome {
    ok: u64,
    errors: u64,
    rejected: u64,
}

/// One client: `requests` JSONL requests down a fresh connection, reading
/// each response before sending the next (closed-loop load).
fn run_client(
    socket: &str,
    client: usize,
    requests: usize,
    scenarios: &[String],
) -> std::io::Result<ClientOutcome> {
    let stream = UnixStream::connect(socket)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut outcome = ClientOutcome {
        ok: 0,
        errors: 0,
        rejected: 0,
    };
    for i in 0..requests {
        let scenario = &scenarios[(client + i) % scenarios.len()];
        let id = (client * requests + i) as u64;
        let line = match i % 5 {
            // One malformed line per lap: the error path must not cost a
            // connection or wedge the daemon under load.
            4 => "{not json".to_string(),
            3 => format!(
                r#"{{"id":{id},"cmd":"replay","scenario":{scenario},"seed":{i},"noshow":0.2}}"#
            ),
            _ => format!(
                r#"{{"id":{id},"cmd":"plan","scenario":{scenario},"algo":"{}"}}"#,
                if i % 2 == 0 { "ccsa" } else { "ncp" }
            ),
        };
        writeln!(writer, "{line}")?;
        let mut response = String::new();
        if reader.read_line(&mut response)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection mid-batch",
            ));
        }
        let parsed: Value = serde_json::from_str(&response).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparseable response: {e}"),
            )
        })?;
        match parsed.field("ok") {
            Value::Bool(true) => outcome.ok += 1,
            Value::Bool(false) => {
                if let Value::String(kind) = parsed.field("error").field("kind") {
                    if kind == "rejected" {
                        outcome.rejected += 1;
                    }
                }
                outcome.errors += 1;
            }
            _ => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "response carries no 'ok' field",
                ))
            }
        }
    }
    Ok(outcome)
}

fn uint(x: u64) -> Value {
    Value::Number(Number::PosInt(x))
}

fn num(x: f64) -> Value {
    Value::Number(Number::Float((x * 100.0).round() / 100.0))
}

fn to_json(clients: usize, requests: usize, total: &ClientOutcome, elapsed: Duration) -> Value {
    let answered = total.ok + total.errors;
    let mut entry = BTreeMap::new();
    entry.insert(
        "throughput_rps".to_string(),
        num(answered as f64 / elapsed.as_secs_f64()),
    );
    entry.insert("total_ms".to_string(), num(elapsed.as_secs_f64() * 1000.0));
    entry.insert("ok".to_string(), uint(total.ok));
    entry.insert("errors".to_string(), uint(total.errors));
    entry.insert("rejected".to_string(), uint(total.rejected));
    let mut benches = BTreeMap::new();
    benches.insert("serve_mixed".to_string(), Value::Object(entry));
    let mut root = BTreeMap::new();
    root.insert(
        "schema".to_string(),
        Value::String("ccs-serve-load/v1".to_string()),
    );
    root.insert("clients".to_string(), uint(clients as u64));
    root.insert("requests_per_client".to_string(), uint(requests as u64));
    root.insert("benches".to_string(), Value::Object(benches));
    Value::Object(root)
}

fn main() -> ExitCode {
    let mut clients = 4usize;
    let mut requests = 25usize;
    let mut workers = 0usize;
    let mut out_path: Option<String> = None;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut uint_flag = |name: &str| -> Result<usize, String> {
            match args.next().map(|v| (v.clone(), v.parse::<usize>())) {
                Some((_, Ok(n))) => Ok(n),
                Some((raw, _)) => Err(format!(
                    "--{name} needs a non-negative integer, got '{raw}'"
                )),
                None => Err(format!("--{name} needs a value")),
            }
        };
        let parsed = match arg.as_str() {
            "--clients" => uint_flag("clients").map(|n| clients = n.max(1)),
            "--requests" => uint_flag("requests").map(|n| requests = n.max(1)),
            "--workers" => uint_flag("workers").map(|n| workers = n),
            "--out" => {
                out_path = args.next();
                if out_path.is_none() {
                    Err("--out needs a value".to_string())
                } else {
                    Ok(())
                }
            }
            "--check" => {
                check = true;
                Ok(())
            }
            other => Err(format!(
                "usage: serve_load [--clients N] [--requests M] [--workers W] \
                 [--out FILE] [--check] (got '{other}')"
            )),
        };
        if let Err(err) = parsed {
            eprintln!("error: {err}");
            return ExitCode::FAILURE;
        }
    }

    // Capture the baseline before writing anything (see bench_smoke).
    let baseline = gate::newest_baseline(&["serve_mixed"]);

    let socket = std::env::temp_dir().join(format!("ccs-serve-load-{}.sock", std::process::id()));
    let socket = socket.to_string_lossy().into_owned();
    let config = ServeConfig {
        workers,
        queue_depth: 64,
        stats_every: None,
    };
    let scenarios = scenario_pool();

    let (summary, total, elapsed) = std::thread::scope(|scope| {
        let daemon = {
            let socket = socket.clone();
            scope.spawn(move || serve_unix(&socket, &config))
        };
        // Wait for the socket to come up.
        let deadline = Instant::now() + Duration::from_secs(10);
        while !std::path::Path::new(&socket).exists() {
            assert!(Instant::now() < deadline, "daemon socket never appeared");
            std::thread::sleep(Duration::from_millis(10));
        }

        let start = Instant::now();
        let outcomes: Vec<_> = (0..clients)
            .map(|c| {
                let socket = &socket;
                let scenarios = &scenarios;
                scope.spawn(move || run_client(socket, c, requests, scenarios))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();
        let elapsed = start.elapsed();

        let mut shutdown = UnixStream::connect(&socket).expect("shutdown connection");
        writeln!(shutdown, r#"{{"cmd":"shutdown"}}"#).expect("shutdown request");
        let summary = daemon.join().expect("daemon thread").expect("daemon bind");

        let mut total = ClientOutcome {
            ok: 0,
            errors: 0,
            rejected: 0,
        };
        for outcome in outcomes {
            let outcome = outcome.expect("client io");
            total.ok += outcome.ok;
            total.errors += outcome.errors;
            total.rejected += outcome.rejected;
        }
        (summary, total, elapsed)
    });

    let expected = (clients * requests) as u64;
    assert_eq!(
        total.ok + total.errors,
        expected,
        "every request must be answered"
    );
    eprintln!(
        "serve_load: {clients} clients x {requests} requests in {:.1} ms \
         ({:.0} req/s) — ok {} errors {} rejected {} \
         (daemon: completed {} errors {} panics {})",
        elapsed.as_secs_f64() * 1000.0,
        expected as f64 / elapsed.as_secs_f64(),
        total.ok,
        total.errors,
        total.rejected,
        summary.completed,
        summary.errors,
        summary.panics,
    );

    let doc = to_json(clients, requests, &total, elapsed);
    let json = serde_json::to_string_pretty(&doc).expect("results serialize");
    match &out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }

    if check {
        match baseline {
            Some((name, base)) => {
                let failures = gate::regressions(&doc, &base, &GATES);
                if failures.is_empty() {
                    eprintln!("serve-load gate: ok vs {name}");
                } else {
                    eprintln!("serve-load gate: FAILED vs {name} (>50% below baseline):");
                    for f in &failures {
                        eprintln!("  {f}");
                    }
                    return ExitCode::FAILURE;
                }
            }
            None => eprintln!("serve-load gate: no committed serve baseline, skipping"),
        }
    }
    ExitCode::SUCCESS
}
