//! CLI entry point of the experiment harness.
//!
//! Usage: `experiments [--out DIR] [ids...]`; no ids = run everything.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut out = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(dir) => out = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--list" => {
                for id in ccs_bench::exp::ALL {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                eprintln!("usage: experiments [--out DIR] [--list] [ids...]");
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids = ccs_bench::exp::ALL.iter().map(|s| s.to_string()).collect();
    }

    for id in &ids {
        println!("\n################ {id} ################");
        let started = std::time::Instant::now();
        if let Err(err) = ccs_bench::exp::run(id, &out) {
            eprintln!("experiment {id} failed: {err}");
            return ExitCode::FAILURE;
        }
        println!("({id} finished in {:.1}s)", started.elapsed().as_secs_f64());
    }
    println!("\nall results written to {}", out.display());
    ExitCode::SUCCESS
}
