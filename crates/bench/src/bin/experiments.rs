//! CLI entry point of the experiment harness.
//!
//! Usage: `experiments [--out DIR] [ids...]`; no ids = run everything.
//!
//! Every experiment also writes `<out>/<id>.telemetry.json` — a
//! `ccs-telemetry` RunReport isolating that experiment's counters and phase
//! timings (the registry is reset between experiments) — and prints a
//! one-line counter summary next to the timing line.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut out = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(dir) => out = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--list" => {
                for id in ccs_bench::exp::ALL {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                eprintln!("usage: experiments [--out DIR] [--list] [ids...]");
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids = ccs_bench::exp::ALL.iter().map(|s| s.to_string()).collect();
    }

    let registry = ccs_telemetry::global();
    registry.enable();

    for id in &ids {
        println!("\n################ {id} ################");
        registry.reset();
        let started = std::time::Instant::now();
        if let Err(err) = ccs_bench::exp::run(id, &out) {
            eprintln!("experiment {id} failed: {err}");
            return ExitCode::FAILURE;
        }
        println!("({id} finished in {:.1}s)", started.elapsed().as_secs_f64());

        let report = registry.report();
        let summary: Vec<String> = report
            .counters
            .iter()
            .filter(|(_, v)| **v > 0)
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        if !summary.is_empty() {
            println!("telemetry: {}", summary.join(" "));
        }
        let path = out.join(format!("{id}.telemetry.json"));
        if let Err(err) = std::fs::write(&path, report.to_json_pretty()) {
            eprintln!("writing {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        println!("telemetry report: {}", path.display());
    }
    println!("\nall results written to {}", out.display());
    ExitCode::SUCCESS
}
