//! `online_load` — the online-mode load suite: full event-loop runs of
//! the streaming service (arrivals, deadlines, charger tanks) with a CI
//! gate on deadline misses and throughput.
//!
//! ```text
//! online_load [--out FILE] [--check] [--iters N] [--only CELL]
//! ```
//!
//! Every cell replays one seeded request stream through [`OnlineSim`]
//! end to end, timed at 1 and 4 worker threads (the two runs must
//! produce bit-identical service outcomes — the `ccs-par` determinism
//! contract), and is emitted as a JSON document:
//!
//! ```json
//! {
//!   "schema": "ccs-bench-online/v1",
//!   "host_sentinel_ms": 3.1,
//!   "benches": {
//!     "online_ccsga_stream": {
//!       "t1_mean_ms": 42.0, "t4_mean_ms": 18.3,
//!       "items_per_s": 3100.0, "miss_rate_pct": 12.5,
//!       "served": 70, "arrivals": 80, "replans": 33
//!     }
//!   }
//! }
//! ```
//!
//! With `--check` the run fails (exit 1) when:
//!
//! * a cell's 1-thread and 4-thread outcomes diverge (determinism);
//! * the easy-stream cell misses any deadline (`online_ccsga_easy` has
//!   slack to spare — a miss there is an admission bug, not load);
//! * the contended CCSGA cell misses *more* than the FCFS baseline on
//!   the identical stream (the policy's reason to exist);
//! * against the newest committed `BENCH_*.json` covering these cells:
//!   `miss_rate_pct` grew at all, or `items_per_s` dropped more than
//!   25% (through the host-sentinel calibration).

use ccs_bench::gate::{self, Direction, Gate};
use ccs_core::online::{OnlineConfig, OnlineMetrics, OnlinePolicy, OnlineSim};
use ccs_core::prelude::*;
use ccs_wrsn::arrival::{ArrivalGenerator, ArrivalProfile, ChargeRequest};
use ccs_wrsn::scenario::{Scenario, ScenarioGenerator};
use serde_json::{Number, Value};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;

/// Cell names (disjoint from every other bench binary's families).
const CELL_NAMES: [&str; 3] = [
    "online_ccsga_easy",
    "online_ccsga_stream",
    "online_fcfs_stream",
];

/// The regression gates: misses are deterministic so any growth fails;
/// throughput is wall clock, so it gets slack and the host sentinel.
const GATES: [Gate; 2] = [
    Gate {
        field: "miss_rate_pct",
        tolerance: 0.0,
        direction: Direction::HigherIsWorse,
        zero_base_fails: true,
        host_sensitive: false,
    },
    Gate {
        field: "items_per_s",
        tolerance: 0.25,
        direction: Direction::LowerIsWorse,
        zero_base_fails: false,
        host_sensitive: true,
    },
];

struct Cell {
    t1_mean_ms: f64,
    t4_mean_ms: f64,
    items_per_s: f64,
    metrics: OnlineMetrics,
}

/// The contended workload shared by the ccsga/fcfs pair: a hotspot
/// stream over 30 devices and 4 chargers, tight enough that naive
/// dispatch visibly drops requests.
fn contended() -> (Scenario, Vec<ChargeRequest>) {
    let scenario = ScenarioGenerator::new(211)
        .devices(30)
        .chargers(4)
        .generate();
    let stream = ArrivalGenerator::new(9)
        .rate(0.3)
        .horizon(240.0)
        .slack(500.0)
        .profile(ArrivalProfile::Hotspot {
            fraction: 0.2,
            share: 0.8,
        })
        .generate(30);
    (scenario, stream)
}

fn ccsga_policy() -> OnlinePolicy {
    OnlinePolicy::Ccsga(CcsgaOptions {
        worklist: true,
        ..CcsgaOptions::default()
    })
}

/// One full event-loop run; the fingerprint covers everything the gates
/// read plus the energy ledger, so thread-count divergence cannot hide.
fn run_once(scenario: &Scenario, stream: &[ChargeRequest], policy: OnlinePolicy) -> OnlineMetrics {
    let config = OnlineConfig {
        policy,
        ..OnlineConfig::default()
    };
    OnlineSim::new(
        CcsProblem::new(scenario.clone()),
        stream.to_vec(),
        &EqualShare,
        config,
    )
    .run()
    .metrics
}

fn fingerprint(m: &OnlineMetrics) -> (usize, usize, usize, u64, u64) {
    (
        m.served,
        m.missed,
        m.replans,
        m.energy_consumed.value().to_bits(),
        m.energy_delivered.value().to_bits(),
    )
}

/// Times the run at 1 and 4 threads (mean of `iters` passes each after a
/// warmup), asserting identical outcomes across thread counts.
fn run_cell(
    name: &str,
    iters: usize,
    scenario: &Scenario,
    stream: &[ChargeRequest],
    policy: OnlinePolicy,
) -> Cell {
    let mean_at = |threads: usize| -> (f64, OnlineMetrics) {
        ccs_par::set_threads(threads);
        let metrics = run_once(scenario, stream, policy);
        let mut total = 0.0;
        for _ in 0..iters {
            let start = Instant::now();
            let again = run_once(scenario, stream, policy);
            total += start.elapsed().as_secs_f64() * 1000.0;
            assert_eq!(
                fingerprint(&again),
                fingerprint(&metrics),
                "{name}: nondeterministic run at {threads} thread(s)"
            );
        }
        (total / iters as f64, metrics)
    };
    let (t1_mean_ms, m1) = mean_at(1);
    let (t4_mean_ms, m4) = mean_at(4);
    ccs_par::set_threads(0);
    assert_eq!(
        fingerprint(&m1),
        fingerprint(&m4),
        "{name}: 1-thread and 4-thread outcomes diverged — determinism bug"
    );
    let items_per_s = m1.arrivals as f64 / (t1_mean_ms / 1000.0);
    eprintln!(
        "cell {name}: t1 {t1_mean_ms:.1} ms, t4 {t4_mean_ms:.1} ms, \
         {items_per_s:.0} req/s, miss rate {:.1}% ({}/{} served)",
        m1.miss_rate * 100.0,
        m1.served,
        m1.arrivals
    );
    Cell {
        t1_mean_ms,
        t4_mean_ms,
        items_per_s,
        metrics: m1,
    }
}

fn cells(iters: usize, only: Option<&str>) -> BTreeMap<String, Cell> {
    let mut out = BTreeMap::new();
    let wanted = |name: &str| only.is_none_or(|o| o == name);

    // Slack to spare: every request must be served. This is the
    // admission-correctness canary, not a load test.
    if wanted("online_ccsga_easy") {
        let scenario = ScenarioGenerator::new(101)
            .devices(20)
            .chargers(4)
            .generate();
        let stream = ArrivalGenerator::new(5)
            .rate(0.1)
            .horizon(200.0)
            .slack(100_000.0)
            .generate(20);
        out.insert(
            "online_ccsga_easy".to_string(),
            run_cell(
                "online_ccsga_easy",
                iters,
                &scenario,
                &stream,
                ccsga_policy(),
            ),
        );
    }

    // The contended pair: identical scenario and stream, two policies.
    if wanted("online_ccsga_stream") {
        let (scenario, stream) = contended();
        out.insert(
            "online_ccsga_stream".to_string(),
            run_cell(
                "online_ccsga_stream",
                iters,
                &scenario,
                &stream,
                ccsga_policy(),
            ),
        );
    }
    if wanted("online_fcfs_stream") {
        let (scenario, stream) = contended();
        out.insert(
            "online_fcfs_stream".to_string(),
            run_cell(
                "online_fcfs_stream",
                iters,
                &scenario,
                &stream,
                OnlinePolicy::Fcfs,
            ),
        );
    }
    out
}

fn num(x: f64) -> Value {
    Value::Number(Number::Float((x * 100.0).round() / 100.0))
}

fn to_json(results: &BTreeMap<String, Cell>) -> Value {
    let mut benches = BTreeMap::new();
    for (name, c) in results {
        let mut entry = BTreeMap::new();
        entry.insert("t1_mean_ms".to_string(), num(c.t1_mean_ms));
        entry.insert("t4_mean_ms".to_string(), num(c.t4_mean_ms));
        entry.insert("items_per_s".to_string(), num(c.items_per_s));
        entry.insert(
            "miss_rate_pct".to_string(),
            num(c.metrics.miss_rate * 100.0),
        );
        entry.insert(
            "served".to_string(),
            Value::Number(Number::PosInt(c.metrics.served as u64)),
        );
        entry.insert(
            "arrivals".to_string(),
            Value::Number(Number::PosInt(c.metrics.arrivals as u64)),
        );
        entry.insert(
            "replans".to_string(),
            Value::Number(Number::PosInt(c.metrics.replans as u64)),
        );
        benches.insert(name.clone(), Value::Object(entry));
    }
    let mut root = BTreeMap::new();
    root.insert(
        "schema".to_string(),
        Value::String("ccs-bench-online/v1".to_string()),
    );
    root.insert(
        gate::SENTINEL_FIELD.to_string(),
        num(gate::host_sentinel_ms()),
    );
    root.insert("benches".to_string(), Value::Object(benches));
    Value::Object(root)
}

/// The run's own assertions (baseline-free): the easy stream serves
/// everything, and ccsga never loses the contended stream to fcfs.
fn online_failures(results: &BTreeMap<String, Cell>) -> Vec<String> {
    let mut failures = Vec::new();
    if let Some(easy) = results.get("online_ccsga_easy") {
        if easy.metrics.missed > 0 {
            failures.push(format!(
                "online_ccsga_easy: {} miss(es) on a stream with slack to spare",
                easy.metrics.missed
            ));
        }
    }
    if let (Some(ccsga), Some(fcfs)) = (
        results.get("online_ccsga_stream"),
        results.get("online_fcfs_stream"),
    ) {
        if ccsga.metrics.missed > fcfs.metrics.missed {
            failures.push(format!(
                "online_ccsga_stream: {} miss(es) vs fcfs's {} on the identical stream",
                ccsga.metrics.missed, fcfs.metrics.missed
            ));
        }
    }
    failures
}

fn main() -> ExitCode {
    let mut out_path: Option<String> = None;
    let mut check = false;
    let mut iters = 3usize;
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next(),
            "--check" => check = true,
            "--only" => only = args.next(),
            "--iters" => match args.next().map(|v| (v.clone(), v.parse::<usize>())) {
                Some((_, Ok(n))) if n > 0 => iters = n,
                Some((raw, _)) => {
                    eprintln!("error: --iters needs a positive integer, got '{raw}'");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("error: --iters needs a value");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!(
                    "usage: online_load [--out FILE] [--check] [--iters N] \
                     [--only CELL] (got '{other}')"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    // Capture the baseline before writing anything, so `--out BENCH_9.json
    // --check` compares against the committed file, not the fresh one.
    let baseline = gate::newest_baseline(&CELL_NAMES);

    let results = cells(iters, only.as_deref());
    let doc = to_json(&results);
    let json = serde_json::to_string_pretty(&doc).expect("results serialize");

    match &out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }

    if check {
        let mut failures = online_failures(&results);
        match baseline {
            Some((name, base)) => {
                let regressions = gate::regressions(&doc, &base, &GATES);
                if regressions.is_empty() {
                    eprintln!("bench-regression gate: ok vs {name}");
                } else {
                    for r in &regressions {
                        eprintln!("  vs {name}: {r}");
                    }
                    failures.extend(regressions);
                }
            }
            None => {
                eprintln!("bench-regression gate: no committed BENCH_*.json baseline, skipping")
            }
        }
        if !failures.is_empty() {
            eprintln!("online gate: FAILED:");
            for f in &failures {
                eprintln!("  {f}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!("online gate: ok");
    }
    ExitCode::SUCCESS
}
