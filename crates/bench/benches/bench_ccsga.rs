//! Criterion micro-benchmark: CCSGA coalition-formation time
//! (supports experiments `fig9_runtime` and `fig10_convergence`).

use ccs_coalition::engine::SwitchRule;
use ccs_core::prelude::*;
use ccs_wrsn::scenario::ScenarioGenerator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn instance(n: usize) -> CcsProblem {
    CcsProblem::new(
        ScenarioGenerator::new(n as u64)
            .devices(n)
            .chargers((n / 10).max(2))
            .generate(),
    )
}

fn bench_ccsga(c: &mut Criterion) {
    let mut group = c.benchmark_group("ccsga");
    group.sample_size(10);
    for &n in &[10usize, 20, 50, 100] {
        let problem = instance(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &problem, |b, p| {
            b.iter(|| ccsga(p, &EqualShare, CcsgaOptions::default()))
        });
    }
    group.finish();
}

fn bench_switch_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("ccsga_rule");
    group.sample_size(10);
    let problem = instance(50);
    for (name, rule) in [
        ("history", SwitchRule::SelfishWithHistory),
        ("consent", SwitchRule::SelfishWithConsent),
        ("utilitarian", SwitchRule::Utilitarian),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &rule, |b, &rule| {
            b.iter(|| {
                ccsga(
                    &problem,
                    &EqualShare,
                    CcsgaOptions {
                        rule,
                        ..Default::default()
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ccsga, bench_switch_rules);
criterion_main!(benches);
