//! Criterion micro-benchmark: discrete-event testbed replays
//! (supports experiments `table2_field` and `fig12_field_breakdown`).

use ccs_core::prelude::*;
use ccs_testbed::field::field_problem;
use ccs_testbed::noise::NoiseModel;
use ccs_testbed::sim::execute;
use ccs_wrsn::scenario::ScenarioGenerator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_field_replay(c: &mut Criterion) {
    let problem = field_problem(1);
    let coop = ccsa(&problem, &EqualShare, CcsaOptions::default());
    let noise = NoiseModel::field();
    c.bench_function("testbed_replay_field", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            execute(&problem, &coop, &EqualShare, &noise, seed)
        })
    });
}

fn bench_replay_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("testbed_replay_scaling");
    let noise = NoiseModel::field();
    for &n in &[10usize, 50, 100] {
        let problem = CcsProblem::new(
            ScenarioGenerator::new(n as u64)
                .devices(n)
                .chargers((n / 10).max(2))
                .generate(),
        );
        let plan = ccsa(&problem, &EqualShare, CcsaOptions::default());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                execute(&problem, &plan, &EqualShare, &noise, seed)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_field_replay, bench_replay_scaling);
criterion_main!(benches);
