//! Criterion micro-benchmark: the exact `O(3^n)` set-partition DP
//! (supports experiment `fig8_vs_optimal`; shows why OPT stops at small n).

use ccs_core::prelude::*;
use ccs_wrsn::scenario::ScenarioGenerator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_optimal(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimal_dp");
    group.sample_size(10);
    for &n in &[6usize, 8, 10, 12] {
        let problem = CcsProblem::new(
            ScenarioGenerator::new(n as u64)
                .devices(n)
                .chargers(4)
                .generate(),
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &problem, |b, p| {
            b.iter(|| optimal(p, &EqualShare, OptimalOptions::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_noncoop(c: &mut Criterion) {
    let mut group = c.benchmark_group("noncoop");
    for &n in &[10usize, 50, 100] {
        let problem = CcsProblem::new(
            ScenarioGenerator::new(n as u64)
                .devices(n)
                .chargers(10)
                .generate(),
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &problem, |b, p| {
            b.iter(|| noncooperation(p, &EqualShare))
        });
    }
    group.finish();
}

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering_baseline");
    for &n in &[50usize, 200] {
        let problem = CcsProblem::new(
            ScenarioGenerator::new(n as u64)
                .devices(n)
                .chargers(10)
                .generate(),
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &problem, |b, p| {
            b.iter(|| clustering(p, &EqualShare, ClusterOptions::default()))
        });
    }
    group.finish();
}

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian_assignment");
    for &n in &[10usize, 50, 100] {
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| ((i * 31 + j * 17) % 97) as f64).collect())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &cost, |b, cost| {
            b.iter(|| hungarian(cost))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_optimal,
    bench_noncoop,
    bench_clustering,
    bench_hungarian
);
criterion_main!(benches);
