//! Criterion micro-benchmark: CCSA end-to-end planning time
//! (supports experiment `fig9_runtime`).

use ccs_core::prelude::*;
use ccs_wrsn::scenario::ScenarioGenerator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_ccsa(c: &mut Criterion) {
    let mut group = c.benchmark_group("ccsa");
    group.sample_size(10);
    for &n in &[10usize, 20, 50] {
        let problem = CcsProblem::new(
            ScenarioGenerator::new(n as u64)
                .devices(n)
                .chargers((n / 10).max(2))
                .generate(),
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &problem, |b, p| {
            b.iter(|| ccsa(p, &EqualShare, CcsaOptions::default()))
        });
    }
    group.finish();
}

fn bench_ccsa_no_polish(c: &mut Criterion) {
    // The pure greedy + density-search core, without the local-improvement
    // and IR-repair post-passes.
    let mut group = c.benchmark_group("ccsa_greedy_only");
    group.sample_size(10);
    let options = CcsaOptions {
        local_improvement: false,
        ir_repair: false,
        refine_gathering: false,
        ..Default::default()
    };
    for &n in &[10usize, 20, 50] {
        let problem = CcsProblem::new(
            ScenarioGenerator::new(n as u64)
                .devices(n)
                .chargers((n / 10).max(2))
                .generate(),
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &problem, |b, p| {
            b.iter(|| ccsa(p, &EqualShare, options))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ccsa, bench_ccsa_no_polish);
criterion_main!(benches);
