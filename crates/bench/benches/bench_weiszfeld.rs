//! Criterion micro-benchmark: Weiszfeld gathering-point optimization
//! (supports experiment `abl_gathering`).

use ccs_wrsn::geometry::{weighted_geometric_median, Point, WeiszfeldOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn anchors(k: usize) -> (Vec<Point>, Vec<f64>) {
    let pts = (0..k)
        .map(|i| {
            let a = i as f64 * 2.399963; // golden-angle spiral
            let r = (i as f64).sqrt() * 10.0;
            Point::new(150.0 + r * a.cos(), 150.0 + r * a.sin())
        })
        .collect();
    let weights = (0..k).map(|i| 0.05 + (i % 7) as f64 * 0.01).collect();
    (pts, weights)
}

fn bench_weiszfeld(c: &mut Criterion) {
    let mut group = c.benchmark_group("weiszfeld");
    for &k in &[5usize, 20, 100, 500] {
        let (pts, weights) = anchors(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                weighted_geometric_median(&pts, &weights, WeiszfeldOptions::default()).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_weiszfeld);
criterion_main!(benches);
