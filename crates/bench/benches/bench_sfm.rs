//! Criterion micro-benchmark: the submodular machinery under CCSA
//! (supports experiment `abl_sfm`): Fujishige–Wolfe min-norm-point SFM,
//! the exact separable fast path, and Dinkelbach density search.

use ccs_submodular::density::{min_density_mnp, min_density_separable};
use ccs_submodular::minimize::{separable_min, SeparableFn};
use ccs_submodular::mnp::{minimize, MnpOptions};
use ccs_submodular::set_fn::{CardinalityCurve, CardinalityPenalized};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bill(n: usize) -> SeparableFn {
    // Deterministic pseudo-random weights that mix signs after the penalty.
    let weights: Vec<f64> = (0..n)
        .map(|i| ((i * 2654435761) % 97) as f64 / 10.0)
        .collect();
    SeparableFn::new(weights, 25.0, CardinalityCurve::Sqrt, 3.0)
}

fn bench_mnp(c: &mut Criterion) {
    let mut group = c.benchmark_group("sfm_min_norm_point");
    for &n in &[10usize, 20, 40, 80] {
        let f = CardinalityPenalized::new(bill(n), 4.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &f, |b, f| {
            b.iter(|| minimize(f, MnpOptions::default()))
        });
    }
    group.finish();
}

fn bench_separable_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("sfm_separable_exact");
    for &n in &[10usize, 100, 1000] {
        let f = bill(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &f, |b, f| {
            b.iter(|| separable_min(f, 4.0))
        });
    }
    group.finish();
}

fn bench_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("density_search");
    let f = bill(40);
    group.bench_function("dinkelbach_separable_40", |b| {
        b.iter(|| min_density_separable(&f).unwrap())
    });
    group.bench_function("dinkelbach_mnp_40", |b| {
        b.iter(|| min_density_mnp(&f, MnpOptions::default()).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_mnp, bench_separable_exact, bench_density);
criterion_main!(benches);
