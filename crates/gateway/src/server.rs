//! The gateway engine: accept loop, tenant binding, sharded worker pools,
//! batching, and the stats surface.
//!
//! ```text
//!  TCP accept ─▶ connection thread ─▶ resolve tenant ─▶ rate limit
//!                      │                                   │
//!                      │            shard = scenario hash % N
//!                      │                                   ▼
//!                      │        ┌──────── AdmissionQueue[shard] ────────┐
//!                      │        ▼                                       ▼
//!                      │   shard workers … (tenant's cache, serve engine)
//!                      │        │
//!                      ◀── mpsc reply ──┘
//!                      ▼
//!               HTTP response (keep-alive)
//! ```
//!
//! Sharding by scenario hash sends every request for one scenario to the
//! same worker pool, so a burst of requests against one scenario builds
//! its `ProblemTables` once and then rides the tenant cache, while other
//! scenarios proceed on other shards. `/v1/batch` goes further: the whole
//! group runs back-to-back on one worker, amortizing cache lookups too.
//!
//! Plan responses are rendered by the same [`ccs_serve::protocol`]
//! functions the JSONL daemon uses, so a `/v1/plan` body is byte-identical
//! to the daemon's response line — and its `result.text` to `ccs plan`
//! stdout.

use crate::http::{read_request, write_response, HttpRequest, ReadOutcome};
use crate::tenant::{ResolveError, Tenant, TenantRegistry, Tier};
use ccs_serve::cache::DEFAULT_CACHE_BYTES;
use ccs_serve::engine;
use ccs_serve::protocol::{err_response, ok_response, ErrorKind, ServeError};
use ccs_serve::queue::{AdmissionQueue, AdmitError};
use ccs_serve::scenario_hash;
use ccs_serve::ServeObs;
use ccs_telemetry::{CounterFamily, HistogramFamily};
use serde::value::{Number, Value};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Version tag of the `/v1/stats` payload.
pub const GATEWAY_STATS_SCHEMA: &str = "ccs-gateway-stats/v1";

/// Gateway tuning knobs.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address, e.g. `127.0.0.1:7077` (`:0` = ephemeral port).
    pub addr: String,
    /// Worker-pool shards (scenario hash space partitions). `0` = auto:
    /// half the machine's parallelism, clamped to `[1, 4]`.
    pub shards: usize,
    /// Worker threads per shard.
    pub workers_per_shard: usize,
    /// Queued-request cap per shard (beyond it: `429`).
    pub queue_depth: usize,
    /// Cap on one request body.
    pub max_body_bytes: usize,
    /// Cap on one `/v1/batch` request's item count.
    pub batch_max: usize,
    /// Byte budget of each tenant's private cache.
    pub cache_bytes: usize,
    /// Default rate-limit tier for self-declared tenants
    /// (`rate <= 0` = unlimited).
    pub rate: f64,
    /// Default burst capacity.
    pub burst: f64,
    /// Optional tenants file mapping bearer tokens to named tenants and
    /// their tiers (see [`TenantRegistry::load_tokens`]).
    pub tenants_file: Option<String>,
    /// Optional admin token gating `/v1/shutdown` (overrides the tenants
    /// file's `admin_token`; see [`TenantRegistry::authorize_admin`]).
    pub admin_token: Option<String>,
    /// Cap on distinct live tenants.
    pub max_tenants: usize,
    /// Idle keep-alive connections are dropped after this long.
    pub idle_timeout: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:7077".to_string(),
            shards: 0,
            workers_per_shard: 1,
            queue_depth: 64,
            max_body_bytes: 4 << 20,
            batch_max: 64,
            cache_bytes: DEFAULT_CACHE_BYTES / 8,
            rate: 0.0,
            burst: 0.0,
            tenants_file: None,
            admin_token: None,
            max_tenants: 256,
            idle_timeout: Duration::from_secs(5),
        }
    }
}

impl GatewayConfig {
    fn resolved_shards(&self) -> usize {
        if self.shards > 0 {
            return self.shards;
        }
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        (cores / 2).clamp(1, 4)
    }
}

/// Final counters of one gateway run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewaySummary {
    /// HTTP requests served (all routes).
    pub requests: u64,
    /// Plan-route items answered `ok`.
    pub completed: u64,
    /// Plan-route items answered with an error.
    pub errors: u64,
    /// Items rejected by queue backpressure or drain.
    pub rejected: u64,
    /// Requests refused by a tenant's rate limit.
    pub rate_limited: u64,
    /// `/v1/batch` requests served.
    pub batches: u64,
    /// Items carried by those batches.
    pub batch_items: u64,
}

/// One unit of worker work: a group of request bodies for one tenant,
/// executed back-to-back on one worker (the batching amortization).
struct GwJob {
    tenant: Arc<Tenant>,
    items: Vec<(usize, Value)>,
    reply: mpsc::Sender<(usize, Result<Value, ServeError>)>,
}

struct GatewayState {
    registry: TenantRegistry,
    shards: Vec<AdmissionQueue<GwJob>>,
    obs: ServeObs,
    draining: AtomicBool,
    // Global counters (always-on atomics via the telemetry family slot).
    totals: CounterFamily,
    tenant_requests: CounterFamily,
    tenant_completed: CounterFamily,
    tenant_errors: CounterFamily,
    tenant_rate_limited: CounterFamily,
    route_latency: HistogramFamily,
    max_body_bytes: usize,
    batch_max: usize,
    idle_timeout: Duration,
}

fn status_of(kind: ErrorKind) -> u16 {
    match kind {
        ErrorKind::BadRequest => 400,
        ErrorKind::Rejected => 429,
        ErrorKind::Failed => 422,
        ErrorKind::Internal => 500,
        ErrorKind::Expired => 504,
    }
}

/// A response value mirroring [`ok_response`] for batch items.
fn ok_value(result: Value) -> Value {
    let mut map = BTreeMap::new();
    map.insert("ok".to_string(), Value::Bool(true));
    map.insert("result".to_string(), result);
    Value::Object(map)
}

/// A response value mirroring [`err_response`] for batch items.
fn err_value(error: &ServeError) -> Value {
    let mut detail = BTreeMap::new();
    detail.insert(
        "kind".to_string(),
        Value::String(error.kind.name().to_string()),
    );
    detail.insert("message".to_string(), Value::String(error.message.clone()));
    let mut map = BTreeMap::new();
    map.insert("error".to_string(), Value::Object(detail));
    map.insert("ok".to_string(), Value::Bool(false));
    Value::Object(map)
}

impl GatewayState {
    fn new(config: &GatewayConfig) -> std::io::Result<Self> {
        let default_tier = Tier {
            rate: config.rate,
            burst: if config.burst > 0.0 {
                config.burst
            } else {
                config.rate.max(1.0)
            },
        };
        let mut registry =
            TenantRegistry::new(config.cache_bytes, default_tier, config.max_tenants);
        if let Some(path) = &config.tenants_file {
            let text = std::fs::read_to_string(path)?;
            let value: Value = serde_json::from_str(&text).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("tenants file {path}: {e}"),
                )
            })?;
            registry.load_tokens(&value).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("tenants file {path}: {e}"),
                )
            })?;
        }
        if let Some(token) = &config.admin_token {
            registry.set_admin_token(token.clone());
        }
        let shards = (0..config.resolved_shards())
            .map(|_| AdmissionQueue::new(config.queue_depth))
            .collect();
        Ok(GatewayState {
            registry,
            shards,
            obs: ServeObs::new(None, None),
            draining: AtomicBool::new(false),
            totals: CounterFamily::new(16),
            tenant_requests: CounterFamily::new(config.max_tenants + 1),
            tenant_completed: CounterFamily::new(config.max_tenants + 1),
            tenant_errors: CounterFamily::new(config.max_tenants + 1),
            tenant_rate_limited: CounterFamily::new(config.max_tenants + 1),
            route_latency: HistogramFamily::new(16),
            max_body_bytes: config.max_body_bytes,
            batch_max: config.batch_max,
            idle_timeout: config.idle_timeout,
        })
    }

    fn shard_of(&self, body: &Value) -> usize {
        let hash = match body.field("scenario") {
            Value::Null => 0,
            value => scenario_hash(value),
        };
        (hash % self.shards.len() as u64) as usize
    }

    /// Executes one worker job: every item of the group, back-to-back,
    /// against the owning tenant's cache.
    fn run_job(&self, job: GwJob) {
        for (index, body) in job.items {
            let mut trace = self.obs.start();
            let cmd = match body.field("cmd") {
                Value::Null => "plan".to_string(),
                Value::String(s) => s.clone(),
                other => {
                    let err = ServeError::bad_request(format!(
                        "'cmd' must be a string, got {}",
                        other.kind()
                    ));
                    let _ = job.reply.send((index, Err(err)));
                    continue;
                }
            };
            let outcome = engine::execute(&job.tenant.cache, &cmd, &body, &mut trace);
            let status = match &outcome {
                Ok(_) => "ok",
                Err(e) => e.kind.name(),
            };
            match &outcome {
                Ok(handled) => {
                    self.totals.get("completed").incr();
                    self.tenant_completed.get(job.tenant.name()).incr();
                    if handled.scenario_hit == Some(true) {
                        self.totals.get("scenario_hits").incr();
                    }
                    if handled.plan_hit == Some(true) {
                        self.totals.get("plan_hits").incr();
                    }
                }
                Err(_) => {
                    self.totals.get("errors").incr();
                    self.tenant_errors.get(job.tenant.name()).incr();
                }
            }
            self.obs.finish(&trace, &cmd, status);
            let _ = job
                .reply
                .send((index, outcome.map(|handled| handled.result)));
        }
    }

    /// Dispatches `items` for `tenant` across the shards and collects the
    /// per-item outcomes in request order.
    fn dispatch(&self, tenant: &Arc<Tenant>, items: Vec<Value>) -> Vec<Result<Value, ServeError>> {
        let total = items.len();
        let (reply, replies) = mpsc::channel();
        let mut groups: BTreeMap<usize, Vec<(usize, Value)>> = BTreeMap::new();
        for (index, body) in items.into_iter().enumerate() {
            groups
                .entry(self.shard_of(&body))
                .or_default()
                .push((index, body));
        }
        let mut results: Vec<Option<Result<Value, ServeError>>> =
            (0..total).map(|_| None).collect();
        let mut pending = 0usize;
        for (shard, group) in groups {
            let indexes: Vec<usize> = group.iter().map(|(i, _)| *i).collect();
            let job = GwJob {
                tenant: Arc::clone(tenant),
                items: group,
                reply: reply.clone(),
            };
            match self.shards[shard].try_push(job) {
                Ok(()) => pending += indexes.len(),
                Err(reason) => {
                    let err = match reason {
                        AdmitError::Full { depth } => ServeError::rejected(format!(
                            "shard {shard} queue full (depth {depth})"
                        )),
                        AdmitError::Draining => ServeError::rejected("draining"),
                    };
                    self.totals.get("rejected").add(indexes.len() as u64);
                    for index in indexes {
                        results[index] = Some(Err(err.clone()));
                    }
                }
            }
        }
        drop(reply);
        for _ in 0..pending {
            // Workers always answer every admitted item (the engine
            // converts panics to errors), so this cannot deadlock; the
            // Err arm covers workers lost to a poisoned process state.
            match replies.recv() {
                Ok((index, outcome)) => results[index] = Some(outcome),
                Err(_) => break,
            }
        }
        results
            .into_iter()
            .map(|r| r.unwrap_or_else(|| Err(ServeError::internal("worker reply lost"))))
            .collect()
    }

    /// Binds the request to a tenant and spends its rate-limit token.
    fn admit(&self, req: &HttpRequest) -> Result<Arc<Tenant>, (u16, String)> {
        let tenant = match self
            .registry
            .resolve(req.header("authorization"), req.header("x-tenant"))
        {
            Ok(tenant) => tenant,
            Err(ResolveError::UnknownToken) => {
                let err = ServeError::bad_request("unknown bearer token");
                return Err((401, err_response(&Value::Null, &err)));
            }
            Err(ResolveError::BadName(name)) => {
                let err = ServeError::bad_request(format!(
                    "invalid X-Tenant {name:?}: want 1-64 chars of [A-Za-z0-9_-]"
                ));
                return Err((400, err_response(&Value::Null, &err)));
            }
            Err(ResolveError::ReservedName(name)) => {
                let err =
                    ServeError::bad_request(format!("tenant {name:?} requires its bearer token"));
                return Err((403, err_response(&Value::Null, &err)));
            }
            Err(ResolveError::TooManyTenants) => {
                let err = ServeError::rejected("tenant capacity reached");
                return Err((429, err_response(&Value::Null, &err)));
            }
        };
        self.tenant_requests.get(tenant.name()).incr();
        if !tenant.admit() {
            self.totals.get("rate_limited").incr();
            self.tenant_rate_limited.get(tenant.name()).incr();
            let err = ServeError::rejected(format!("tenant {} rate limit exceeded", tenant.name()));
            return Err((429, err_response(&Value::Null, &err)));
        }
        Ok(tenant)
    }

    fn parse_body(&self, req: &HttpRequest) -> Result<Value, (u16, String)> {
        let text = std::str::from_utf8(&req.body).map_err(|_| {
            let err = ServeError::bad_request("body is not valid UTF-8");
            (400, err_response(&Value::Null, &err))
        })?;
        serde_json::from_str(text).map_err(|e| {
            let err = ServeError::bad_request(format!("malformed body: {e}"));
            (400, err_response(&Value::Null, &err))
        })
    }

    /// `POST /v1/plan` — one request body, JSONL-daemon semantics.
    fn plan_route(&self, req: &HttpRequest) -> (u16, String) {
        let tenant = match self.admit(req) {
            Ok(tenant) => tenant,
            Err(refusal) => return refusal,
        };
        let body = match self.parse_body(req) {
            Ok(body) => body,
            Err(refusal) => return refusal,
        };
        if body.as_object().is_none() {
            let err = ServeError::bad_request(format!(
                "request must be a JSON object, got {}",
                body.kind()
            ));
            return (400, err_response(&Value::Null, &err));
        }
        let id = body.field("id").clone();
        let outcome = self.dispatch(&tenant, vec![body]).pop().expect("one item");
        match outcome {
            Ok(result) => (200, ok_response(&id, result)),
            Err(err) => (status_of(err.kind), err_response(&id, &err)),
        }
    }

    /// `POST /v1/batch` — many plan bodies in one HTTP request, grouped by
    /// scenario so each group amortizes one tables build.
    fn batch_route(&self, req: &HttpRequest) -> (u16, String) {
        let tenant = match self.admit(req) {
            Ok(tenant) => tenant,
            Err(refusal) => return refusal,
        };
        let body = match self.parse_body(req) {
            Ok(body) => body,
            Err(refusal) => return refusal,
        };
        let id = body.field("id").clone();
        let Value::Array(items) = body.field("requests") else {
            let err = ServeError::bad_request("missing 'requests' array");
            return (400, err_response(&id, &err));
        };
        if items.is_empty() || items.len() > self.batch_max {
            let err = ServeError::bad_request(format!(
                "'requests' must carry 1..={} items, got {}",
                self.batch_max,
                items.len()
            ));
            return (400, err_response(&id, &err));
        }
        self.totals.get("batches").incr();
        self.totals.get("batch_items").add(items.len() as u64);
        let outcomes = self.dispatch(&tenant, items.clone());
        let rendered: Vec<Value> = outcomes
            .into_iter()
            .map(|outcome| match outcome {
                Ok(result) => ok_value(result),
                Err(err) => err_value(&err),
            })
            .collect();
        (200, ok_response(&id, Value::Array(rendered)))
    }

    fn stats_route(&self) -> (u16, String) {
        let uint = |v: u64| Value::Number(Number::PosInt(v));
        let counter = |name: &str| uint(self.totals.get(name).get());
        let mut requests = BTreeMap::new();
        requests.insert("batch_items".to_string(), counter("batch_items"));
        requests.insert("batches".to_string(), counter("batches"));
        requests.insert("completed".to_string(), counter("completed"));
        requests.insert("errors".to_string(), counter("errors"));
        requests.insert("http".to_string(), counter("http"));
        requests.insert("plan_hits".to_string(), counter("plan_hits"));
        requests.insert("rate_limited".to_string(), counter("rate_limited"));
        requests.insert("rejected".to_string(), counter("rejected"));
        requests.insert("scenario_hits".to_string(), counter("scenario_hits"));

        let mut queue = BTreeMap::new();
        queue.insert("shards".to_string(), uint(self.shards.len() as u64));
        queue.insert(
            "depth".to_string(),
            uint(self.shards.iter().map(|s| s.len() as u64).sum()),
        );
        queue.insert(
            "capacity".to_string(),
            uint(self.shards.iter().map(|s| s.depth() as u64).sum()),
        );

        let mut tenants = BTreeMap::new();
        for tenant in self.registry.snapshot() {
            let mut cache = BTreeMap::new();
            cache.insert("bytes".to_string(), uint(tenant.cache.bytes() as u64));
            cache.insert("evictions".to_string(), uint(tenant.cache.evictions()));
            cache.insert("hits".to_string(), uint(tenant.cache.hits()));
            cache.insert("misses".to_string(), uint(tenant.cache.misses()));
            cache.insert(
                "plans".to_string(),
                uint(tenant.cache.plans_cached() as u64),
            );
            cache.insert(
                "scenarios".to_string(),
                uint(tenant.cache.scenarios() as u64),
            );
            let mut entry = BTreeMap::new();
            entry.insert("cache".to_string(), Value::Object(cache));
            entry.insert(
                "completed".to_string(),
                uint(self.tenant_completed.get(tenant.name()).get()),
            );
            entry.insert(
                "errors".to_string(),
                uint(self.tenant_errors.get(tenant.name()).get()),
            );
            entry.insert(
                "rate_limited".to_string(),
                uint(self.tenant_rate_limited.get(tenant.name()).get()),
            );
            entry.insert(
                "requests".to_string(),
                uint(self.tenant_requests.get(tenant.name()).get()),
            );
            tenants.insert(tenant.name().to_string(), Value::Object(entry));
        }

        let mut http_latency = BTreeMap::new();
        for (route, hist) in self.route_latency.snapshot() {
            http_latency.insert(route, ccs_serve::obs::latency_entry(&hist.snapshot()));
        }

        let mut map = BTreeMap::new();
        map.insert("http_latency_us".to_string(), Value::Object(http_latency));
        map.insert("latency_us".to_string(), self.obs.latency_value());
        map.insert("queue".to_string(), Value::Object(queue));
        map.insert("requests".to_string(), Value::Object(requests));
        map.insert(
            "schema".to_string(),
            Value::String(GATEWAY_STATS_SCHEMA.to_string()),
        );
        map.insert("tenants".to_string(), Value::Object(tenants));
        map.insert(
            "uptime_s".to_string(),
            Value::Number(Number::Float(self.obs.uptime_s())),
        );
        (200, ok_response(&Value::Null, Value::Object(map)))
    }

    /// Routes one request. Returns `(status, body, close_after)`.
    fn route(&self, req: &HttpRequest) -> (u16, String, bool) {
        self.totals.get("http").incr();
        let started = Instant::now();
        let (route_label, (status, body), close) = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => {
                let mut map = BTreeMap::new();
                map.insert("ok".to_string(), Value::Bool(true));
                (
                    "healthz",
                    (200, ok_response(&Value::Null, Value::Object(map))),
                    false,
                )
            }
            ("GET", "/v1/stats") => ("stats", self.stats_route(), false),
            ("POST", "/v1/plan") => ("plan", self.plan_route(req), false),
            ("POST", "/v1/batch") => ("batch", self.batch_route(req), false),
            ("POST", "/v1/shutdown") => {
                // Draining kills every tenant's service at once, so it
                // demands the strongest credential configured — never the
                // anonymous default that the plan routes are happy with.
                if self.registry.authorize_admin(req.header("authorization")) {
                    self.draining.store(true, Ordering::Relaxed);
                    let mut map = BTreeMap::new();
                    map.insert("draining".to_string(), Value::Bool(true));
                    (
                        "shutdown",
                        (200, ok_response(&Value::Null, Value::Object(map))),
                        true,
                    )
                } else {
                    let err =
                        ServeError::bad_request("shutdown requires an authorized bearer token");
                    ("shutdown", (401, err_response(&Value::Null, &err)), false)
                }
            }
            _ => {
                let err = ServeError::bad_request(format!("no route {} {}", req.method, req.path));
                ("none", (404, err_response(&Value::Null, &err)), false)
            }
        };
        self.route_latency
            .get(route_label)
            .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        (status, body, close)
    }

    fn summary(&self) -> GatewaySummary {
        GatewaySummary {
            requests: self.totals.get("http").get(),
            completed: self.totals.get("completed").get(),
            errors: self.totals.get("errors").get(),
            rejected: self.totals.get("rejected").get(),
            rate_limited: self.totals.get("rate_limited").get(),
            batches: self.totals.get("batches").get(),
            batch_items: self.totals.get("batch_items").get(),
        }
    }
}

fn handle_connection(state: &GatewayState, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(state.idle_timeout));
    // One buffered write per response + TCP_NODELAY: without these, each
    // formatted fragment becomes its own small segment and Nagle stalls
    // every keep-alive round trip on the peer's delayed ACK (~40 ms).
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut out = std::io::BufWriter::new(write_half);
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader, state.max_body_bytes) {
            // Idle past the timeout (or transport error): drop the
            // connection, so drain never waits on a silent client.
            Err(_) | Ok(ReadOutcome::Closed) => break,
            Ok(ReadOutcome::Bad(message)) => {
                // The stream cannot be resynchronized after a framing
                // error; answer and close.
                let err = ServeError::bad_request(message);
                let body = err_response(&Value::Null, &err);
                let _ = write_response(&mut out, 400, &body, false);
                break;
            }
            Ok(ReadOutcome::Request(req)) => {
                let (status, body, close_after) = state.route(&req);
                let keep =
                    req.keep_alive() && !close_after && !state.draining.load(Ordering::Relaxed);
                if write_response(&mut out, status, &body, keep).is_err() || !keep {
                    break;
                }
            }
        }
    }
}

/// Binds `config.addr` and serves until a `/v1/shutdown` drains the
/// gateway. See [`run_gateway_on`] for the listener-injected variant.
///
/// # Errors
///
/// Binding the listener, or an invalid tenants file.
pub fn run_gateway(config: &GatewayConfig) -> std::io::Result<GatewaySummary> {
    let listener = TcpListener::bind(&config.addr)?;
    eprintln!(
        "gateway: listening on {}",
        listener
            .local_addr()
            .map_or_else(|_| config.addr.clone(), |a| a.to_string())
    );
    run_gateway_on(listener, config)
}

/// Serves an already-bound listener (tests bind port 0 and read
/// `local_addr` first). Returns after a `/v1/shutdown` request has
/// drained all shards.
///
/// # Errors
///
/// Configuring the listener, or an invalid tenants file.
pub fn run_gateway_on(
    listener: TcpListener,
    config: &GatewayConfig,
) -> std::io::Result<GatewaySummary> {
    listener.set_nonblocking(true)?;
    let state = GatewayState::new(config)?;
    let state_ref = &state;
    let workers_per_shard = config.workers_per_shard.max(1);
    std::thread::scope(|scope| {
        for shard in &state_ref.shards {
            for _ in 0..workers_per_shard {
                scope.spawn(move || {
                    while let Some(job) = shard.pop() {
                        state_ref.run_job(job);
                    }
                });
            }
        }
        while !state_ref.draining.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    scope.spawn(move || handle_connection(state_ref, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => break,
            }
        }
        for shard in &state_ref.shards {
            shard.close();
        }
        // Scope exit joins the workers (the drain) and the connection
        // threads (bounded by the idle timeout).
    });
    let summary = state.summary();
    eprintln!(
        "gateway: drained — requests={} completed={} errors={} rejected={} \
         rate_limited={} batches={} batch_items={}",
        summary.requests,
        summary.completed,
        summary.errors,
        summary.rejected,
        summary.rate_limited,
        summary.batches,
        summary.batch_items,
    );
    Ok(summary)
}
