//! A minimal vendored HTTP/1.1 shim — exactly the subset the gateway
//! speaks, nothing more.
//!
//! Supported: request line + headers, `Content-Length` bodies, keep-alive
//! (HTTP/1.1 default, `Connection: close` honored, HTTP/1.0 opt-in via
//! `Connection: keep-alive`). Deliberately unsupported: chunked transfer
//! encoding, trailers, upgrades, continuation lines — a request using any
//! of them is answered `400` and the connection closed. Every dimension of
//! a request is capped (start-line bytes, header bytes, header count, body
//! bytes) so a hostile client cannot balloon gateway memory; the caps
//! reuse the byte-capped line reader the JSONL daemon hardened
//! ([`ccs_serve::server::read_line_capped`]).

use ccs_serve::server::{read_line_capped, LineRead};
use std::io::{BufRead, Write};

/// Cap on the request line and on each header line.
pub const MAX_START_LINE_BYTES: usize = 8 << 10;

/// Cap on the number of headers in one request.
pub const MAX_HEADERS: usize = 64;

/// One parsed request.
pub struct HttpRequest {
    /// Uppercase method token as sent (`GET`, `POST`, …).
    pub method: String,
    /// The request target, query string included, undecoded.
    pub path: String,
    /// Headers in arrival order; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The body (empty without `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the request was HTTP/1.1 (drives the keep-alive default).
    pub http11: bool,
}

impl HttpRequest {
    /// The first value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after the response.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Outcome of reading one request off a connection.
pub enum ReadOutcome {
    /// A complete, well-formed request.
    Request(HttpRequest),
    /// Clean EOF before any request bytes — the client hung up.
    Closed,
    /// A protocol violation; the message is for the `400` body. The
    /// stream cannot be resynchronized, so the caller must close it.
    Bad(String),
}

fn header_line<R: BufRead>(reader: &mut R) -> std::io::Result<Result<Option<String>, String>> {
    Ok(match read_line_capped(reader, MAX_START_LINE_BYTES)? {
        LineRead::Eof => Err("connection closed mid-request".to_string()),
        LineRead::TooLong(bytes) => Err(format!(
            "header line of {bytes} bytes exceeds the {MAX_START_LINE_BYTES}-byte cap"
        )),
        LineRead::Line(line) => {
            let line = line.strip_suffix('\r').map(str::to_string).unwrap_or(line);
            if line.is_empty() {
                Ok(None)
            } else {
                Ok(Some(line))
            }
        }
    })
}

/// Reads and parses one request, enforcing every cap. Bodies larger than
/// `max_body_bytes` are refused without being read.
///
/// # Errors
///
/// Transport-level io errors only (timeouts included); protocol
/// violations come back as [`ReadOutcome::Bad`].
pub fn read_request<R: BufRead>(
    reader: &mut R,
    max_body_bytes: usize,
) -> std::io::Result<ReadOutcome> {
    // Request line. EOF here (and only here) is a clean close.
    let start = match read_line_capped(reader, MAX_START_LINE_BYTES)? {
        LineRead::Eof => return Ok(ReadOutcome::Closed),
        LineRead::TooLong(bytes) => {
            return Ok(ReadOutcome::Bad(format!(
                "request line of {bytes} bytes exceeds the {MAX_START_LINE_BYTES}-byte cap"
            )))
        }
        LineRead::Line(line) => {
            let trimmed = line.strip_suffix('\r').map(str::to_string).unwrap_or(line);
            if trimmed.is_empty() {
                return Ok(ReadOutcome::Closed);
            }
            trimmed
        }
    };
    let mut parts = start.split_whitespace();
    let (Some(method), Some(path), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Ok(ReadOutcome::Bad(format!(
            "malformed request line: {start:?}"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(ReadOutcome::Bad(format!("unsupported version {version:?}")));
    }
    let http11 = version == "HTTP/1.1";

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        match header_line(reader)? {
            Err(msg) => return Ok(ReadOutcome::Bad(msg)),
            Ok(None) => break,
            Ok(Some(line)) => {
                if headers.len() >= MAX_HEADERS {
                    return Ok(ReadOutcome::Bad(format!("more than {MAX_HEADERS} headers")));
                }
                let Some((name, value)) = line.split_once(':') else {
                    return Ok(ReadOutcome::Bad(format!("malformed header: {line:?}")));
                };
                if name.is_empty() || name.contains(' ') {
                    return Ok(ReadOutcome::Bad(format!("malformed header name: {name:?}")));
                }
                headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
            }
        }
    }

    let mut request = HttpRequest {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
        http11,
    };
    if request.header("transfer-encoding").is_some() {
        return Ok(ReadOutcome::Bad(
            "transfer-encoding is not supported; send content-length".to_string(),
        ));
    }
    if let Some(raw) = request.header("content-length") {
        let Ok(length) = raw.parse::<usize>() else {
            return Ok(ReadOutcome::Bad(format!("invalid content-length {raw:?}")));
        };
        if length > max_body_bytes {
            return Ok(ReadOutcome::Bad(format!(
                "body of {length} bytes exceeds the {max_body_bytes}-byte cap"
            )));
        }
        let mut body = vec![0u8; length];
        if let Err(e) = reader.read_exact(&mut body) {
            return Ok(if e.kind() == std::io::ErrorKind::UnexpectedEof {
                ReadOutcome::Bad(format!(
                    "content-length mismatch: declared {length} bytes, stream ended early"
                ))
            } else {
                return Err(e);
            });
        }
        request.body = body;
    }
    Ok(ReadOutcome::Request(request))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

/// Writes one JSON response, with explicit framing so keep-alive works.
///
/// # Errors
///
/// Io errors writing to the stream (the caller drops the connection).
pub fn write_response(
    out: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        out,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{}",
        status,
        reason(status),
        body.len(),
        connection,
        body
    )?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read(raw: &str) -> ReadOutcome {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()), 1 << 20).unwrap()
    }

    #[test]
    fn parses_a_post_with_body_and_keep_alive() {
        let raw =
            "POST /v1/plan HTTP/1.1\r\nHost: x\r\nX-Tenant: acme\r\nContent-Length: 4\r\n\r\nabcd";
        let ReadOutcome::Request(req) = read(raw) else {
            panic!("expected a request");
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/plan");
        assert_eq!(req.header("x-tenant"), Some("acme"));
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive(), "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let ReadOutcome::Request(req) = read("GET / HTTP/1.1\r\nConnection: close\r\n\r\n") else {
            panic!("expected a request");
        };
        assert!(!req.keep_alive());
        let ReadOutcome::Request(req) = read("GET / HTTP/1.0\r\n\r\n") else {
            panic!("expected a request");
        };
        assert!(!req.keep_alive(), "HTTP/1.0 defaults to close");
    }

    #[test]
    fn malformed_inputs_are_bad_not_errors() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET / SPDY/3\r\n\r\n",
            "GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "GET / HTTP/1.1\r\nContent-Length: wat\r\n\r\n",
            "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            assert!(matches!(read(raw), ReadOutcome::Bad(_)), "raw {raw:?}");
        }
    }

    #[test]
    fn short_body_is_a_content_length_mismatch() {
        let ReadOutcome::Bad(msg) = read("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc") else {
            panic!("expected Bad");
        };
        assert!(msg.contains("content-length mismatch"), "{msg}");
    }

    #[test]
    fn oversized_body_is_refused_without_reading_it() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        let ReadOutcome::Bad(msg) =
            read_request(&mut Cursor::new(raw.as_bytes().to_vec()), 1024).unwrap()
        else {
            panic!("expected Bad");
        };
        assert!(msg.contains("exceeds the 1024-byte cap"), "{msg}");
    }

    #[test]
    fn clean_eof_is_closed() {
        assert!(matches!(read(""), ReadOutcome::Closed));
    }

    #[test]
    fn responses_frame_with_content_length() {
        let mut out = Vec::new();
        write_response(&mut out, 200, r#"{"ok":true}"#, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"), "{text}");
    }
}
