//! # ccs-gateway — the CCS scheduling service as a multi-tenant HTTP API
//!
//! `ccs gateway` fronts the [`ccs_serve`] engine with a plain HTTP/1.1
//! server on `std::net::TcpListener` (no external HTTP dependency — see
//! [`http`] for the vendored shim and its deliberate scope):
//!
//! * `POST /v1/plan` — one JSONL-daemon request body; the response body is
//!   byte-identical to the daemon's response line (and its `result.text`
//!   to `ccs plan` stdout).
//! * `POST /v1/batch` — many plan bodies in one request, grouped by
//!   scenario hash so each group amortizes one `ProblemTables` build.
//! * `GET /v1/stats` — versioned per-tenant counters, cache sizes, queue
//!   depths, and latency histograms (`ccs-gateway-stats/v1`).
//! * `GET /healthz` — liveness; `POST /v1/shutdown` — drain and exit
//!   (authenticated: the admin token when one is configured, else any
//!   tenants-file token; open only on a credential-free gateway).
//!
//! **Tenancy** is the organizing principle ([`tenant`]): every tenant gets
//! a private byte-budgeted plan cache (isolation: one tenant's eviction
//! pressure cannot evict another's entries), a rate-limit tier, and its
//! own stats section. Identity comes from `Authorization: Bearer` tokens
//! (named tenants from a tenants file; those names are reserved from
//! self-declaration) or the self-service `X-Tenant` header; headerless
//! requests share the default tenant at the default tier.
//!
//! **Scheduling** reuses the serve crate's hardened pieces: bounded
//! [`ccs_serve::AdmissionQueue`]s (one per shard, sharded by scenario
//! hash), the panic-isolating [`ccs_serve::engine`], and byte-capped line
//! reads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod server;
pub mod tenant;

pub use http::{read_request, write_response, HttpRequest, ReadOutcome};
pub use server::{
    run_gateway, run_gateway_on, GatewayConfig, GatewaySummary, GATEWAY_STATS_SCHEMA,
};
pub use tenant::{Tenant, TenantRegistry, Tier, DEFAULT_TENANT};

/// One-stop import for gateway embedders and the CLI.
pub mod prelude {
    pub use crate::server::{run_gateway, run_gateway_on, GatewayConfig, GatewaySummary};
    pub use crate::tenant::{Tier, DEFAULT_TENANT};
}
