//! Tenancy: namespaced caches, admission tiers, and identity resolution.
//!
//! A tenant is the unit of isolation in the gateway: each gets its own
//! byte-budgeted [`PlanCache`] (one tenant's eviction pressure never
//! evicts another's entries) and its own token-bucket rate limit. Identity
//! comes from `Authorization: Bearer <token>` (mapped to a named tenant
//! with its configured tier via the tenants file) or the `X-Tenant` header
//! (self-declared, default tier); requests carrying neither land on the
//! [`DEFAULT_TENANT`] at the default tier. Unknown bearer tokens are
//! refused — a typo'd token must not silently create a fresh tenant with
//! a fresh quota — and names configured in the tenants file are
//! *reserved*: a self-declared `X-Tenant` naming one is refused rather
//! than handed that tenant's cache and rate bucket without the token.
//!
//! Tenant names are client-controlled, so the registry caps how many
//! distinct tenants exist; past the cap, new names are refused rather
//! than growing gateway memory without bound.

use ccs_serve::lock_unpoisoned;
use ccs_serve::PlanCache;
use serde::value::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The tenant serving requests that carry no identity.
pub const DEFAULT_TENANT: &str = "default";

/// Cap on a tenant name's length (see [`valid_name`]).
pub const MAX_TENANT_NAME: usize = 64;

/// A rate-limit tier: a token bucket refilled at `rate` requests/second
/// with capacity `burst`. `rate <= 0` means unlimited.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tier {
    /// Sustained requests per second.
    pub rate: f64,
    /// Burst capacity (instantaneous requests from a full bucket).
    pub burst: f64,
}

impl Tier {
    /// The no-limit tier.
    pub fn unlimited() -> Self {
        Tier {
            rate: 0.0,
            burst: 0.0,
        }
    }

    /// Whether this tier imposes no limit.
    pub fn is_unlimited(&self) -> bool {
        self.rate <= 0.0
    }
}

struct Bucket {
    tokens: f64,
    refilled: Instant,
}

/// One tenant: its namespaced cache, tier, and bucket state.
pub struct Tenant {
    name: String,
    /// The tenant's private plan/scenario cache.
    pub cache: PlanCache,
    tier: Tier,
    bucket: Mutex<Bucket>,
}

impl Tenant {
    fn new(name: &str, cache_bytes: usize, tier: Tier) -> Self {
        Tenant {
            name: name.to_string(),
            cache: PlanCache::with_budget(cache_bytes),
            tier,
            bucket: Mutex::new(Bucket {
                tokens: tier.burst.max(1.0),
                refilled: Instant::now(),
            }),
        }
    }

    /// The tenant's name (the stats key).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenant's tier.
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// Spends one request from the token bucket. `false` = rate-limited.
    pub fn admit(&self) -> bool {
        if self.tier.is_unlimited() {
            return true;
        }
        let mut bucket = lock_unpoisoned(&self.bucket);
        let now = Instant::now();
        let elapsed = now.duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.tier.rate).min(self.tier.burst.max(1.0));
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Whether `name` is an acceptable self-declared tenant name: 1–64 chars
/// of `[A-Za-z0-9_-]`. Anything else (path separators, control bytes,
/// megabyte names) is refused before it becomes a map key or stats label.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_TENANT_NAME
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// Why a request could not be bound to a tenant.
#[derive(Debug, PartialEq, Eq)]
pub enum ResolveError {
    /// The bearer token is not in the tenants file → `401`.
    UnknownToken,
    /// The `X-Tenant` value fails [`valid_name`] → `400`.
    BadName(String),
    /// The `X-Tenant` value names a token-configured tenant → `403`.
    /// Handing it out would let an unauthenticated client share that
    /// tenant's cache and spend its rate budget.
    ReservedName(String),
    /// The registry is at its tenant cap → `429`.
    TooManyTenants,
}

/// The tenant registry: name → tenant, token → (name, tier).
pub struct TenantRegistry {
    tenants: Mutex<BTreeMap<String, Arc<Tenant>>>,
    tokens: BTreeMap<String, (String, Tier)>,
    /// Names owned by the tenants file; refused as `X-Tenant` values.
    reserved: BTreeSet<String>,
    /// When set, the only credential [`Self::authorize_admin`] accepts.
    admin_token: Option<String>,
    default_tier: Tier,
    cache_bytes: usize,
    max_tenants: usize,
}

impl TenantRegistry {
    /// A registry with per-tenant caches of `cache_bytes`, self-declared
    /// tenants on `default_tier`, and at most `max_tenants` tenants.
    pub fn new(cache_bytes: usize, default_tier: Tier, max_tenants: usize) -> Self {
        TenantRegistry {
            tenants: Mutex::new(BTreeMap::new()),
            tokens: BTreeMap::new(),
            reserved: BTreeSet::new(),
            admin_token: None,
            default_tier,
            cache_bytes,
            max_tenants: max_tenants.max(1),
        }
    }

    /// Installs the token map from a parsed tenants file:
    /// `{"tenants": [{"name", "token", "rate", "burst"}, ...],
    /// "admin_token": "..."}` — `rate`/`burst` optional (default tier when
    /// absent), `admin_token` optional (see [`Self::authorize_admin`]).
    /// Every configured name is reserved for token-authenticated use.
    ///
    /// # Errors
    ///
    /// A message describing the first malformed entry. Two entries may
    /// share a name only with the same tier — otherwise whichever token
    /// was used first would silently fix the tenant's tier for both.
    pub fn load_tokens(&mut self, value: &Value) -> Result<(), String> {
        let Value::Array(entries) = value.field("tenants") else {
            return Err("tenants file must carry a 'tenants' array".to_string());
        };
        let mut tier_of: BTreeMap<String, Tier> = BTreeMap::new();
        for entry in entries {
            let Value::String(name) = entry.field("name") else {
                return Err("tenant entry missing string 'name'".to_string());
            };
            if !valid_name(name) {
                return Err(format!("invalid tenant name {name:?}"));
            }
            if name == DEFAULT_TENANT {
                return Err(format!(
                    "tenant name {DEFAULT_TENANT:?} is reserved for anonymous requests"
                ));
            }
            let Value::String(token) = entry.field("token") else {
                return Err(format!("tenant {name:?} missing string 'token'"));
            };
            let mut tier = self.default_tier;
            if let Value::Number(n) = entry.field("rate") {
                tier.rate = n.as_f64();
            }
            if let Value::Number(n) = entry.field("burst") {
                tier.burst = n.as_f64();
            }
            if let Some(previous) = tier_of.insert(name.clone(), tier) {
                if previous != tier {
                    return Err(format!(
                        "tenant {name:?} is configured with conflicting tiers"
                    ));
                }
            }
            self.tokens.insert(token.clone(), (name.clone(), tier));
            self.reserved.insert(name.clone());
        }
        if let Value::String(token) = value.field("admin_token") {
            self.admin_token = Some(token.clone());
        }
        Ok(())
    }

    /// Overrides the admin token (the `--admin-token` flag beats the
    /// tenants file's `admin_token` field).
    pub fn set_admin_token(&mut self, token: String) {
        self.admin_token = Some(token);
    }

    /// Whether `authorization` may invoke admin routes (`/v1/shutdown`).
    ///
    /// With an admin token configured, only that exact bearer token is
    /// accepted. Otherwise any token from the tenants file qualifies —
    /// a credentialed tenant may drain the gateway, an anonymous client
    /// may not. A gateway with no credentials configured at all (no
    /// tenants file, no admin token: local/dev use) stays open.
    pub fn authorize_admin(&self, authorization: Option<&str>) -> bool {
        let token = authorization.map(|auth| auth.strip_prefix("Bearer ").unwrap_or(auth).trim());
        if let Some(admin) = &self.admin_token {
            return token == Some(admin.as_str());
        }
        if self.tokens.is_empty() {
            return true;
        }
        token.is_some_and(|t| self.tokens.contains_key(t))
    }

    fn get_or_create(&self, name: &str, tier: Tier) -> Result<Arc<Tenant>, ResolveError> {
        let mut tenants = lock_unpoisoned(&self.tenants);
        if let Some(tenant) = tenants.get(name) {
            return Ok(Arc::clone(tenant));
        }
        if tenants.len() >= self.max_tenants {
            return Err(ResolveError::TooManyTenants);
        }
        let tenant = Arc::new(Tenant::new(name, self.cache_bytes, tier));
        tenants.insert(name.to_string(), Arc::clone(&tenant));
        Ok(tenant)
    }

    /// Binds a request to its tenant from the `Authorization` and
    /// `X-Tenant` headers (either may be absent).
    ///
    /// # Errors
    ///
    /// See [`ResolveError`] for the refusal cases and their statuses.
    pub fn resolve(
        &self,
        authorization: Option<&str>,
        x_tenant: Option<&str>,
    ) -> Result<Arc<Tenant>, ResolveError> {
        if let Some(auth) = authorization {
            let token = auth.strip_prefix("Bearer ").unwrap_or(auth).trim();
            let Some((name, tier)) = self.tokens.get(token) else {
                return Err(ResolveError::UnknownToken);
            };
            return self.get_or_create(name, *tier);
        }
        if let Some(name) = x_tenant {
            if !valid_name(name) {
                return Err(ResolveError::BadName(name.to_string()));
            }
            if self.reserved.contains(name) {
                return Err(ResolveError::ReservedName(name.to_string()));
            }
            return self.get_or_create(name, self.default_tier);
        }
        // The default tier, NOT unlimited: omitting both headers must not
        // be a rate-limit bypass on a gateway configured with `--rate`.
        self.get_or_create(DEFAULT_TENANT, self.default_tier)
    }

    /// All live tenants, sorted by name (for the stats snapshot).
    pub fn snapshot(&self) -> Vec<Arc<Tenant>> {
        lock_unpoisoned(&self.tenants)
            .values()
            .map(Arc::clone)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_validated() {
        assert!(valid_name("acme-01_x"));
        assert!(!valid_name(""));
        assert!(!valid_name("a/b"));
        assert!(!valid_name("héllo"));
        assert!(!valid_name(&"x".repeat(65)));
    }

    #[test]
    fn header_tenants_share_an_instance_and_caps_hold() {
        let registry = TenantRegistry::new(1 << 20, Tier::unlimited(), 2);
        let a1 = registry.resolve(None, Some("a")).unwrap();
        let a2 = registry.resolve(None, Some("a")).unwrap();
        assert!(Arc::ptr_eq(&a1, &a2));
        registry.resolve(None, Some("b")).unwrap();
        let Err(capped) = registry.resolve(None, Some("c")) else {
            panic!("tenant cap must refuse a third tenant");
        };
        assert_eq!(capped, ResolveError::TooManyTenants);
        let Err(bad) = registry.resolve(None, Some("no spaces")) else {
            panic!("invalid names must be refused");
        };
        assert_eq!(bad, ResolveError::BadName("no spaces".to_string()));
    }

    #[test]
    fn tokens_map_to_named_tenants_with_their_tier() {
        let mut registry = TenantRegistry::new(1 << 20, Tier::unlimited(), 8);
        let file: Value = serde_json::from_str(
            r#"{"tenants":[{"name":"acme","token":"tok_a","rate":2.0,"burst":3.0}]}"#,
        )
        .unwrap();
        registry.load_tokens(&file).unwrap();
        let acme = registry.resolve(Some("Bearer tok_a"), None).unwrap();
        assert_eq!(acme.name(), "acme");
        assert_eq!(
            acme.tier(),
            Tier {
                rate: 2.0,
                burst: 3.0
            }
        );
        let Err(unknown) = registry.resolve(Some("Bearer wrong"), None) else {
            panic!("unknown tokens must be refused");
        };
        assert_eq!(unknown, ResolveError::UnknownToken);
    }

    #[test]
    fn token_configured_names_are_reserved_from_self_declaration() {
        let mut registry = TenantRegistry::new(1 << 20, Tier::unlimited(), 8);
        let file: Value = serde_json::from_str(
            r#"{"tenants":[{"name":"acme","token":"tok_a","rate":2.0,"burst":3.0}]}"#,
        )
        .unwrap();
        registry.load_tokens(&file).unwrap();
        // Headers alone must not reach acme's cache and rate bucket…
        let Err(reserved) = registry.resolve(None, Some("acme")) else {
            panic!("X-Tenant must not impersonate a token-configured tenant");
        };
        assert_eq!(reserved, ResolveError::ReservedName("acme".to_string()));
        // …and the refusal must not have created the tenant, so the token
        // still binds it at its configured tier (no first-touch fixation).
        let acme = registry.resolve(Some("Bearer tok_a"), None).unwrap();
        assert_eq!(
            acme.tier(),
            Tier {
                rate: 2.0,
                burst: 3.0
            }
        );
        // When both headers are present the token wins, so a valid bearer
        // may still name its own tenant in X-Tenant for visibility.
        let both = registry
            .resolve(Some("Bearer tok_a"), Some("acme"))
            .unwrap();
        assert!(Arc::ptr_eq(&acme, &both));
    }

    #[test]
    fn tenants_file_refusals() {
        let mut registry = TenantRegistry::new(1 << 20, Tier::unlimited(), 8);
        let conflicting: Value = serde_json::from_str(
            r#"{"tenants":[{"name":"a","token":"t1","rate":1.0,"burst":1.0},
                           {"name":"a","token":"t2","rate":9.0,"burst":9.0}]}"#,
        )
        .unwrap();
        assert!(
            registry.load_tokens(&conflicting).is_err(),
            "one name, two tiers: whichever token arrived first would fix the tier"
        );
        let shadowing: Value =
            serde_json::from_str(r#"{"tenants":[{"name":"default","token":"t"}]}"#).unwrap();
        assert!(
            registry.load_tokens(&shadowing).is_err(),
            "'default' belongs to anonymous requests"
        );
    }

    #[test]
    fn anonymous_requests_get_the_default_tier_not_unlimited() {
        let limited = Tier {
            rate: 0.001,
            burst: 2.0,
        };
        let registry = TenantRegistry::new(1 << 20, limited, 8);
        let anon = registry.resolve(None, None).unwrap();
        assert_eq!(anon.name(), DEFAULT_TENANT);
        assert_eq!(anon.tier(), limited, "omitting headers is not a bypass");
        assert!(anon.admit() && anon.admit());
        assert!(!anon.admit(), "the default tenant's bucket really limits");
    }

    #[test]
    fn admin_authorization_tracks_configured_credentials() {
        // No credentials configured: open (local/dev gateways).
        let mut registry = TenantRegistry::new(1 << 20, Tier::unlimited(), 8);
        assert!(registry.authorize_admin(None));
        // Tenants file without admin_token: any configured token.
        let file: Value =
            serde_json::from_str(r#"{"tenants":[{"name":"acme","token":"tok_a"}]}"#).unwrap();
        registry.load_tokens(&file).unwrap();
        assert!(!registry.authorize_admin(None));
        assert!(!registry.authorize_admin(Some("Bearer wrong")));
        assert!(registry.authorize_admin(Some("Bearer tok_a")));
        // With an admin token: only that token, tenant tokens no longer do.
        let file: Value = serde_json::from_str(
            r#"{"tenants":[{"name":"acme","token":"tok_a"}],"admin_token":"root_t"}"#,
        )
        .unwrap();
        let mut registry = TenantRegistry::new(1 << 20, Tier::unlimited(), 8);
        registry.load_tokens(&file).unwrap();
        assert!(!registry.authorize_admin(Some("Bearer tok_a")));
        assert!(registry.authorize_admin(Some("Bearer root_t")));
        // The flag overrides the file.
        registry.set_admin_token("flag_t".to_string());
        assert!(!registry.authorize_admin(Some("Bearer root_t")));
        assert!(registry.authorize_admin(Some("Bearer flag_t")));
    }

    #[test]
    fn token_bucket_limits_bursts_and_unlimited_never_blocks() {
        let tenant = Tenant::new(
            "t",
            1 << 20,
            Tier {
                rate: 0.001,
                burst: 2.0,
            },
        );
        assert!(tenant.admit());
        assert!(tenant.admit());
        assert!(!tenant.admit(), "burst of 2 spent, refill is ~0");
        let open = Tenant::new("o", 1 << 20, Tier::unlimited());
        for _ in 0..1000 {
            assert!(open.admit());
        }
    }
}
