//! Gateway protocol suite: keep-alive, malformed requests, framing
//! errors, tenant isolation, rate limiting, batching, and byte-identity
//! of `/v1/plan` with the JSONL daemon's response line.

use ccs_gateway::prelude::*;
use ccs_serve::engine;
use ccs_serve::protocol::ok_response;
use ccs_serve::{PlanCache, ServeObs};
use ccs_wrsn::scenario::ScenarioGenerator;
use serde::value::Value;
use serde::Serialize;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::thread::JoinHandle;

/// A gateway running on an ephemeral port, shut down on `stop()`.
struct TestGateway {
    addr: std::net::SocketAddr,
    thread: JoinHandle<std::io::Result<GatewaySummary>>,
}

fn start_gateway(mut config: GatewayConfig) -> TestGateway {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    config.idle_timeout = std::time::Duration::from_secs(2);
    let thread = std::thread::spawn(move || run_gateway_on(listener, &config));
    TestGateway { addr, thread }
}

impl TestGateway {
    fn connect(&self) -> TcpStream {
        TcpStream::connect(self.addr).expect("connect to gateway")
    }

    fn stop(self) -> GatewaySummary {
        self.stop_with(&[])
    }

    /// Stops a gateway whose `/v1/shutdown` demands credentials.
    fn stop_with(self, headers: &[(&str, &str)]) -> GatewaySummary {
        let mut stream = self.connect();
        let (status, body) = request(&mut stream, "POST", "/v1/shutdown", headers, "");
        assert_eq!(status, 200, "shutdown refused: {body}");
        self.thread
            .join()
            .expect("gateway thread")
            .expect("gateway run")
    }
}

/// Writes a tenants file into a per-test temp path.
fn write_tenants_file(name: &str, contents: &str) -> String {
    let path = std::env::temp_dir().join(format!("ccs-gw-{}-{name}.json", std::process::id()));
    std::fs::write(&path, contents).expect("write tenants file");
    path.to_str().expect("utf-8 temp path").to_string()
}

/// Sends one request and reads one response off `stream`.
fn request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> (u16, String) {
    let mut raw = format!("{method} {path} HTTP/1.1\r\nHost: test\r\n");
    for (name, value) in headers {
        raw.push_str(&format!("{name}: {value}\r\n"));
    }
    raw.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
    stream.write_all(raw.as_bytes()).expect("write request");
    read_response(stream)
}

/// Reads one `Content-Length`-framed response.
fn read_response(stream: &mut TcpStream) -> (u16, String) {
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(raw) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = raw.trim().parse().expect("content-length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("UTF-8 body"))
}

fn scenario_value(seed: u64, devices: usize) -> Value {
    ScenarioGenerator::new(seed)
        .devices(devices)
        .chargers(3)
        .generate()
        .to_value()
}

fn plan_body(seed: u64, devices: usize, algo: &str, sharing: &str, id: u64) -> String {
    let scenario = serde_json::to_string(&scenario_value(seed, devices)).expect("serializes");
    format!(
        r#"{{"id":{id},"cmd":"plan","scenario":{scenario},"algo":"{algo}","sharing":"{sharing}"}}"#
    )
}

fn parsed(body: &str) -> Value {
    serde_json::from_str(body).expect("response body parses")
}

/// Byte-identity: the `/v1/plan` HTTP body must equal the JSONL daemon's
/// response line for the same request, across the full 27-request grid
/// (3 seeds x 3 algorithms x 3 sharing schemes). Combined with the serve
/// crate's `served_plan_is_byte_identical_to_direct_computation` (daemon
/// line == one-shot `ccs plan` stdout), this pins the whole chain.
#[test]
fn plan_responses_are_byte_identical_to_the_daemon_for_27_requests() {
    let gateway = start_gateway(GatewayConfig::default());
    let reference = PlanCache::new();
    let obs = ServeObs::new(None, None);
    let mut stream = gateway.connect();
    let mut id = 0u64;
    for seed in [41, 42, 43] {
        for algo in ["ccsa", "ccsga", "ncp"] {
            for sharing in ["equal", "proportional", "shapley"] {
                id += 1;
                let body = plan_body(seed, 8, algo, sharing, id);
                let (status, got) = request(&mut stream, "POST", "/v1/plan", &[], &body);
                assert_eq!(status, 200, "{algo}/{sharing}: {got}");

                let request_value: Value = serde_json::from_str(&body).unwrap();
                let mut trace = obs.start();
                let handled = engine::execute(&reference, "plan", &request_value, &mut trace)
                    .expect("reference plan");
                let expected = ok_response(request_value.field("id"), handled.result);
                assert_eq!(got, expected, "seed {seed} {algo}/{sharing}");
            }
        }
    }
    drop(stream);
    let summary = gateway.stop();
    assert_eq!(summary.completed, 27);
    assert_eq!(summary.errors, 0);
}

/// One connection, many requests: HTTP/1.1 keep-alive must reuse the
/// stream, and `Connection: close` must end it.
#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let gateway = start_gateway(GatewayConfig::default());
    let mut stream = gateway.connect();
    for id in 1..=5u64 {
        let body = plan_body(7, 6, "ccsa", "equal", id);
        let (status, response) = request(&mut stream, "POST", "/v1/plan", &[], &body);
        assert_eq!(status, 200);
        let value = parsed(&response);
        assert_eq!(value.field("ok"), &Value::Bool(true));
        assert_eq!(
            value.field("id"),
            &Value::Number(serde::value::Number::PosInt(id))
        );
    }
    // Same stream, now with Connection: close — answered, then closed.
    let (status, _) = request(
        &mut stream,
        "GET",
        "/healthz",
        &[("Connection", "close")],
        "",
    );
    assert_eq!(status, 200);
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("read to EOF");
    assert!(rest.is_empty(), "server closed after Connection: close");
    drop(stream);
    gateway.stop();
}

/// Malformed request lines, bad headers, and unsupported framing are
/// answered `400` (not dropped, not fatal), and the gateway keeps serving
/// fresh connections afterwards.
#[test]
fn malformed_requests_get_400_and_the_gateway_survives() {
    let gateway = start_gateway(GatewayConfig::default());
    for raw in [
        "NOT-EVEN-HTTP\r\n\r\n",
        "GET /healthz SPDY/3\r\n\r\n",
        "GET /healthz HTTP/1.1\r\nbroken header line\r\n\r\n",
        "POST /v1/plan HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        "POST /v1/plan HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
    ] {
        let mut stream = gateway.connect();
        stream.write_all(raw.as_bytes()).expect("write");
        let (status, body) = read_response(&mut stream);
        assert_eq!(status, 400, "raw {raw:?}: {body}");
        let value = parsed(&body);
        assert_eq!(value.field("ok"), &Value::Bool(false));
    }
    // Content-Length mismatch: declared longer than sent.
    let mut stream = gateway.connect();
    stream
        .write_all(b"POST /v1/plan HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")
        .expect("write");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("content-length mismatch"), "{body}");

    // The daemon is still alive and serving.
    let mut stream = gateway.connect();
    let (status, _) = request(&mut stream, "GET", "/healthz", &[], "");
    assert_eq!(status, 200);
    drop(stream);
    gateway.stop();
}

/// Tenant isolation: tenant A's eviction pressure (many distinct
/// scenarios against a tiny per-tenant cache budget) must not evict
/// tenant B's cached scenario.
#[test]
fn tenant_a_eviction_pressure_does_not_evict_tenant_b() {
    let config = GatewayConfig {
        cache_bytes: 64 << 10,
        ..GatewayConfig::default()
    };
    let gateway = start_gateway(config);
    let mut stream = gateway.connect();
    let b_headers = [("X-Tenant", "tenant-b")];
    let a_headers = [("X-Tenant", "tenant-a")];

    // Warm tenant B with one scenario.
    let (status, _) = request(
        &mut stream,
        "POST",
        "/v1/plan",
        &b_headers,
        &plan_body(100, 6, "ccsa", "equal", 1),
    );
    assert_eq!(status, 200);

    // Hammer tenant A with enough distinct scenarios to overflow its
    // 64 KiB budget several times over.
    for seed in 0..24u64 {
        let (status, _) = request(
            &mut stream,
            "POST",
            "/v1/plan",
            &a_headers,
            &plan_body(200 + seed, 6, "ccsa", "equal", 10 + seed),
        );
        assert_eq!(status, 200);
    }

    let (status, stats) = request(&mut stream, "GET", "/v1/stats", &[], "");
    assert_eq!(status, 200);
    let stats = parsed(&stats);
    let tenants = stats.field("result").field("tenants");
    let a_cache = tenants.field("tenant-a").field("cache");
    let b_cache = tenants.field("tenant-b").field("cache");
    let num = |v: &Value| match v {
        Value::Number(n) => n.as_f64() as u64,
        other => panic!("expected number, got {other:?}"),
    };
    assert!(
        num(a_cache.field("evictions")) > 0,
        "tenant A must be under eviction pressure: {a_cache:?}"
    );
    assert_eq!(
        num(b_cache.field("evictions")),
        0,
        "tenant B saw no eviction pressure"
    );
    assert_eq!(num(b_cache.field("scenarios")), 1);

    // Tenant B's entry is still hot: replaying its request hits the cache.
    let before = num(b_cache.field("hits"));
    let (status, _) = request(
        &mut stream,
        "POST",
        "/v1/plan",
        &b_headers,
        &plan_body(100, 6, "ccsa", "equal", 2),
    );
    assert_eq!(status, 200);
    let (_, stats) = request(&mut stream, "GET", "/v1/stats", &[], "");
    let stats = parsed(&stats);
    let b_cache = stats
        .field("result")
        .field("tenants")
        .field("tenant-b")
        .field("cache");
    assert!(
        num(b_cache.field("hits")) > before,
        "tenant B's scenario survived A's evictions: {b_cache:?}"
    );
    drop(stream);
    gateway.stop();
}

/// The default tier's token bucket answers `429` once the burst is spent.
#[test]
fn rate_limited_tenants_get_429() {
    let config = GatewayConfig {
        rate: 0.001,
        burst: 3.0,
        ..GatewayConfig::default()
    };
    let gateway = start_gateway(config);
    let mut stream = gateway.connect();
    let headers = [("X-Tenant", "limited")];
    let mut seen_429 = 0;
    for id in 1..=6u64 {
        let (status, body) = request(
            &mut stream,
            "POST",
            "/v1/plan",
            &headers,
            &plan_body(9, 6, "ccsa", "equal", id),
        );
        match status {
            200 => {}
            429 => {
                seen_429 += 1;
                assert!(body.contains("rate limit"), "{body}");
            }
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    assert_eq!(seen_429, 3, "burst of 3, then limited");
    drop(stream);
    let summary = gateway.stop();
    assert_eq!(summary.rate_limited, 3);
    gateway_summary_sane(&summary);
}

fn gateway_summary_sane(summary: &GatewaySummary) {
    assert!(summary.requests >= summary.completed);
}

/// `/v1/batch`: one HTTP request carrying many plan bodies; per-item
/// responses come back in request order, and repeats of one scenario
/// amortize onto the cache.
#[test]
fn batch_requests_answer_per_item_in_order() {
    let gateway = start_gateway(GatewayConfig::default());
    let mut stream = gateway.connect();
    let scenario = serde_json::to_string(&scenario_value(55, 6)).unwrap();
    let items: Vec<String> = (0..6)
        .map(|i| {
            if i == 3 {
                // One poison item: unknown algo -> per-item error, not a
                // failed batch.
                format!(r#"{{"cmd":"plan","scenario":{scenario},"algo":"nope"}}"#)
            } else {
                format!(r#"{{"cmd":"plan","scenario":{scenario},"algo":"ccsa"}}"#)
            }
        })
        .collect();
    let body = format!(r#"{{"id":77,"requests":[{}]}}"#, items.join(","));
    let (status, response) = request(&mut stream, "POST", "/v1/batch", &[], &body);
    assert_eq!(status, 200, "{response}");
    let value = parsed(&response);
    assert_eq!(value.field("ok"), &Value::Bool(true));
    let Value::Array(results) = value.field("result") else {
        panic!("batch result must be an array: {response}");
    };
    assert_eq!(results.len(), 6);
    let mut ok_texts = Vec::new();
    for (i, item) in results.iter().enumerate() {
        if i == 3 {
            assert_eq!(item.field("ok"), &Value::Bool(false), "item {i}");
            continue;
        }
        assert_eq!(item.field("ok"), &Value::Bool(true), "item {i}");
        let Value::String(text) = item.field("result").field("text") else {
            panic!("item {i} has no result.text");
        };
        ok_texts.push(text.clone());
    }
    assert!(
        ok_texts.windows(2).all(|w| w[0] == w[1]),
        "identical requests produce identical plans"
    );

    // The five identical items hit the plan memo after the first.
    let (_, stats) = request(&mut stream, "GET", "/v1/stats", &[], "");
    let stats = parsed(&stats);
    let requests = stats.field("result").field("requests");
    let Value::Number(plan_hits) = requests.field("plan_hits") else {
        panic!("stats carry plan_hits: {stats:?}");
    };
    assert!(
        plan_hits.as_f64() >= 4.0,
        "batch amortizes repeated items: {requests:?}"
    );
    drop(stream);
    let summary = gateway.stop();
    assert_eq!(summary.batches, 1);
    assert_eq!(summary.batch_items, 6);
    assert_eq!(summary.errors, 1);
}

/// On a credentialed gateway `/v1/shutdown` is an authenticated route:
/// anonymous and unknown-token requests bounce with 401 (and the gateway
/// keeps serving), tenant tokens qualify — unless an admin token is
/// configured, which then becomes the only accepted credential.
#[test]
fn shutdown_requires_credentials_on_a_credentialed_gateway() {
    let tenants = write_tenants_file(
        "shutdown",
        r#"{"tenants":[{"name":"acme","token":"tok_acme"}]}"#,
    );
    let config = GatewayConfig {
        tenants_file: Some(tenants.clone()),
        ..GatewayConfig::default()
    };
    let gateway = start_gateway(config);
    let mut stream = gateway.connect();
    let (status, body) = request(&mut stream, "POST", "/v1/shutdown", &[], "");
    assert_eq!(status, 401, "anonymous shutdown must bounce: {body}");
    let (status, body) = request(
        &mut stream,
        "POST",
        "/v1/shutdown",
        &[("Authorization", "Bearer wrong")],
        "",
    );
    assert_eq!(status, 401, "unknown-token shutdown must bounce: {body}");
    // The bounced shutdowns didn't drain anything.
    let (status, _) = request(&mut stream, "GET", "/healthz", &[], "");
    assert_eq!(status, 200, "gateway still serving after refused shutdowns");
    drop(stream);
    gateway.stop_with(&[("Authorization", "Bearer tok_acme")]);

    // With an admin token configured, tenant tokens no longer qualify.
    let config = GatewayConfig {
        tenants_file: Some(tenants.clone()),
        admin_token: Some("root_token".to_string()),
        ..GatewayConfig::default()
    };
    let gateway = start_gateway(config);
    let mut stream = gateway.connect();
    let (status, body) = request(
        &mut stream,
        "POST",
        "/v1/shutdown",
        &[("Authorization", "Bearer tok_acme")],
        "",
    );
    assert_eq!(status, 401, "tenant token is not the admin token: {body}");
    drop(stream);
    gateway.stop_with(&[("Authorization", "Bearer root_token")]);
    let _ = std::fs::remove_file(&tenants);
}

/// Token-configured names are reserved: a bare `X-Tenant` naming one is
/// refused 403 rather than handed that tenant's cache and rate bucket.
#[test]
fn self_declared_tenant_cannot_impersonate_a_token_configured_one() {
    let tenants = write_tenants_file(
        "reserved",
        r#"{"tenants":[{"name":"acme","token":"tok_acme"}]}"#,
    );
    let config = GatewayConfig {
        tenants_file: Some(tenants.clone()),
        ..GatewayConfig::default()
    };
    let gateway = start_gateway(config);
    let mut stream = gateway.connect();
    let (status, body) = request(
        &mut stream,
        "POST",
        "/v1/plan",
        &[("X-Tenant", "acme")],
        "{}",
    );
    assert_eq!(status, 403, "{body}");
    assert!(body.contains("bearer token"), "{body}");
    // Other self-declared names still work.
    let (status, _) = request(
        &mut stream,
        "POST",
        "/v1/plan",
        &[("X-Tenant", "someone-else")],
        &plan_body(3, 6, "ccsa", "equal", 1),
    );
    assert_eq!(status, 200);
    drop(stream);
    gateway.stop_with(&[("Authorization", "Bearer tok_acme")]);
    let _ = std::fs::remove_file(&tenants);
}

/// Omitting both identity headers lands on the default tenant at the
/// configured default tier — not an unlimited rate-limit bypass.
#[test]
fn anonymous_requests_are_rate_limited_at_the_default_tier() {
    let config = GatewayConfig {
        rate: 0.001,
        burst: 3.0,
        ..GatewayConfig::default()
    };
    let gateway = start_gateway(config);
    let mut stream = gateway.connect();
    let mut seen_429 = 0;
    for id in 1..=6u64 {
        let (status, body) = request(
            &mut stream,
            "POST",
            "/v1/plan",
            &[],
            &plan_body(9, 6, "ccsa", "equal", id),
        );
        match status {
            200 => {}
            429 => seen_429 += 1,
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    assert_eq!(seen_429, 3, "headerless requests spend the default bucket");
    drop(stream);
    gateway.stop();
}

/// Identity handling: bad tenant names are 400, unknown bearer tokens are
/// 401, and the stats snapshot is versioned.
#[test]
fn identity_refusals_and_stats_schema() {
    let gateway = start_gateway(GatewayConfig::default());
    let mut stream = gateway.connect();
    let (status, body) = request(
        &mut stream,
        "POST",
        "/v1/plan",
        &[("X-Tenant", "no spaces allowed")],
        "{}",
    );
    assert_eq!(status, 400, "{body}");

    let mut stream = gateway.connect();
    let (status, body) = request(
        &mut stream,
        "POST",
        "/v1/plan",
        &[("Authorization", "Bearer nobody-knows-me")],
        "{}",
    );
    assert_eq!(status, 401, "{body}");

    let (status, stats) = request(&mut stream, "GET", "/v1/stats", &[], "");
    assert_eq!(status, 200);
    let stats = parsed(&stats);
    assert_eq!(
        stats.field("result").field("schema"),
        &Value::String("ccs-gateway-stats/v1".to_string())
    );
    let (status, body) = request(&mut stream, "GET", "/v1/nope", &[], "");
    assert_eq!(status, 404, "{body}");
    drop(stream);
    gateway.stop();
}
