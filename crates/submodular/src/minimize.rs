//! Specialized and heuristic minimizers complementing the general
//! min-norm-point algorithm.
//!
//! * [`SeparableFn`] — the `fee·1[S≠∅] + Σ w_i + scale·g(|S|)` family the CCS
//!   group bill lives in, with an exact `O(n log n)` minimizer
//!   ([`separable_min`]): sort weights ascending, scan prefixes.
//! * [`local_search_min`] — greedy add/remove descent; used as the cheap
//!   baseline in the `abl_sfm` ablation.

use crate::set_fn::{CardinalityCurve, SetFunction};
use crate::subset::Subset;

/// A separable submodular function
/// `f(S) = fee·1[S ≠ ∅] + Σ_{i∈S} w_i + scale·g(|S|)`.
///
/// This is exactly the shape of the CCS group bill for a fixed facility, so
/// CCSA's inner minimization has a fast exact path that avoids the general
/// polytope machinery.
#[derive(Debug, Clone, PartialEq)]
pub struct SeparableFn {
    weights: Vec<f64>,
    fee: f64,
    curve: CardinalityCurve,
    scale: f64,
}

impl SeparableFn {
    /// Creates the function.
    ///
    /// # Panics
    ///
    /// Panics if weights/fee/scale are non-finite, `fee < 0`, or `scale < 0`.
    pub fn new(weights: Vec<f64>, fee: f64, curve: CardinalityCurve, scale: f64) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite()),
            "weights must be finite"
        );
        assert!(fee.is_finite() && fee >= 0.0, "fee must be finite and >= 0");
        assert!(
            scale.is_finite() && scale >= 0.0,
            "scale must be finite and >= 0"
        );
        SeparableFn {
            weights,
            fee,
            curve,
            scale,
        }
    }

    /// The per-element weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The fixed fee paid by any nonempty set.
    pub fn fee(&self) -> f64 {
        self.fee
    }

    /// The concave cardinality curve `g`.
    pub fn curve(&self) -> &CardinalityCurve {
        &self.curve
    }

    /// The scale applied to the cardinality curve.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl SetFunction for SeparableFn {
    fn ground_size(&self) -> usize {
        self.weights.len()
    }

    fn eval(&self, s: &Subset) -> f64 {
        assert_eq!(s.ground_size(), self.weights.len(), "ground size mismatch");
        if s.is_empty() {
            return 0.0;
        }
        self.fee
            + s.iter().map(|i| self.weights[i]).sum::<f64>()
            + self.scale * self.curve.eval(s.len())
    }

    fn marginal(&self, s: &Subset, i: usize) -> f64 {
        if s.contains(i) {
            return 0.0;
        }
        let k = s.len();
        let fee_part = if k == 0 { self.fee } else { 0.0 };
        fee_part + self.weights[i] + self.scale * (self.curve.eval(k + 1) - self.curve.eval(k))
    }
}

/// Exactly minimizes `f(S) − lambda·|S|` for a [`SeparableFn`] in
/// `O(n log n)`: for each cardinality `k` the optimal set takes the `k`
/// smallest weights, so scanning sorted prefixes covers every candidate.
///
/// Returns `(argmin, min)`; the empty set (value 0) is a candidate.
pub fn separable_min(f: &SeparableFn, lambda: f64) -> (Subset, f64) {
    let n = f.ground_size();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| f.weights[a].total_cmp(&f.weights[b]).then(a.cmp(&b)));

    let mut best_val = 0.0; // empty set
    let mut best_k = 0usize;
    let mut acc = 0.0;
    for (idx, &i) in order.iter().enumerate() {
        let k = idx + 1;
        acc += f.weights[i];
        let v = f.fee + acc + f.scale * f.curve.eval(k) - lambda * k as f64;
        if v < best_val - 1e-15 {
            best_val = v;
            best_k = k;
        }
    }
    let set = Subset::from_indices(n, order[..best_k].iter().copied());
    (set, best_val)
}

/// Greedy local-search descent for set-function minimization: repeatedly
/// apply the single-element add/remove with the largest decrease until no
/// move improves. Exact for modular functions, heuristic otherwise.
///
/// Returns `(local_min_set, value)`.
pub fn local_search_min<F: SetFunction>(f: &F) -> (Subset, f64) {
    let n = f.ground_size();
    let mut current = Subset::empty(n);
    let mut value = f.eval(&current);
    loop {
        let mut best_move: Option<(usize, f64)> = None;
        for i in 0..n {
            let candidate = if current.contains(i) {
                current.without(i)
            } else {
                current.with(i)
            };
            let v = f.eval(&candidate);
            if v < value - 1e-12 {
                match best_move {
                    Some((_, bv)) if bv <= v => {}
                    _ => best_move = Some((i, v)),
                }
            }
        }
        match best_move {
            Some((i, v)) => {
                if current.contains(i) {
                    current.remove(i);
                } else {
                    current.insert(i);
                }
                value = v;
            }
            None => return (current, value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{brute_force_min, is_submodular};
    use crate::set_fn::CardinalityPenalized;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn separable_fn_is_submodular() {
        let f = SeparableFn::new(vec![1.0, -2.0, 3.0, 0.5], 5.0, CardinalityCurve::Sqrt, 2.0);
        assert!(is_submodular(&f, 1e-9));
        assert_eq!(f.eval(&Subset::empty(4)), 0.0, "empty set pays nothing");
        let s = Subset::from_indices(4, [0, 1]);
        let expected = 5.0 + (1.0 - 2.0) + 2.0 * 2.0f64.sqrt();
        assert!((f.eval(&s) - expected).abs() < 1e-12);
    }

    #[test]
    fn separable_marginal_includes_fee_only_from_empty() {
        let f = SeparableFn::new(vec![1.0, 1.0], 10.0, CardinalityCurve::Linear, 0.0);
        let empty = Subset::empty(2);
        assert_eq!(f.marginal(&empty, 0), 11.0);
        let one = Subset::from_indices(2, [0]);
        assert_eq!(f.marginal(&one, 1), 1.0);
    }

    #[test]
    fn separable_min_matches_brute_force_randomized() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for trial in 0..60 {
            let n = rng.gen_range(1..=9);
            let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(-4.0..4.0)).collect();
            let fee = rng.gen_range(0.0..6.0);
            let scale = rng.gen_range(0.0..3.0);
            let lambda = rng.gen_range(0.0..5.0);
            let curve = if trial % 2 == 0 {
                CardinalityCurve::Sqrt
            } else {
                CardinalityCurve::Log1p
            };
            let f = SeparableFn::new(weights, fee, curve, scale);
            let (set, val) = separable_min(&f, lambda);
            let penalized = CardinalityPenalized::new(f.clone(), lambda);
            let (_, expected) = brute_force_min(&penalized);
            assert!(
                (val - expected).abs() < 1e-9,
                "trial {trial}: separable {val} vs brute {expected}"
            );
            assert!((penalized.eval(&set) - val).abs() < 1e-9);
        }
    }

    #[test]
    fn separable_min_returns_empty_when_nothing_pays() {
        let f = SeparableFn::new(vec![1.0, 2.0], 5.0, CardinalityCurve::Sqrt, 1.0);
        let (set, val) = separable_min(&f, 0.0);
        assert!(set.is_empty());
        assert_eq!(val, 0.0);
    }

    #[test]
    fn separable_min_takes_everything_under_large_lambda() {
        let f = SeparableFn::new(vec![1.0, 2.0, 3.0], 5.0, CardinalityCurve::Sqrt, 1.0);
        let (set, _) = separable_min(&f, 100.0);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn local_search_exact_on_modular() {
        let f = crate::set_fn::Modular::new(vec![3.0, -1.0, -2.0, 4.0]);
        let (set, val) = local_search_min(&f);
        assert_eq!(set.to_vec(), vec![1, 2]);
        assert_eq!(val, -3.0);
    }

    #[test]
    fn local_search_never_worse_than_empty_set() {
        let f = SeparableFn::new(vec![2.0, 2.0], 1.0, CardinalityCurve::Sqrt, 1.0);
        let (_, val) = local_search_min(&f);
        assert!(val <= 0.0 + 1e-12);
    }
}
