//! Brute-force structural checks for set functions.
//!
//! These are exponential-time verifiers used in tests, debug assertions and
//! property-based testing — never in the hot path. They are the ground truth
//! the polynomial algorithms are validated against.

use crate::set_fn::SetFunction;
use crate::subset::{all_subsets, Subset};

/// Exhaustively checks submodularity via the diminishing-returns
/// characterization: for all `S ⊆ T` and `i ∉ T`,
/// `f(S ∪ {i}) − f(S) >= f(T ∪ {i}) − f(T)`.
///
/// Equivalent (and cheaper) check used here: for all `S` and `i ≠ j ∉ S`,
/// `f(S+i) + f(S+j) >= f(S+i+j) + f(S)`.
///
/// # Panics
///
/// Panics if the ground set exceeds 25 elements (exhaustive enumeration).
pub fn is_submodular<F: SetFunction>(f: &F, tol: f64) -> bool {
    let n = f.ground_size();
    for s in all_subsets(n) {
        for i in 0..n {
            if s.contains(i) {
                continue;
            }
            for j in (i + 1)..n {
                if s.contains(j) {
                    continue;
                }
                let fi = f.eval(&s.with(i));
                let fj = f.eval(&s.with(j));
                let fij = f.eval(&s.with(i).with(j));
                let fs = f.eval(&s);
                if fi + fj + tol < fij + fs {
                    return false;
                }
            }
        }
    }
    true
}

/// Exhaustively checks monotonicity (`S ⊆ T ⇒ f(S) <= f(T)`), via
/// nonnegative marginals.
///
/// # Panics
///
/// Panics if the ground set exceeds 25 elements.
pub fn is_monotone_nondecreasing<F: SetFunction>(f: &F, tol: f64) -> bool {
    let n = f.ground_size();
    for s in all_subsets(n) {
        for i in 0..n {
            if !s.contains(i) && f.marginal(&s, i) < -tol {
                return false;
            }
        }
    }
    true
}

/// Checks that the function is normalized (`f(∅) = 0`) within tolerance.
pub fn is_normalized<F: SetFunction>(f: &F, tol: f64) -> bool {
    f.at_empty().abs() <= tol
}

/// Exhaustively finds the global minimizer; ground truth for SFM tests.
///
/// Returns `(argmin, min)`. Ties break toward the lexicographically first
/// enumerated subset (the empty set first).
///
/// # Panics
///
/// Panics if the ground set exceeds 25 elements.
pub fn brute_force_min<F: SetFunction>(f: &F) -> (Subset, f64) {
    let n = f.ground_size();
    let mut best: Option<(Subset, f64)> = None;
    for s in all_subsets(n) {
        let v = f.eval(&s);
        match &best {
            Some((_, bv)) if *bv <= v => {}
            _ => best = Some((s, v)),
        }
    }
    best.expect("at least the empty set exists")
}

/// Exhaustively finds the nonempty subset minimizing `f(S) / |S|`;
/// ground truth for density-search tests.
///
/// # Panics
///
/// Panics if the ground set exceeds 25 elements or is empty.
pub fn brute_force_min_density<F: SetFunction>(f: &F) -> (Subset, f64) {
    let n = f.ground_size();
    assert!(n > 0, "density undefined on an empty ground set");
    let mut best: Option<(Subset, f64)> = None;
    for s in all_subsets(n) {
        if s.is_empty() {
            continue;
        }
        let v = f.eval(&s) / s.len() as f64;
        match &best {
            Some((_, bv)) if *bv <= v => {}
            _ => best = Some((s, v)),
        }
    }
    best.expect("a nonempty ground set has nonempty subsets")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_fn::{CardinalityCurve, ConcaveCardinality, FnSetFunction, Modular, SumFn};

    #[test]
    fn modular_is_submodular_and_monotone_with_nonneg_weights() {
        let f = Modular::new(vec![1.0, 2.0, 0.0]);
        assert!(is_submodular(&f, 1e-12));
        assert!(is_monotone_nondecreasing(&f, 1e-12));
        assert!(is_normalized(&f, 1e-12));
    }

    #[test]
    fn concave_cardinality_is_submodular() {
        for curve in [
            CardinalityCurve::Sqrt,
            CardinalityCurve::Log1p,
            CardinalityCurve::Saturating(2),
        ] {
            let f = ConcaveCardinality::new(5, curve, 2.0);
            assert!(is_submodular(&f, 1e-12));
            assert!(is_monotone_nondecreasing(&f, 1e-12));
        }
    }

    #[test]
    fn convex_cardinality_is_not_submodular() {
        let f = FnSetFunction::new(4, |s| (s.len() as f64).powi(2));
        assert!(!is_submodular(&f, 1e-12));
        assert!(is_monotone_nondecreasing(&f, 1e-12));
    }

    #[test]
    fn coverage_function_is_submodular_not_modular() {
        // f(S) = |union of sets|: the canonical submodular example.
        let sets = [vec![0, 1], vec![1, 2], vec![2, 3]];
        let f = FnSetFunction::new(3, move |s| {
            let mut covered = std::collections::BTreeSet::new();
            for i in s.iter() {
                covered.extend(sets[i].iter().copied());
            }
            covered.len() as f64
        });
        assert!(is_submodular(&f, 1e-12));
    }

    #[test]
    fn sum_preserves_submodularity() {
        let f = SumFn::new(vec![
            Box::new(Modular::new(vec![1.0, -2.0, 2.0, 0.0])) as Box<dyn SetFunction>,
            Box::new(ConcaveCardinality::new(4, CardinalityCurve::Sqrt, 3.0)),
        ])
        .unwrap();
        assert!(is_submodular(&f, 1e-9));
        // Negative weight makes it non-monotone.
        assert!(!is_monotone_nondecreasing(&f, 1e-9));
    }

    #[test]
    fn brute_force_min_finds_negative_pocket() {
        let f = Modular::new(vec![2.0, -3.0, 1.0, -1.0]);
        let (s, v) = brute_force_min(&f);
        assert_eq!(s.to_vec(), vec![1, 3]);
        assert_eq!(v, -4.0);
    }

    #[test]
    fn brute_force_min_of_nonnegative_is_empty_set() {
        let f = Modular::new(vec![1.0, 2.0]);
        let (s, v) = brute_force_min(&f);
        assert!(s.is_empty());
        assert_eq!(v, 0.0);
    }

    #[test]
    fn brute_force_density_prefers_fee_amortization() {
        // Fixed fee 10 plus per-element cost 1: density of a set of size k is
        // (10 + k)/k, minimized by taking everything.
        let f = FnSetFunction::new(4, |s| {
            if s.is_empty() {
                0.0
            } else {
                10.0 + s.len() as f64
            }
        });
        let (s, v) = brute_force_min_density(&f);
        assert_eq!(s.len(), 4);
        assert!((v - 14.0 / 4.0).abs() < 1e-12);
    }
}
