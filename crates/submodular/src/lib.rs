//! # ccs-submodular — submodular optimization toolkit
//!
//! The optimization substrate behind the CCSA approximation algorithm of the
//! Cooperative Charging as Service reproduction:
//!
//! * [`subset`] — compact bitset subsets of a ground set;
//! * [`set_fn`] — set-function trait and provably submodular combinators
//!   (modular + concave-of-cardinality, sums, cardinality penalties);
//! * [`lovasz`] — Edmonds' greedy base-polytope vertex oracle and the
//!   Lovász extension;
//! * [`mnp`] — exact submodular function minimization via the
//!   Fujishige–Wolfe minimum-norm-point algorithm;
//! * [`minimize`] — the fast exact path for separable objectives and a
//!   local-search baseline;
//! * [`density`] — Dinkelbach minimum-density search
//!   `min_{S≠∅} f(S)/|S|`;
//! * [`check`] — exponential brute-force verifiers used as ground truth in
//!   tests.
//!
//! # Example
//!
//! ```
//! use ccs_submodular::minimize::SeparableFn;
//! use ccs_submodular::set_fn::CardinalityCurve;
//! use ccs_submodular::density::min_density_separable;
//!
//! // A 10-unit hire fee amortized over unit-cost members: the cheapest
//! // per-member group is everyone.
//! let bill = SeparableFn::new(vec![1.0; 5], 10.0, CardinalityCurve::Linear, 0.0);
//! let best = min_density_separable(&bill)?;
//! assert_eq!(best.minimizer.len(), 5);
//! # Ok::<(), ccs_submodular::density::DensityError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod check;
pub mod density;
pub mod lovasz;
pub mod minimize;
pub mod mnp;
pub mod set_fn;
pub mod subset;

/// Convenient glob import of the most commonly used items.
pub mod prelude {
    pub use crate::density::{min_density_mnp, min_density_separable, DensityResult};
    pub use crate::minimize::{separable_min, SeparableFn};
    pub use crate::mnp::{minimize, MnpOptions, SfmResult};
    pub use crate::set_fn::{
        CardinalityCurve, CardinalityPenalized, ConcaveCardinality, FnSetFunction, Modular,
        SetFunction, SumFn,
    };
    pub use crate::subset::Subset;
}
