//! The Lovász extension and Edmonds' greedy vertex oracle for the base
//! polytope of a submodular function.
//!
//! For a *normalized* submodular `f` (`f(∅) = 0`), the base polytope is
//!
//! ```text
//! B(f) = { x ∈ R^n : x(S) <= f(S) ∀S, x(V) = f(V) }
//! ```
//!
//! Edmonds' greedy algorithm solves `min_{v ∈ B(f)} <w, v>` exactly: sort the
//! ground set by increasing `w` and hand out marginals along that order.
//! This is the linear-minimization oracle inside the Fujishige–Wolfe
//! minimum-norm-point algorithm, and also evaluates the Lovász extension.

use crate::set_fn::SetFunction;
use crate::subset::Subset;

/// Sorts ground elements by ascending key with deterministic index
/// tie-breaking.
fn order_by(w: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..w.len()).collect();
    idx.sort_by(|&a, &b| w[a].total_cmp(&w[b]).then(a.cmp(&b)));
    idx
}

/// Ground-set size below which the prefix chain is evaluated inline: for
/// tiny instances the scoped-thread fan-out costs more than the chain.
/// `ccs_par::min_items()` (the batch-wide minimum-work cutoff) dominates
/// this floor, so chains that `ccs-par` would run serially anyway skip the
/// prefix-clone staging entirely.
const PAR_PREFIX_MIN: usize = 16;

/// Evaluates `f` on every prefix of `order`, fanning the evaluations out
/// over `ccs-par` when the chain is long enough to amortize the threads.
///
/// The prefixes are independent subsets once the order is fixed, so the
/// batched values are identical to the serial ones; callers diff adjacent
/// values to recover marginals.
pub(crate) fn prefix_values<F: SetFunction>(f: &F, order: &[usize]) -> Vec<f64> {
    let n = order.len();
    if ccs_par::threads() == 1 || n < PAR_PREFIX_MIN.max(ccs_par::min_items()) {
        let mut values = Vec::with_capacity(n);
        let mut prefix = Subset::empty(f.ground_size());
        for &i in order {
            prefix.insert(i);
            values.push(f.eval(&prefix));
        }
        return values;
    }
    let mut prefixes: Vec<Subset> = Vec::with_capacity(n);
    let mut prefix = Subset::empty(f.ground_size());
    for &i in order {
        prefix.insert(i);
        prefixes.push(prefix.clone());
    }
    ccs_par::par_map(&prefixes, |_, s| f.eval(s))
}

/// Edmonds' greedy vertex: the vertex of `B(f − f(∅))` minimizing `<w, ·>`.
///
/// `f` is normalized internally (its value at the empty set is subtracted),
/// so callers may pass un-normalized functions. The prefix chain — the
/// oracle-evaluation bulk of every min-norm-point major iteration — is
/// evaluated as one parallel batch; results are identical at any thread
/// count.
///
/// Oracle accounting happens in the wrappers the entry points install
/// ([`crate::set_fn::CountingFn`] / [`crate::set_fn::MemoFn`]), not here:
/// this function cannot know whether a probe is fresh or memoized.
///
/// # Panics
///
/// Panics if `w.len() != f.ground_size()`.
pub fn greedy_vertex<F: SetFunction>(f: &F, w: &[f64]) -> Vec<f64> {
    let n = f.ground_size();
    assert_eq!(w.len(), n, "weight vector length mismatch");
    let order = order_by(w);
    let values = prefix_values(f, &order);
    let mut vertex = vec![0.0; n];
    let mut prev = f.at_empty();
    for (&i, &cur) in order.iter().zip(&values) {
        vertex[i] = cur - prev;
        prev = cur;
    }
    vertex
}

/// Evaluates the Lovász extension `f^L(z)` of the normalized `f` at
/// `z ∈ R^n`.
///
/// `f^L(z) = <z, v>` where `v` is the greedy vertex for weights `−z`
/// (equivalently, sort by *decreasing* `z`). For `z` the indicator vector of
/// `S`, `f^L(z) = f(S) − f(∅)`.
///
/// # Panics
///
/// Panics if `z.len() != f.ground_size()`.
pub fn lovasz_extension<F: SetFunction>(f: &F, z: &[f64]) -> f64 {
    let n = f.ground_size();
    assert_eq!(z.len(), n, "argument length mismatch");
    ccs_telemetry::counter!("sfm.lovasz_evals").incr();
    let counted = crate::set_fn::CountingFn::new(f);
    let neg: Vec<f64> = z.iter().map(|v| -v).collect();
    let vertex = greedy_vertex(&counted, &neg);
    z.iter().zip(&vertex).map(|(zi, vi)| zi * vi).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_fn::{CardinalityCurve, ConcaveCardinality, FnSetFunction, Modular};
    use crate::subset::all_subsets;

    #[test]
    fn greedy_vertex_of_modular_is_weights() {
        let f = Modular::new(vec![3.0, -1.0, 2.0]);
        let v = greedy_vertex(&f, &[0.5, 0.1, 0.9]);
        assert_eq!(v, vec![3.0, -1.0, 2.0], "modular marginals are constant");
    }

    #[test]
    fn greedy_vertex_sums_to_f_of_universe() {
        let f = ConcaveCardinality::new(5, CardinalityCurve::Sqrt, 2.0);
        let v = greedy_vertex(&f, &[0.3, -0.2, 0.9, 0.0, 0.5]);
        let total: f64 = v.iter().sum();
        assert!((total - f.eval(&Subset::universe(5))).abs() < 1e-12);
    }

    #[test]
    fn greedy_vertex_respects_polytope_constraints() {
        // x(S) <= f(S) for every S, with equality at the universe.
        let f = ConcaveCardinality::new(4, CardinalityCurve::Log1p, 1.5);
        let v = greedy_vertex(&f, &[0.7, 0.1, 0.4, 0.2]);
        for s in all_subsets(4) {
            let xs: f64 = s.iter().map(|i| v[i]).sum();
            assert!(
                xs <= f.eval(&s) + 1e-9,
                "x(S) = {xs} must be <= f(S) = {} for S = {s}",
                f.eval(&s)
            );
        }
    }

    #[test]
    fn greedy_vertex_normalizes_offset() {
        let f = Modular::with_offset(vec![1.0, 2.0], 100.0);
        let v = greedy_vertex(&f, &[0.0, 0.0]);
        assert_eq!(v, vec![1.0, 2.0], "offset must not leak into marginals");
    }

    #[test]
    fn greedy_vertex_minimizes_linear_objective() {
        // Compare <w, greedy vertex> against vertices from random orders.
        let f = ConcaveCardinality::new(4, CardinalityCurve::Sqrt, 1.0);
        let w = [0.9, -0.5, 0.3, 0.1];
        let v = greedy_vertex(&f, &w);
        let obj: f64 = w.iter().zip(&v).map(|(a, b)| a * b).sum();
        // All 24 permutations give all base vertices for this symmetric f.
        let perms = permutations(4);
        for perm in perms {
            let mut vertex = vec![0.0; 4];
            let mut prefix = Subset::empty(4);
            let mut prev = 0.0;
            for &i in &perm {
                prefix.insert(i);
                let cur = f.eval(&prefix);
                vertex[i] = cur - prev;
                prev = cur;
            }
            let other: f64 = w.iter().zip(&vertex).map(|(a, b)| a * b).sum();
            assert!(obj <= other + 1e-9);
        }
    }

    #[test]
    fn lovasz_extension_agrees_on_indicator_vectors() {
        let f = FnSetFunction::new(4, |s| {
            // fixed fee + modular + sqrt congestion
            if s.is_empty() {
                0.0
            } else {
                5.0 + s.iter().map(|i| i as f64 + 1.0).sum::<f64>() + (s.len() as f64).sqrt()
            }
        });
        for s in all_subsets(4) {
            let z: Vec<f64> = (0..4)
                .map(|i| if s.contains(i) { 1.0 } else { 0.0 })
                .collect();
            let ext = lovasz_extension(&f, &z);
            assert!(
                (ext - f.eval(&s)).abs() < 1e-9,
                "extension {ext} vs f {} at {s}",
                f.eval(&s)
            );
        }
    }

    #[test]
    fn lovasz_extension_is_positively_homogeneous() {
        let f = ConcaveCardinality::new(3, CardinalityCurve::Sqrt, 2.0);
        let z = [0.2, 0.9, 0.4];
        let a = lovasz_extension(&f, &z);
        let scaled: Vec<f64> = z.iter().map(|v| v * 3.0).collect();
        let b = lovasz_extension(&f, &scaled);
        assert!((b - 3.0 * a).abs() < 1e-9);
    }

    fn permutations(n: usize) -> Vec<Vec<usize>> {
        if n == 0 {
            return vec![vec![]];
        }
        let mut out = Vec::new();
        for rest in permutations(n - 1) {
            for pos in 0..=rest.len() {
                let mut p = rest.clone();
                p.insert(pos, n - 1);
                out.push(p);
            }
        }
        out
    }
}
