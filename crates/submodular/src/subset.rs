//! Compact subsets of a ground set `{0, 1, .., n-1}`.
//!
//! [`Subset`] is a growable bitset pinned to a fixed ground-set size. All
//! submodular machinery in this crate operates on it.
//!
//! # Examples
//!
//! ```
//! use ccs_submodular::subset::Subset;
//!
//! let mut s = Subset::empty(10);
//! s.insert(3);
//! s.insert(7);
//! assert_eq!(s.len(), 2);
//! assert!(s.contains(3));
//! assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 7]);
//! let c = s.complement();
//! assert_eq!(c.len(), 8);
//! ```

use std::fmt;

const BITS: usize = 64;

/// A subset of `{0, .., ground_size - 1}`, stored as a bitset.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Subset {
    blocks: Vec<u64>,
    ground_size: usize,
}

impl Subset {
    /// The empty subset of a ground set of size `n`.
    pub fn empty(n: usize) -> Self {
        Subset {
            blocks: vec![0; n.div_ceil(BITS)],
            ground_size: n,
        }
    }

    /// The full ground set of size `n`.
    pub fn universe(n: usize) -> Self {
        let mut s = Subset::empty(n);
        for i in 0..n {
            s.insert(i);
        }
        s
    }

    /// A subset from an iterator of element indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= n`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(n: usize, indices: I) -> Self {
        let mut s = Subset::empty(n);
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// Decodes the low `n` bits of `mask` as a subset (handy in exhaustive
    /// enumeration loops; requires `n <= 64`).
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn from_mask(n: usize, mask: u64) -> Self {
        assert!(n <= 64, "from_mask supports ground sets up to 64");
        let mut s = Subset::empty(n);
        if n > 0 {
            let valid = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
            s.blocks[0] = mask & valid;
        }
        s
    }

    /// Ground-set size this subset is pinned to.
    #[inline]
    pub fn ground_size(&self) -> usize {
        self.ground_size
    }

    /// Number of elements in the subset.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether the subset is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Whether element `i` is in the subset.
    ///
    /// # Panics
    ///
    /// Panics if `i >= ground_size`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.ground_size, "element {i} out of ground set");
        self.blocks[i / BITS] & (1 << (i % BITS)) != 0
    }

    /// Inserts element `i`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= ground_size`.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.ground_size, "element {i} out of ground set");
        let block = &mut self.blocks[i / BITS];
        let bit = 1 << (i % BITS);
        let fresh = *block & bit == 0;
        *block |= bit;
        fresh
    }

    /// Removes element `i`; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `i >= ground_size`.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.ground_size, "element {i} out of ground set");
        let block = &mut self.blocks[i / BITS];
        let bit = 1 << (i % BITS);
        let present = *block & bit != 0;
        *block &= !bit;
        present
    }

    /// A copy with element `i` inserted.
    pub fn with(&self, i: usize) -> Self {
        let mut s = self.clone();
        s.insert(i);
        s
    }

    /// A copy with element `i` removed.
    pub fn without(&self, i: usize) -> Self {
        let mut s = self.clone();
        s.remove(i);
        s
    }

    /// The complement within the ground set.
    pub fn complement(&self) -> Self {
        let mut s = Subset::empty(self.ground_size);
        for i in 0..self.ground_size {
            if !self.contains(i) {
                s.insert(i);
            }
        }
        s
    }

    /// Set union.
    ///
    /// # Panics
    ///
    /// Panics if ground sizes differ.
    pub fn union(&self, other: &Subset) -> Self {
        self.zip_blocks(other, |a, b| a | b)
    }

    /// Set intersection.
    ///
    /// # Panics
    ///
    /// Panics if ground sizes differ.
    pub fn intersection(&self, other: &Subset) -> Self {
        self.zip_blocks(other, |a, b| a & b)
    }

    /// Set difference `self \ other`.
    ///
    /// # Panics
    ///
    /// Panics if ground sizes differ.
    pub fn difference(&self, other: &Subset) -> Self {
        self.zip_blocks(other, |a, b| a & !b)
    }

    /// Whether `self` is a subset of `other`.
    ///
    /// # Panics
    ///
    /// Panics if ground sizes differ.
    pub fn is_subset_of(&self, other: &Subset) -> bool {
        assert_eq!(self.ground_size, other.ground_size, "ground size mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    fn zip_blocks(&self, other: &Subset, op: impl Fn(u64, u64) -> u64) -> Self {
        assert_eq!(self.ground_size, other.ground_size, "ground size mismatch");
        Subset {
            blocks: self
                .blocks
                .iter()
                .zip(&other.blocks)
                .map(|(&a, &b)| op(a, b))
                .collect(),
            ground_size: self.ground_size,
        }
    }

    /// Iterator over the elements in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            subset: self,
            next: 0,
        }
    }

    /// Collects the elements into a `Vec` in ascending order.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

impl fmt::Debug for Subset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Subset{:?}", self.to_vec())
    }
}

impl fmt::Display for Subset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, i) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

/// Iterator over the elements of a [`Subset`] in ascending order.
#[derive(Debug)]
pub struct Iter<'a> {
    subset: &'a Subset,
    next: usize,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.next < self.subset.ground_size {
            let i = self.next;
            self.next += 1;
            if self.subset.contains(i) {
                return Some(i);
            }
        }
        None
    }
}

impl<'a> IntoIterator for &'a Subset {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Enumerates all `2^n` subsets of a ground set of size `n <= 25` (guard
/// against accidental exponential blowups in tests).
///
/// # Panics
///
/// Panics if `n > 25`.
pub fn all_subsets(n: usize) -> impl Iterator<Item = Subset> {
    assert!(n <= 25, "exhaustive enumeration limited to n <= 25");
    (0u64..(1u64 << n)).map(move |mask| Subset::from_mask(n, mask))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_universe() {
        let e = Subset::empty(70);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.ground_size(), 70);
        let u = Subset::universe(70);
        assert_eq!(u.len(), 70);
        assert!(u.contains(0) && u.contains(69));
        assert_eq!(u.complement(), e);
        assert_eq!(e.complement(), u);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = Subset::empty(100);
        assert!(s.insert(65));
        assert!(!s.insert(65), "second insert is not fresh");
        assert!(s.contains(65));
        assert!(!s.contains(64));
        assert!(s.remove(65));
        assert!(!s.remove(65), "second remove finds nothing");
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of ground set")]
    fn contains_out_of_range_panics() {
        let s = Subset::empty(5);
        let _ = s.contains(5);
    }

    #[test]
    fn with_without_are_nonmutating() {
        let s = Subset::from_indices(10, [1, 2]);
        let t = s.with(5);
        assert!(!s.contains(5) && t.contains(5));
        let r = t.without(1);
        assert!(t.contains(1) && !r.contains(1));
    }

    #[test]
    fn set_algebra() {
        let a = Subset::from_indices(10, [0, 1, 2]);
        let b = Subset::from_indices(10, [2, 3]);
        assert_eq!(a.union(&b).to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(a.intersection(&b).to_vec(), vec![2]);
        assert_eq!(a.difference(&b).to_vec(), vec![0, 1]);
        assert!(Subset::from_indices(10, [1]).is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        assert!(a.is_subset_of(&a));
    }

    #[test]
    #[should_panic(expected = "ground size mismatch")]
    fn algebra_rejects_mismatched_ground() {
        let _ = Subset::empty(5).union(&Subset::empty(6));
    }

    #[test]
    fn iter_ascending_across_blocks() {
        let s = Subset::from_indices(130, [0, 63, 64, 127, 129]);
        assert_eq!(s.to_vec(), vec![0, 63, 64, 127, 129]);
        assert_eq!(s.len(), 5);
        let via_ref: Vec<usize> = (&s).into_iter().collect();
        assert_eq!(via_ref, s.to_vec());
    }

    #[test]
    fn from_mask_round_trip() {
        let s = Subset::from_mask(6, 0b101001);
        assert_eq!(s.to_vec(), vec![0, 3, 5]);
        let full = Subset::from_mask(64, u64::MAX);
        assert_eq!(full.len(), 64);
        // Bits beyond n are masked off.
        let masked = Subset::from_mask(3, 0b11111);
        assert_eq!(masked.to_vec(), vec![0, 1, 2]);
    }

    #[test]
    fn all_subsets_counts() {
        assert_eq!(all_subsets(0).count(), 1);
        assert_eq!(all_subsets(4).count(), 16);
        let total_len: usize = all_subsets(4).map(|s| s.len()).sum();
        assert_eq!(total_len, 4 * 8, "each element appears in half the sets");
    }

    #[test]
    fn display_and_debug() {
        let s = Subset::from_indices(5, [1, 3]);
        assert_eq!(s.to_string(), "{1, 3}");
        assert_eq!(format!("{s:?}"), "Subset[1, 3]");
        assert_eq!(Subset::empty(3).to_string(), "{}");
    }
}
