//! Exact submodular function minimization via the Fujishige–Wolfe
//! minimum-norm-point algorithm.
//!
//! Fujishige's theorem: if `x*` is the minimum-norm point of the base
//! polytope `B(f)` of a normalized submodular `f`, then
//! `S* = { i : x*_i < 0 }` minimizes `f` (and `{ i : x*_i <= 0 }` is the
//! maximal minimizer). Wolfe's algorithm finds `x*` by maintaining a small
//! affine basis of polytope vertices, alternating *major* steps (add the
//! vertex minimizing `<x, ·>`, from Edmonds' greedy oracle) and *minor*
//! steps (move to the affine minimizer of the basis, dropping vertices whose
//! convex coefficient would turn negative).
//!
//! For robustness against floating-point noise the minimizer is extracted by
//! scanning all prefixes of the ground set sorted by `x*` (which provably
//! contains a true minimizer for exact arithmetic) and returning the best.
//!
//! # Examples
//!
//! ```
//! use ccs_submodular::set_fn::Modular;
//! use ccs_submodular::mnp::{minimize, MnpOptions};
//!
//! // min over S of sum of weights: take exactly the negative elements.
//! let f = Modular::new(vec![2.0, -3.0, 1.0, -1.0]);
//! let result = minimize(&f, MnpOptions::default());
//! assert_eq!(result.minimizer.to_vec(), vec![1, 3]);
//! assert_eq!(result.value, -4.0);
//! ```

use crate::lovasz::greedy_vertex;
use crate::set_fn::{MemoFn, SetFunction};
use crate::subset::Subset;

/// Options for [`minimize`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MnpOptions {
    /// Relative duality-gap tolerance of the Wolfe loop.
    pub tolerance: f64,
    /// Hard cap on major iterations (vertex additions). `0` means
    /// `10 * n + 100`.
    pub max_major_iterations: usize,
}

impl Default for MnpOptions {
    fn default() -> Self {
        MnpOptions {
            tolerance: 1e-10,
            max_major_iterations: 0,
        }
    }
}

/// Result of a submodular function minimization.
#[derive(Debug, Clone)]
pub struct SfmResult {
    /// A minimizing subset.
    pub minimizer: Subset,
    /// `f(minimizer)` (in the caller's un-normalized scale).
    pub value: f64,
    /// The minimum-norm point of the base polytope (normalized `f`).
    pub min_norm_point: Vec<f64>,
    /// Number of major (vertex-adding) iterations performed.
    pub major_iterations: usize,
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Solves `G z = 1` (ones vector) with partial pivoting; retries with an
/// increasing ridge when the Gram matrix is numerically singular (affinely
/// dependent vertices).
fn solve_gram_ones(gram: &[Vec<f64>]) -> Option<Vec<f64>> {
    let k = gram.len();
    let trace: f64 = (0..k).map(|i| gram[i][i]).sum();
    let mut ridge = 0.0;
    for _attempt in 0..4 {
        let mut a: Vec<Vec<f64>> = gram.to_vec();
        for (i, row) in a.iter_mut().enumerate() {
            row[i] += ridge;
        }
        let mut b = vec![1.0; k];
        if gaussian_solve(&mut a, &mut b) {
            return Some(b);
        }
        ridge = if ridge == 0.0 {
            1e-12 * (1.0 + trace / k as f64)
        } else {
            ridge * 1e3
        };
    }
    None
}

/// In-place Gaussian elimination with partial pivoting. Returns `false` on a
/// pivot below tolerance.
fn gaussian_solve(a: &mut [Vec<f64>], b: &mut [f64]) -> bool {
    let k = a.len();
    for col in 0..k {
        let pivot_row = (col..k)
            .max_by(|&r1, &r2| a[r1][col].abs().total_cmp(&a[r2][col].abs()))
            .expect("nonempty range");
        if a[pivot_row][col].abs() < 1e-13 {
            return false;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        for row in (col + 1)..k {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            let (pivot_rows, rest) = a.split_at_mut(col + 1);
            let pivot_row_vals = &pivot_rows[col];
            let row_vals = &mut rest[row - col - 1];
            for (rv, pv) in row_vals[col..k].iter_mut().zip(&pivot_row_vals[col..k]) {
                *rv -= factor * pv;
            }
            b[row] -= factor * b[col];
        }
    }
    for col in (0..k).rev() {
        let mut v = b[col];
        for c in (col + 1)..k {
            v -= a[col][c] * b[c];
        }
        b[col] = v / a[col][col];
    }
    b.iter().all(|v| v.is_finite())
}

/// Affine minimizer coefficients of the vertex set `points`: the `α` with
/// `Σ α_i = 1` minimizing `||Σ α_i points_i||²` (signs unconstrained).
fn affine_minimizer(points: &[Vec<f64>]) -> Option<Vec<f64>> {
    let k = points.len();
    let mut gram = vec![vec![0.0; k]; k];
    for i in 0..k {
        for j in i..k {
            let g = dot(&points[i], &points[j]);
            gram[i][j] = g;
            gram[j][i] = g;
        }
    }
    let z = solve_gram_ones(&gram)?;
    let sum: f64 = z.iter().sum();
    if sum.abs() < 1e-300 || !sum.is_finite() {
        return None;
    }
    Some(z.iter().map(|v| v / sum).collect())
}

fn combine(points: &[Vec<f64>], coeffs: &[f64], n: usize) -> Vec<f64> {
    let mut x = vec![0.0; n];
    for (p, &c) in points.iter().zip(coeffs) {
        for (xi, pi) in x.iter_mut().zip(p) {
            *xi += c * pi;
        }
    }
    x
}

/// Minimizes a submodular function exactly (up to floating point) using the
/// Fujishige–Wolfe minimum-norm-point algorithm.
///
/// The function is normalized internally (`f(∅)` subtracted); the returned
/// `value` is in the caller's original scale. Ties prefer the minimal
/// minimizer (strictly negative coordinates of the min-norm point), and the
/// empty set is always a candidate, so for nonnegative normalized functions
/// the empty set is returned.
///
/// The caller is responsible for actually passing a *submodular* function;
/// on non-submodular input the result is a heuristic local answer.
pub fn minimize<F: SetFunction>(f: &F, options: MnpOptions) -> SfmResult {
    minimize_warm(f, options, None)
}

/// [`minimize`] with an optional warm-start set.
///
/// When `warm` is given (typically the minimizer of a *nearby* problem —
/// Dinkelbach density search re-minimizes `f − λ|S|` with only `λ` moving),
/// the initial polytope vertex is the greedy vertex for the direction that
/// sorts `warm`'s members first. Its prefix chain then walks straight
/// through the previous minimizer, so the first major iteration already
/// starts near the answer and the Wolfe loop converges in fewer vertex
/// additions. The result is the same minimum (up to the usual floating
/// tolerance) regardless of `warm` — only the path changes.
///
/// Every oracle probe runs through a per-call [`MemoFn`], so the prefix
/// chains shared between consecutive major iterations (and the final
/// extraction sweep) are evaluated once, and `sfm.oracle_evals` counts
/// exactly the distinct subsets evaluated.
pub fn minimize_warm<F: SetFunction>(
    f: &F,
    options: MnpOptions,
    warm: Option<&Subset>,
) -> SfmResult {
    ccs_telemetry::counter!("sfm.mnp_calls").incr();
    let f = MemoFn::new(f);
    let f = &f;
    let n = f.ground_size();
    if n == 0 {
        return SfmResult {
            minimizer: Subset::empty(0),
            value: f.at_empty(),
            min_norm_point: Vec::new(),
            major_iterations: 0,
        };
    }

    let max_major = if options.max_major_iterations == 0 {
        10 * n + 100
    } else {
        options.max_major_iterations
    };

    // Initial vertex: warm-started toward the previous minimizer, or from
    // an arbitrary direction.
    let w0: Vec<f64> = match warm {
        Some(s) => {
            assert_eq!(s.ground_size(), n, "warm-start ground size mismatch");
            (0..n)
                .map(|i| if s.contains(i) { -1.0 } else { 0.0 })
                .collect()
        }
        None => vec![0.0; n],
    };
    let x0 = greedy_vertex(f, &w0);
    let mut vertices: Vec<Vec<f64>> = vec![x0.clone()];
    let mut coeffs: Vec<f64> = vec![1.0];
    let mut x = x0;
    let mut major_iterations = 0;

    while major_iterations < max_major {
        major_iterations += 1;

        // Major step: linear oracle toward the most improving vertex.
        let q = greedy_vertex(f, &x);
        let xx = dot(&x, &x);
        let xq = dot(&x, &q);
        if xx - xq <= options.tolerance * (1.0 + xx.abs()) {
            break; // x is (numerically) the min-norm point.
        }
        // Guard against re-adding an existing vertex (numerical stall).
        let dup = vertices.iter().any(|v| {
            v.iter()
                .zip(&q)
                .all(|(a, b)| (a - b).abs() <= 1e-12 * (1.0 + a.abs()))
        });
        if dup {
            break;
        }
        vertices.push(q);
        coeffs.push(0.0);

        // Minor loop: project onto the affine hull, dropping vertices whose
        // coefficient would go negative. Each pass removes at least one
        // vertex or terminates, so it runs at most |vertices| times.
        loop {
            let alpha = match affine_minimizer(&vertices) {
                Some(a) => a,
                None => {
                    // Degenerate basis: drop the oldest vertex and retry;
                    // if only one remains, keep it.
                    if vertices.len() > 1 {
                        vertices.remove(0);
                        coeffs.remove(0);
                        continue;
                    }
                    coeffs = vec![1.0];
                    break;
                }
            };
            if alpha.iter().all(|&a| a >= -1e-12) {
                coeffs = alpha.iter().map(|&a| a.max(0.0)).collect();
                break;
            }
            // Step from coeffs toward alpha until the first coefficient hits 0.
            let mut theta = 1.0f64;
            for (&l, &a) in coeffs.iter().zip(&alpha) {
                if a < -1e-12 {
                    theta = theta.min(l / (l - a));
                }
            }
            let theta = theta.clamp(0.0, 1.0);
            for (l, &a) in coeffs.iter_mut().zip(&alpha) {
                *l = (1.0 - theta) * *l + theta * a;
            }
            // Drop vanished vertices.
            let mut i = 0;
            while i < coeffs.len() {
                if coeffs[i] <= 1e-12 {
                    coeffs.remove(i);
                    vertices.remove(i);
                } else {
                    i += 1;
                }
            }
            if vertices.is_empty() {
                // Should not happen; restore a safe state.
                let v = greedy_vertex(f, &vec![0.0; n]);
                vertices.push(v);
                coeffs = vec![1.0];
                break;
            }
            // Renormalize to guard drift.
            let s: f64 = coeffs.iter().sum();
            if s > 0.0 {
                for c in coeffs.iter_mut() {
                    *c /= s;
                }
            }
        }
        x = combine(&vertices, &coeffs, n);
    }

    // Robust extraction: all prefixes of the ground set ordered by x*,
    // plus the empty set, are candidate minimizers. The prefix values are
    // one parallel oracle batch; the scan stays serial so the first-best
    // tie-break is identical at any thread count.
    let offset = f.at_empty();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| x[a].total_cmp(&x[b]).then(a.cmp(&b)));
    let values = crate::lovasz::prefix_values(f, &order);
    let mut best_set = Subset::empty(n);
    let mut best_val = 0.0; // normalized f(∅) = 0
    let mut prefix = Subset::empty(n);
    for (&i, &raw) in order.iter().zip(&values) {
        prefix.insert(i);
        let v = raw - offset;
        if v < best_val - 1e-15 {
            best_val = v;
            best_set = prefix.clone();
        }
    }

    ccs_telemetry::counter!("sfm.mnp_major_iters").add(major_iterations as u64);

    SfmResult {
        value: best_val + offset,
        minimizer: best_set,
        min_norm_point: x,
        major_iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{brute_force_min, is_submodular};
    use crate::set_fn::{
        CardinalityCurve, CardinalityPenalized, ConcaveCardinality, FnSetFunction, Modular, SumFn,
    };
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn assert_matches_brute_force<F: SetFunction>(f: &F) {
        let (_, expected) = brute_force_min(f);
        let got = minimize(f, MnpOptions::default());
        assert!(
            (got.value - expected).abs() < 1e-8,
            "mnp found {} but brute force found {}",
            got.value,
            expected
        );
        let check = f.eval(&got.minimizer);
        assert!(
            (check - got.value).abs() < 1e-9,
            "reported value must match reported set"
        );
    }

    #[test]
    fn empty_ground_set() {
        let f = Modular::new(vec![]);
        let r = minimize(&f, MnpOptions::default());
        assert_eq!(r.minimizer.ground_size(), 0);
        assert_eq!(r.value, 0.0);
    }

    #[test]
    fn modular_minimization_selects_negatives() {
        let f = Modular::new(vec![2.0, -3.0, 1.0, -1.0, 0.5]);
        let r = minimize(&f, MnpOptions::default());
        assert_eq!(r.minimizer.to_vec(), vec![1, 3]);
        assert_eq!(r.value, -4.0);
    }

    #[test]
    fn nonnegative_function_minimized_by_empty_set() {
        let f = ConcaveCardinality::new(6, CardinalityCurve::Sqrt, 3.0);
        let r = minimize(&f, MnpOptions::default());
        assert!(r.minimizer.is_empty());
        assert_eq!(r.value, 0.0);
    }

    #[test]
    fn offset_does_not_change_minimizer() {
        let f = Modular::with_offset(vec![1.0, -2.0], 50.0);
        let r = minimize(&f, MnpOptions::default());
        assert_eq!(r.minimizer.to_vec(), vec![1]);
        assert!((r.value - 48.0).abs() < 1e-9);
    }

    #[test]
    fn penalized_bill_shape_matches_brute_force() {
        // The exact structure CCSA minimizes: fee + modular + congestion − λ|S|.
        for lambda in [0.5, 2.0, 5.0, 10.0] {
            let bill = SumFn::new(vec![
                Box::new(Modular::new(vec![3.0, 1.0, 4.0, 1.5, 2.5])) as Box<dyn SetFunction>,
                Box::new(FnSetFunction::new(
                    5,
                    |s| if s.is_empty() { 0.0 } else { 6.0 },
                )),
                Box::new(ConcaveCardinality::new(5, CardinalityCurve::Sqrt, 2.0)),
            ])
            .unwrap();
            let f = CardinalityPenalized::new(bill, lambda);
            assert!(is_submodular(&f, 1e-9));
            assert_matches_brute_force(&f);
        }
    }

    #[test]
    fn random_submodular_instances_match_brute_force() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for trial in 0..40 {
            let n = rng.gen_range(1..=8);
            let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let scale = rng.gen_range(0.0..3.0);
            let curve = match trial % 3 {
                0 => CardinalityCurve::Sqrt,
                1 => CardinalityCurve::Log1p,
                _ => CardinalityCurve::Saturating(2),
            };
            let f = SumFn::new(vec![
                Box::new(Modular::new(weights)) as Box<dyn SetFunction>,
                Box::new(ConcaveCardinality::new(n, curve, scale)),
            ])
            .unwrap();
            assert!(is_submodular(&f, 1e-9), "trial {trial} not submodular");
            assert_matches_brute_force(&f);
        }
    }

    #[test]
    fn cut_function_minimization() {
        // Graph cut functions are submodular. Path graph 0-1-2-3 with unit
        // edges: f(S) = #edges crossing the cut. Minimum is 0 (empty/full).
        let edges = [(0usize, 1usize), (1, 2), (2, 3)];
        let f = FnSetFunction::new(4, move |s| {
            edges
                .iter()
                .filter(|(u, v)| s.contains(*u) != s.contains(*v))
                .count() as f64
        });
        assert!(is_submodular(&f, 1e-12));
        let r = minimize(&f, MnpOptions::default());
        assert_eq!(r.value, 0.0);
    }

    #[test]
    fn shifted_cut_function_finds_nontrivial_cut() {
        // Cut minus rewards for taking vertices: forces a nontrivial set.
        let edges = [(0usize, 1usize), (1, 2), (2, 3), (3, 0)];
        let reward = [1.5, 0.2, 1.5, 0.2];
        let f = FnSetFunction::new(4, move |s| {
            let cut = edges
                .iter()
                .filter(|(u, v)| s.contains(*u) != s.contains(*v))
                .count() as f64;
            let r: f64 = s.iter().map(|i| reward[i]).sum();
            cut - r
        });
        assert!(is_submodular(&f, 1e-12));
        assert_matches_brute_force(&f);
    }

    #[test]
    fn warm_start_finds_the_same_minimum() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for _ in 0..20 {
            let n = rng.gen_range(1..=8);
            let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let f = SumFn::new(vec![
                Box::new(Modular::new(weights)) as Box<dyn SetFunction>,
                Box::new(ConcaveCardinality::new(n, CardinalityCurve::Sqrt, 1.5)),
            ])
            .unwrap();
            let cold = minimize(&f, MnpOptions::default());
            // Warm-start from the answer itself, from the empty set, and
            // from the full set: all must land on the same minimum.
            for warm in [
                cold.minimizer.clone(),
                Subset::empty(n),
                Subset::universe(n),
            ] {
                let warmed = minimize_warm(&f, MnpOptions::default(), Some(&warm));
                assert!(
                    (warmed.value - cold.value).abs() < 1e-8,
                    "warm {} vs cold {}",
                    warmed.value,
                    cold.value
                );
            }
        }
    }

    #[test]
    fn larger_instance_runs_within_iteration_budget() {
        let n = 60;
        let weights: Vec<f64> = (0..n).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let f = SumFn::new(vec![
            Box::new(Modular::new(weights)) as Box<dyn SetFunction>,
            Box::new(ConcaveCardinality::new(n, CardinalityCurve::Sqrt, 4.0)),
        ])
        .unwrap();
        let r = minimize(&f, MnpOptions::default());
        assert!(r.major_iterations <= 10 * n + 100);
        // Verify against the fast exact answer for this separable form:
        // choosing the k most negative weights and comparing all k.
        let mut sorted: Vec<f64> = (0..n).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        sorted.sort_by(f64::total_cmp);
        let mut best = 0.0f64;
        let mut acc = 0.0;
        for (k, w) in sorted.iter().enumerate() {
            acc += w;
            best = best.min(acc + 4.0 * ((k + 1) as f64).sqrt());
        }
        assert!(
            (r.value - best).abs() < 1e-7,
            "mnp {} vs analytic {}",
            r.value,
            best
        );
    }
}
