//! Minimum-density subset search: `min_{S ≠ ∅} f(S) / |S|`.
//!
//! CCSA's inner loop asks, for each candidate facility, *which group of
//! devices has the cheapest per-member bill*. That is a minimum-ratio
//! problem, solved exactly by **Dinkelbach's algorithm**: repeatedly
//! minimize the parametric function `f(S) − λ|S|` (submodular whenever `f`
//! is, so each step is an SFM call) and tighten `λ` to the ratio of the
//! minimizer, until no subset beats the current ratio.
//!
//! Two inner oracles are provided: the general min-norm-point SFM and the
//! `O(n log n)` exact path for [`SeparableFn`] objectives.

use crate::minimize::{separable_min, SeparableFn};
use crate::mnp::{minimize_warm, MnpOptions};
use crate::set_fn::{CardinalityPenalized, CountingFn, SetFunction};
use crate::subset::Subset;
use std::fmt;

/// Error from density search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DensityError {
    /// The ground set was empty, so no nonempty subset exists.
    EmptyGroundSet,
    /// `f(∅)` was not (numerically) zero; the ratio `f(S)/|S|` is only
    /// meaningful for normalized functions.
    NotNormalized,
}

impl fmt::Display for DensityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DensityError::EmptyGroundSet => write!(f, "ground set is empty"),
            DensityError::NotNormalized => {
                write!(
                    f,
                    "set function must satisfy f(empty) = 0 for density search"
                )
            }
        }
    }
}

impl std::error::Error for DensityError {}

/// Result of a minimum-density search.
#[derive(Debug, Clone)]
pub struct DensityResult {
    /// A nonempty subset achieving the minimum ratio.
    pub minimizer: Subset,
    /// The minimum value of `f(S)/|S|`.
    pub density: f64,
    /// Dinkelbach iterations performed (SFM calls).
    pub iterations: usize,
}

const MAX_DINKELBACH_ITERATIONS: usize = 64;
const RATIO_TOLERANCE: f64 = 1e-9;

/// Dinkelbach iteration shared by both oracles. `inner(lambda)` must return
/// a global minimizer of `f(S) − λ|S|` (the empty set allowed); it is
/// `FnMut` so the inner solver may carry state across iterations (the MNP
/// oracle warm-starts each minimization from the previous minimizer).
///
/// The seeding and ratio-refresh probes run through a [`CountingFn`], so
/// `sfm.oracle_evals` counts what was actually evaluated here; the inner
/// minimizer accounts for its own probes.
fn dinkelbach<F, O>(f: &F, mut inner: O) -> Result<DensityResult, DensityError>
where
    F: SetFunction,
    O: FnMut(f64) -> (Subset, f64),
{
    let f = CountingFn::new(f);
    let n = f.ground_size();
    if n == 0 {
        return Err(DensityError::EmptyGroundSet);
    }
    if f.at_empty().abs() > 1e-9 {
        return Err(DensityError::NotNormalized);
    }

    // Start from the cheapest singleton ratio (an upper bound on the
    // answer). The n singleton probes are independent, so they run as one
    // parallel oracle batch; the min is then taken over the batch in index
    // order, which reproduces the serial scan's selection exactly.
    let empty = Subset::empty(n);
    let singleton_values: Vec<f64> = ccs_par::par_eval(n, |i| f.eval(&empty.with(i)));
    let (mut best_set, mut best_ratio) = singleton_values
        .iter()
        .enumerate()
        .map(|(i, &r)| (empty.with(i), r))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("nonempty ground set has singletons");

    let mut iterations = 0;
    while iterations < MAX_DINKELBACH_ITERATIONS {
        iterations += 1;
        let (s, h_min) = inner(best_ratio);
        if s.is_empty() || h_min >= -RATIO_TOLERANCE * (1.0 + best_ratio.abs()) {
            break; // No subset has ratio strictly below best_ratio.
        }
        let ratio = f.eval(&s) / s.len() as f64;
        if ratio >= best_ratio - RATIO_TOLERANCE * (1.0 + best_ratio.abs()) {
            break; // Numerical stall; best_ratio is the answer.
        }
        best_ratio = ratio;
        best_set = s;
    }

    ccs_telemetry::counter!("sfm.dinkelbach_calls").incr();
    ccs_telemetry::counter!("sfm.dinkelbach_iters").add(iterations as u64);

    Ok(DensityResult {
        minimizer: best_set,
        density: best_ratio,
        iterations,
    })
}

/// Minimum-density search for a general (normalized) submodular `f`, using
/// the min-norm-point algorithm for the inner parametric minimizations.
///
/// Consecutive Dinkelbach iterations minimize `f − λ|S|` for nearby `λ`, so
/// each MNP call after the first is warm-started from the previous
/// iteration's minimizer ([`minimize_warm`]) — the Wolfe loop starts at a
/// vertex whose prefix chain passes through the old answer and typically
/// converges in a fraction of the cold-start major iterations.
///
/// # Errors
///
/// Returns [`DensityError::EmptyGroundSet`] for `n = 0` and
/// [`DensityError::NotNormalized`] when `f(∅) ≠ 0`.
pub fn min_density_mnp<F: SetFunction>(
    f: &F,
    options: MnpOptions,
) -> Result<DensityResult, DensityError> {
    let mut prev: Option<Subset> = None;
    dinkelbach(f, move |lambda| {
        let penalized = CardinalityPenalized::new(f, lambda);
        let r = minimize_warm(&penalized, options, prev.as_ref());
        prev = Some(r.minimizer.clone());
        (r.minimizer, r.value)
    })
}

/// Minimum-density search for the separable family, using the exact
/// `O(n log n)` inner minimizer — the fast path CCSA runs in production.
///
/// # Errors
///
/// Returns [`DensityError::EmptyGroundSet`] for `n = 0`. Separable
/// functions are normalized by construction.
pub fn min_density_separable(f: &SeparableFn) -> Result<DensityResult, DensityError> {
    dinkelbach(f, |lambda| separable_min(f, lambda))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::brute_force_min_density;
    use crate::set_fn::{CardinalityCurve, FnSetFunction};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn empty_ground_set_is_an_error() {
        let f = SeparableFn::new(vec![], 0.0, CardinalityCurve::Linear, 0.0);
        assert_eq!(
            min_density_separable(&f).unwrap_err(),
            DensityError::EmptyGroundSet
        );
    }

    #[test]
    fn unnormalized_function_is_an_error() {
        let f = FnSetFunction::new(3, |_| 7.0);
        assert_eq!(
            min_density_mnp(&f, MnpOptions::default()).unwrap_err(),
            DensityError::NotNormalized
        );
    }

    #[test]
    fn fee_amortization_takes_whole_group() {
        // fee 10, unit weights: density (10 + k)/k strictly decreasing in k.
        let f = SeparableFn::new(vec![1.0; 6], 10.0, CardinalityCurve::Linear, 0.0);
        let r = min_density_separable(&f).unwrap();
        assert_eq!(r.minimizer.len(), 6);
        assert!((r.density - 16.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn expensive_member_is_left_out() {
        // fee 4, weights [1, 1, 100]: best group is {0, 1} with (4+2)/2 = 3.
        let f = SeparableFn::new(vec![1.0, 1.0, 100.0], 4.0, CardinalityCurve::Linear, 0.0);
        let r = min_density_separable(&f).unwrap();
        assert_eq!(r.minimizer.to_vec(), vec![0, 1]);
        assert!((r.density - 3.0).abs() < 1e-9);
    }

    #[test]
    fn separable_density_matches_brute_force_randomized() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for trial in 0..60 {
            let n = rng.gen_range(1..=9);
            let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..5.0)).collect();
            let fee = rng.gen_range(0.0..8.0);
            let scale = rng.gen_range(0.0..2.0);
            let f = SeparableFn::new(weights, fee, CardinalityCurve::Sqrt, scale);
            let r = min_density_separable(&f).unwrap();
            let (_, expected) = brute_force_min_density(&f);
            assert!(
                (r.density - expected).abs() < 1e-8,
                "trial {trial}: dinkelbach {} vs brute {expected}",
                r.density
            );
            let check = f.eval(&r.minimizer) / r.minimizer.len() as f64;
            assert!((check - r.density).abs() < 1e-9);
        }
    }

    #[test]
    fn mnp_density_matches_separable_fast_path() {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        for _ in 0..20 {
            let n = rng.gen_range(1..=7);
            let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..5.0)).collect();
            let fee = rng.gen_range(0.0..6.0);
            let f = SeparableFn::new(weights, fee, CardinalityCurve::Log1p, 1.0);
            let fast = min_density_separable(&f).unwrap();
            let general = min_density_mnp(&f, MnpOptions::default()).unwrap();
            assert!(
                (fast.density - general.density).abs() < 1e-7,
                "fast {} vs mnp {}",
                fast.density,
                general.density
            );
        }
    }

    #[test]
    fn density_with_negative_weights() {
        // Negative-weight elements (subsidized members) should be scooped up.
        let f = SeparableFn::new(vec![-2.0, 3.0], 1.0, CardinalityCurve::Linear, 0.0);
        let r = min_density_separable(&f).unwrap();
        let (_, expected) = brute_force_min_density(&f);
        assert!((r.density - expected).abs() < 1e-9);
        assert!(r.density < 0.0);
    }

    #[test]
    fn iterations_stay_bounded() {
        let f = SeparableFn::new(vec![1.0; 20], 30.0, CardinalityCurve::Sqrt, 3.0);
        let r = min_density_separable(&f).unwrap();
        assert!(r.iterations <= MAX_DINKELBACH_ITERATIONS);
        assert!(r.iterations >= 1);
    }
}
