//! Set functions and the combinators used to assemble submodular objectives.
//!
//! Everything is built from two provably submodular ingredients:
//!
//! * [`Modular`] — `f(S) = offset + Σ_{i∈S} w_i` (modular, hence submodular);
//! * [`ConcaveCardinality`] — `f(S) = scale · g(|S|)` for concave
//!   nondecreasing `g` with `g(0) = 0` (classically submodular).
//!
//! Nonnegative-weighted sums of submodular functions are submodular, so
//! [`SumFn`] closes the family. The CCS group-bill objective is exactly
//! `Modular + ConcaveCardinality` (see `ccs-core`).
//!
//! # Examples
//!
//! ```
//! use ccs_submodular::set_fn::{Modular, ConcaveCardinality, CardinalityCurve, SetFunction, SumFn};
//! use ccs_submodular::subset::Subset;
//!
//! let energy = Modular::new(vec![3.0, 1.0, 2.0]);
//! let congestion = ConcaveCardinality::new(3, CardinalityCurve::Sqrt, 2.0);
//! let bill = SumFn::new(vec![
//!     Box::new(energy) as Box<dyn SetFunction>,
//!     Box::new(congestion),
//! ]).unwrap();
//! let s = Subset::from_indices(3, [0, 2]);
//! let expected = (3.0 + 2.0) + 2.0 * 2.0f64.sqrt();
//! assert!((bill.eval(&s) - expected).abs() < 1e-12);
//! ```

use crate::subset::Subset;
use std::fmt;
use std::sync::Arc;

/// A real-valued function on subsets of a fixed ground set.
///
/// Implementations must be deterministic: repeated evaluation of the same
/// subset returns the same value. Optimization code additionally assumes
/// finiteness on every subset.
///
/// The `Send + Sync` supertraits let the oracle batches in this crate fan
/// evaluations out over `ccs-par` scoped threads; determinism then makes
/// the batched results identical to the serial ones.
pub trait SetFunction: Send + Sync {
    /// Size of the ground set `{0, .., n-1}`.
    fn ground_size(&self) -> usize;

    /// Evaluates the function on a subset.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `s.ground_size() != self.ground_size()`.
    fn eval(&self, s: &Subset) -> f64;

    /// Marginal gain `f(S ∪ {i}) − f(S)`.
    ///
    /// The default does two evaluations; implementations with cheaper
    /// marginals should override.
    fn marginal(&self, s: &Subset, i: usize) -> f64 {
        if s.contains(i) {
            0.0
        } else {
            self.eval(&s.with(i)) - self.eval(s)
        }
    }

    /// `f(∅)` — used to normalize before polyhedral algorithms.
    fn at_empty(&self) -> f64 {
        self.eval(&Subset::empty(self.ground_size()))
    }
}

impl<F: SetFunction + ?Sized> SetFunction for &F {
    fn ground_size(&self) -> usize {
        (**self).ground_size()
    }
    fn eval(&self, s: &Subset) -> f64 {
        (**self).eval(s)
    }
    fn marginal(&self, s: &Subset, i: usize) -> f64 {
        (**self).marginal(s, i)
    }
}

impl<F: SetFunction + ?Sized> SetFunction for Box<F> {
    fn ground_size(&self) -> usize {
        (**self).ground_size()
    }
    fn eval(&self, s: &Subset) -> f64 {
        (**self).eval(s)
    }
    fn marginal(&self, s: &Subset, i: usize) -> f64 {
        (**self).marginal(s, i)
    }
}

/// A modular function `f(S) = offset + Σ_{i∈S} w_i`.
#[derive(Debug, Clone, PartialEq)]
pub struct Modular {
    weights: Vec<f64>,
    offset: f64,
}

impl Modular {
    /// A modular function with zero offset.
    ///
    /// # Panics
    ///
    /// Panics if any weight is non-finite.
    pub fn new(weights: Vec<f64>) -> Self {
        Modular::with_offset(weights, 0.0)
    }

    /// A modular function with an additive constant (`f(∅) = offset`).
    ///
    /// # Panics
    ///
    /// Panics if any weight or the offset is non-finite.
    pub fn with_offset(weights: Vec<f64>, offset: f64) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite()) && offset.is_finite(),
            "modular weights and offset must be finite"
        );
        Modular { weights, offset }
    }

    /// The element weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl SetFunction for Modular {
    fn ground_size(&self) -> usize {
        self.weights.len()
    }

    fn eval(&self, s: &Subset) -> f64 {
        assert_eq!(s.ground_size(), self.weights.len(), "ground size mismatch");
        self.offset + s.iter().map(|i| self.weights[i]).sum::<f64>()
    }

    fn marginal(&self, s: &Subset, i: usize) -> f64 {
        if s.contains(i) {
            0.0
        } else {
            self.weights[i]
        }
    }
}

/// Concave, nondecreasing curves `g: {0, 1, ..} -> R` with `g(0) = 0`.
///
/// Used for the service-time congestion term of the group bill and for the
/// cardinality penalty `−λ|S|` inside density search (via `Linear` with a
/// negative scale on [`ConcaveCardinality`] — note a *linear* curve is both
/// concave and convex, so any scale sign preserves submodularity there).
#[derive(Debug, Clone, PartialEq)]
pub enum CardinalityCurve {
    /// `g(k) = sqrt(k)`.
    Sqrt,
    /// `g(k) = ln(1 + k)`.
    Log1p,
    /// `g(k) = k` (modular; safe with negative scales).
    Linear,
    /// `g(k) = k^p` for `p` in `(0, 1]`.
    Power(f64),
    /// `g(k) = min(k, cap)` — saturating service capacity.
    Saturating(usize),
    /// Explicit table `g(1), g(2), ..` (`g(0) = 0` implicit). Evaluation
    /// beyond the table extends linearly with the last increment.
    Table(Vec<f64>),
}

impl CardinalityCurve {
    /// Evaluates the curve at integer `k`.
    pub fn eval(&self, k: usize) -> f64 {
        match self {
            CardinalityCurve::Sqrt => (k as f64).sqrt(),
            CardinalityCurve::Log1p => (1.0 + k as f64).ln(),
            CardinalityCurve::Linear => k as f64,
            CardinalityCurve::Power(p) => (k as f64).powf(*p),
            CardinalityCurve::Saturating(cap) => k.min(*cap) as f64,
            CardinalityCurve::Table(t) => {
                if k == 0 {
                    0.0
                } else if k <= t.len() {
                    t[k - 1]
                } else {
                    // Extend linearly with the final increment.
                    let last = t[t.len() - 1];
                    let inc = if t.len() >= 2 {
                        last - t[t.len() - 2]
                    } else {
                        last
                    };
                    last + inc * (k - t.len()) as f64
                }
            }
        }
    }

    /// Checks concavity and monotonicity up to `max_k` (used in debug
    /// assertions and tests).
    pub fn is_concave_nondecreasing(&self, max_k: usize) -> bool {
        let mut prev_inc = f64::INFINITY;
        for k in 0..max_k {
            let inc = self.eval(k + 1) - self.eval(k);
            if inc < -1e-12 || inc > prev_inc + 1e-12 {
                return false;
            }
            prev_inc = inc;
        }
        true
    }
}

/// `f(S) = scale · g(|S|)` for a [`CardinalityCurve`] `g`.
///
/// Submodular whenever `scale >= 0` (or the curve is `Linear`, in which
/// case any sign is modular).
#[derive(Debug, Clone, PartialEq)]
pub struct ConcaveCardinality {
    ground_size: usize,
    curve: CardinalityCurve,
    scale: f64,
}

impl ConcaveCardinality {
    /// Creates the function.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is non-finite, or if `scale < 0` with a non-linear
    /// curve (that would be supermodular and silently break minimizers).
    pub fn new(ground_size: usize, curve: CardinalityCurve, scale: f64) -> Self {
        assert!(scale.is_finite(), "scale must be finite");
        assert!(
            scale >= 0.0 || matches!(curve, CardinalityCurve::Linear),
            "negative scale on a non-linear curve is supermodular"
        );
        debug_assert!(
            curve.is_concave_nondecreasing(ground_size.max(2)),
            "curve must be concave nondecreasing"
        );
        ConcaveCardinality {
            ground_size,
            curve,
            scale,
        }
    }
}

impl SetFunction for ConcaveCardinality {
    fn ground_size(&self) -> usize {
        self.ground_size
    }

    fn eval(&self, s: &Subset) -> f64 {
        assert_eq!(s.ground_size(), self.ground_size, "ground size mismatch");
        self.scale * self.curve.eval(s.len())
    }

    fn marginal(&self, s: &Subset, i: usize) -> f64 {
        if s.contains(i) {
            0.0
        } else {
            let k = s.len();
            self.scale * (self.curve.eval(k + 1) - self.curve.eval(k))
        }
    }
}

/// Sum of set functions over a common ground set.
#[derive(Debug)]
pub struct SumFn<F> {
    terms: Vec<F>,
    ground_size: usize,
}

/// Error from [`SumFn::new`]: terms were empty or ground sets disagreed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SumFnError {
    /// What went wrong, in words.
    pub reason: String,
}

impl fmt::Display for SumFnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid sum of set functions: {}", self.reason)
    }
}

impl std::error::Error for SumFnError {}

impl<F: SetFunction> SumFn<F> {
    /// Sums the terms.
    ///
    /// # Errors
    ///
    /// Returns [`SumFnError`] if `terms` is empty or ground sizes differ.
    pub fn new(terms: Vec<F>) -> Result<Self, SumFnError> {
        let first = terms.first().ok_or_else(|| SumFnError {
            reason: "no terms".into(),
        })?;
        let ground_size = first.ground_size();
        if let Some(bad) = terms.iter().find(|t| t.ground_size() != ground_size) {
            return Err(SumFnError {
                reason: format!(
                    "ground size mismatch: {} vs {}",
                    bad.ground_size(),
                    ground_size
                ),
            });
        }
        Ok(SumFn { terms, ground_size })
    }
}

impl<F: SetFunction> SetFunction for SumFn<F> {
    fn ground_size(&self) -> usize {
        self.ground_size
    }

    fn eval(&self, s: &Subset) -> f64 {
        self.terms.iter().map(|t| t.eval(s)).sum()
    }

    fn marginal(&self, s: &Subset, i: usize) -> f64 {
        self.terms.iter().map(|t| t.marginal(s, i)).sum()
    }
}

/// `f(S) − λ·|S|` — the penalized objective of Dinkelbach density search.
///
/// Submodular whenever `f` is (the subtracted term is modular).
#[derive(Debug, Clone)]
pub struct CardinalityPenalized<F> {
    inner: F,
    lambda: f64,
}

impl<F: SetFunction> CardinalityPenalized<F> {
    /// Wraps `inner` with penalty coefficient `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is non-finite.
    pub fn new(inner: F, lambda: f64) -> Self {
        assert!(lambda.is_finite(), "lambda must be finite");
        CardinalityPenalized { inner, lambda }
    }

    /// The wrapped function.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// The penalty coefficient.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl<F: SetFunction> SetFunction for CardinalityPenalized<F> {
    fn ground_size(&self) -> usize {
        self.inner.ground_size()
    }

    fn eval(&self, s: &Subset) -> f64 {
        self.inner.eval(s) - self.lambda * s.len() as f64
    }

    fn marginal(&self, s: &Subset, i: usize) -> f64 {
        if s.contains(i) {
            0.0
        } else {
            self.inner.marginal(s, i) - self.lambda
        }
    }
}

/// Counts every oracle probe of the wrapped function on the global
/// `sfm.oracle_evals` telemetry counter.
///
/// The minimizer entry points (`mnp::minimize*`, `density::dinkelbach`)
/// install this wrapper (or the memoizing [`MemoFn`]) around the caller's
/// function, so `sfm.oracle_evals` reports the *actual* number of oracle
/// queries instead of the hand-maintained per-call-site estimates the
/// counter used to accumulate (which silently undercounted paths such as
/// `at_empty` normalization probes and drifted whenever an algorithm
/// changed).
#[derive(Debug, Clone)]
pub struct CountingFn<F> {
    inner: F,
}

impl<F: SetFunction> CountingFn<F> {
    /// Wraps `inner`; every `eval`/`marginal` probe increments
    /// `sfm.oracle_evals` by one.
    pub fn new(inner: F) -> Self {
        CountingFn { inner }
    }

    /// The wrapped function.
    pub fn inner(&self) -> &F {
        &self.inner
    }
}

impl<F: SetFunction> SetFunction for CountingFn<F> {
    fn ground_size(&self) -> usize {
        self.inner.ground_size()
    }

    fn eval(&self, s: &Subset) -> f64 {
        ccs_telemetry::counter!("sfm.oracle_evals").incr();
        self.inner.eval(s)
    }

    fn marginal(&self, s: &Subset, i: usize) -> f64 {
        // One oracle probe regardless of how the inner function computes it.
        ccs_telemetry::counter!("sfm.oracle_evals").incr();
        self.inner.marginal(s, i)
    }
}

/// Memoizes evaluations of the wrapped function by subset, counting each
/// *distinct* evaluated subset once on `sfm.oracle_evals` (at the vacant
/// insert) and repeats on `sfm.memo_hits`.
///
/// `mnp::minimize` wraps its argument in this: the Lovász prefix chains of
/// consecutive major iterations share long runs of identical prefixes once
/// the sort order stabilizes, and the final extraction sweep re-walks a
/// chain the last major iteration already evaluated. The memo is held for
/// one `minimize` call, so memory stays bounded by the evaluation count.
///
/// Lookups and inserts happen under one mutex acquisition, so the counters
/// are a pure function of the distinct-subset set — identical at any
/// `ccs-par` thread count.
pub struct MemoFn<F> {
    inner: F,
    memo: std::sync::Mutex<std::collections::HashMap<Subset, f64>>,
}

impl<F: SetFunction> MemoFn<F> {
    /// Wraps `inner` with an empty memo.
    pub fn new(inner: F) -> Self {
        MemoFn {
            inner,
            memo: std::sync::Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// Number of memoized (distinct evaluated) subsets.
    pub fn len(&self) -> usize {
        self.memo.lock().expect("memo poisoned").len()
    }

    /// Whether no subset has been evaluated yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<F: SetFunction> fmt::Debug for MemoFn<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoFn")
            .field("memoized", &self.len())
            .finish_non_exhaustive()
    }
}

impl<F: SetFunction> SetFunction for MemoFn<F> {
    fn ground_size(&self) -> usize {
        self.inner.ground_size()
    }

    fn eval(&self, s: &Subset) -> f64 {
        let mut memo = self.memo.lock().expect("memo poisoned");
        if let Some(&v) = memo.get(s) {
            ccs_telemetry::counter!("sfm.memo_hits").incr();
            return v;
        }
        ccs_telemetry::counter!("sfm.oracle_evals").incr();
        let v = self.inner.eval(s);
        memo.insert(s.clone(), v);
        v
    }
}

/// A set function defined by a closure (for tests and ad-hoc objectives).
///
/// The closure is shared behind an [`Arc`] so the wrapper stays cheap to
/// clone into solver internals.
#[derive(Clone)]
pub struct FnSetFunction {
    ground_size: usize,
    f: Arc<dyn Fn(&Subset) -> f64 + Send + Sync>,
}

impl FnSetFunction {
    /// Wraps a closure as a set function.
    pub fn new(ground_size: usize, f: impl Fn(&Subset) -> f64 + Send + Sync + 'static) -> Self {
        FnSetFunction {
            ground_size,
            f: Arc::new(f),
        }
    }
}

impl fmt::Debug for FnSetFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnSetFunction")
            .field("ground_size", &self.ground_size)
            .finish_non_exhaustive()
    }
}

impl SetFunction for FnSetFunction {
    fn ground_size(&self) -> usize {
        self.ground_size
    }

    fn eval(&self, s: &Subset) -> f64 {
        (self.f)(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subset::all_subsets;

    #[test]
    fn modular_eval_and_marginal() {
        let f = Modular::with_offset(vec![1.0, -2.0, 3.0], 10.0);
        assert_eq!(f.at_empty(), 10.0);
        let s = Subset::from_indices(3, [0, 2]);
        assert_eq!(f.eval(&s), 14.0);
        assert_eq!(f.marginal(&s, 1), -2.0);
        assert_eq!(f.marginal(&s, 0), 0.0, "already-present element");
    }

    #[test]
    fn concave_cardinality_matches_curve() {
        let f = ConcaveCardinality::new(5, CardinalityCurve::Sqrt, 3.0);
        let s = Subset::from_indices(5, [1, 2, 3, 4]);
        assert!((f.eval(&s) - 3.0 * 2.0).abs() < 1e-12);
        let empty = Subset::empty(5);
        assert_eq!(f.eval(&empty), 0.0);
        assert!((f.marginal(&empty, 0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn curves_are_concave_nondecreasing() {
        for curve in [
            CardinalityCurve::Sqrt,
            CardinalityCurve::Log1p,
            CardinalityCurve::Linear,
            CardinalityCurve::Power(0.7),
            CardinalityCurve::Saturating(3),
            CardinalityCurve::Table(vec![2.0, 3.0, 3.5]),
        ] {
            assert!(
                curve.is_concave_nondecreasing(20),
                "curve {curve:?} should be concave nondecreasing"
            );
        }
        assert!(!CardinalityCurve::Power(2.0).is_concave_nondecreasing(5));
        assert!(!CardinalityCurve::Table(vec![1.0, 3.0]).is_concave_nondecreasing(5));
        assert!(!CardinalityCurve::Table(vec![2.0, 1.0]).is_concave_nondecreasing(5));
    }

    #[test]
    fn table_curve_extends_linearly() {
        let t = CardinalityCurve::Table(vec![2.0, 3.0]);
        assert_eq!(t.eval(0), 0.0);
        assert_eq!(t.eval(1), 2.0);
        assert_eq!(t.eval(2), 3.0);
        assert_eq!(t.eval(4), 5.0, "extends with last increment 1.0");
        let single = CardinalityCurve::Table(vec![2.0]);
        assert_eq!(single.eval(3), 6.0);
    }

    #[test]
    fn sum_fn_adds_terms() {
        let m = Modular::new(vec![1.0, 2.0]);
        let c = ConcaveCardinality::new(2, CardinalityCurve::Linear, 0.5);
        let f = SumFn::new(vec![
            Box::new(m) as Box<dyn SetFunction>,
            Box::new(c) as Box<dyn SetFunction>,
        ])
        .unwrap();
        let s = Subset::universe(2);
        assert!((f.eval(&s) - (3.0 + 1.0)).abs() < 1e-12);
        assert_eq!(f.ground_size(), 2);
    }

    #[test]
    fn sum_fn_rejects_mismatch_and_empty() {
        let err = SumFn::<Modular>::new(vec![]).unwrap_err();
        assert!(err.to_string().contains("no terms"));
        let err =
            SumFn::new(vec![Modular::new(vec![1.0]), Modular::new(vec![1.0, 2.0])]).unwrap_err();
        assert!(err.to_string().contains("mismatch"));
    }

    #[test]
    fn penalized_subtracts_lambda_per_element() {
        let f = Modular::new(vec![5.0, 5.0, 5.0]);
        let p = CardinalityPenalized::new(f, 2.0);
        let s = Subset::from_indices(3, [0, 1]);
        assert_eq!(p.eval(&s), 10.0 - 4.0);
        assert_eq!(p.marginal(&s, 2), 3.0);
        assert_eq!(p.lambda(), 2.0);
    }

    #[test]
    fn fn_set_function_wraps_closure() {
        let f = FnSetFunction::new(4, |s| s.len() as f64 * 2.0);
        assert_eq!(f.eval(&Subset::from_indices(4, [0, 3])), 4.0);
        assert_eq!(f.ground_size(), 4);
        let dbg = format!("{f:?}");
        assert!(dbg.contains("FnSetFunction"));
    }

    #[test]
    fn counting_fn_is_transparent() {
        let f = Modular::new(vec![1.0, -2.0, 3.0]);
        let counted = CountingFn::new(f.clone());
        for s in all_subsets(3) {
            assert_eq!(counted.eval(&s), f.eval(&s));
            assert_eq!(counted.marginal(&s, 0), f.marginal(&s, 0));
        }
        assert_eq!(counted.ground_size(), 3);
        assert_eq!(counted.inner().weights(), f.weights());
    }

    #[test]
    fn memo_fn_evaluates_each_distinct_subset_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let calls = Arc::new(AtomicUsize::new(0));
        let calls_inner = Arc::clone(&calls);
        let f = FnSetFunction::new(4, move |s| {
            calls_inner.fetch_add(1, Ordering::Relaxed);
            s.len() as f64
        });
        let memo = MemoFn::new(f);
        assert!(memo.is_empty());
        let a = Subset::from_indices(4, [0, 2]);
        let b = Subset::from_indices(4, [1]);
        assert_eq!(memo.eval(&a), 2.0);
        assert_eq!(memo.eval(&a), 2.0);
        assert_eq!(memo.eval(&b), 1.0);
        assert_eq!(memo.eval(&a), 2.0);
        assert_eq!(calls.load(Ordering::Relaxed), 2, "one real eval per key");
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn marginal_default_matches_eval_difference() {
        let f = FnSetFunction::new(4, |s| (s.len() as f64).powi(2));
        for s in all_subsets(4) {
            for i in 0..4 {
                let expected = if s.contains(i) {
                    0.0
                } else {
                    f.eval(&s.with(i)) - f.eval(&s)
                };
                assert!((f.marginal(&s, i) - expected).abs() < 1e-12);
            }
        }
    }
}
