//! Property-based tests of the submodular toolkit against its exponential
//! brute-force ground truth.

use ccs_submodular::check::{brute_force_min, brute_force_min_density, is_submodular};
use ccs_submodular::density::min_density_separable;
use ccs_submodular::lovasz::{greedy_vertex, lovasz_extension};
use ccs_submodular::minimize::{local_search_min, separable_min, SeparableFn};
use ccs_submodular::mnp::{minimize, MnpOptions};
use ccs_submodular::set_fn::{
    CardinalityCurve, CardinalityPenalized, ConcaveCardinality, FnSetFunction, Modular,
    SetFunction, SumFn,
};
use ccs_submodular::subset::{all_subsets, Subset};
use proptest::prelude::*;

fn arb_curve() -> impl Strategy<Value = CardinalityCurve> {
    prop_oneof![
        Just(CardinalityCurve::Sqrt),
        Just(CardinalityCurve::Log1p),
        Just(CardinalityCurve::Linear),
        (0.1f64..1.0).prop_map(CardinalityCurve::Power),
        (1usize..5).prop_map(CardinalityCurve::Saturating),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn modular_plus_concave_is_submodular(
        weights in proptest::collection::vec(-5.0f64..5.0, 1..7),
        scale in 0.0f64..4.0,
        curve in arb_curve(),
    ) {
        let n = weights.len();
        let f = SumFn::new(vec![
            Box::new(Modular::new(weights)) as Box<dyn SetFunction>,
            Box::new(ConcaveCardinality::new(n, curve, scale)),
        ]).unwrap();
        prop_assert!(is_submodular(&f, 1e-9));
    }

    #[test]
    fn mnp_equals_brute_force(
        weights in proptest::collection::vec(-5.0f64..5.0, 1..8),
        scale in 0.0f64..3.0,
        curve in arb_curve(),
    ) {
        let n = weights.len();
        let f = SumFn::new(vec![
            Box::new(Modular::new(weights)) as Box<dyn SetFunction>,
            Box::new(ConcaveCardinality::new(n, curve, scale)),
        ]).unwrap();
        let got = minimize(&f, MnpOptions::default());
        let (_, expected) = brute_force_min(&f);
        prop_assert!((got.value - expected).abs() < 1e-7,
            "mnp {} vs brute {}", got.value, expected);
        // Reported minimizer must evaluate to the reported value.
        prop_assert!((f.eval(&got.minimizer) - got.value).abs() < 1e-9);
    }

    #[test]
    fn separable_min_equals_penalized_brute_force(
        weights in proptest::collection::vec(-4.0f64..4.0, 1..8),
        fee in 0.0f64..8.0,
        scale in 0.0f64..3.0,
        lambda in 0.0f64..6.0,
        curve in arb_curve(),
    ) {
        let f = SeparableFn::new(weights, fee, curve, scale);
        let (set, val) = separable_min(&f, lambda);
        let penalized = CardinalityPenalized::new(f.clone(), lambda);
        let (_, expected) = brute_force_min(&penalized);
        prop_assert!((val - expected).abs() < 1e-8);
        prop_assert!((penalized.eval(&set) - val).abs() < 1e-9);
    }

    #[test]
    fn dinkelbach_density_equals_brute_force(
        weights in proptest::collection::vec(0.0f64..5.0, 1..8),
        fee in 0.0f64..8.0,
        scale in 0.0f64..2.0,
        curve in arb_curve(),
    ) {
        let f = SeparableFn::new(weights, fee, curve, scale);
        let got = min_density_separable(&f).unwrap();
        let (_, expected) = brute_force_min_density(&f);
        prop_assert!((got.density - expected).abs() < 1e-7);
        prop_assert!(!got.minimizer.is_empty());
    }

    #[test]
    fn greedy_vertex_lies_in_the_base_polytope(
        weights in proptest::collection::vec(-3.0f64..3.0, 1..6),
        scale in 0.0f64..2.0,
        direction in proptest::collection::vec(-1.0f64..1.0, 6),
    ) {
        let n = weights.len();
        let f = SumFn::new(vec![
            Box::new(Modular::new(weights)) as Box<dyn SetFunction>,
            Box::new(ConcaveCardinality::new(n, CardinalityCurve::Sqrt, scale)),
        ]).unwrap();
        let v = greedy_vertex(&f, &direction[..n]);
        // x(S) <= f(S) for all S, with equality at the ground set.
        for s in all_subsets(n) {
            let xs: f64 = s.iter().map(|i| v[i]).sum();
            prop_assert!(xs <= f.eval(&s) + 1e-9);
        }
        let total: f64 = v.iter().sum();
        prop_assert!((total - f.eval(&Subset::universe(n))).abs() < 1e-9);
    }

    #[test]
    fn lovasz_extension_interpolates_indicators(
        weights in proptest::collection::vec(-3.0f64..3.0, 1..6),
        mask in 0u64..64,
    ) {
        let n = weights.len();
        let f = Modular::new(weights);
        let s = Subset::from_mask(n, mask);
        let z: Vec<f64> = (0..n).map(|i| if s.contains(i) { 1.0 } else { 0.0 }).collect();
        prop_assert!((lovasz_extension(&f, &z) - f.eval(&s)).abs() < 1e-9);
    }

    #[test]
    fn local_search_never_exceeds_empty_set(
        weights in proptest::collection::vec(-4.0f64..4.0, 1..8),
        fee in 0.0f64..5.0,
    ) {
        let f = SeparableFn::new(weights, fee, CardinalityCurve::Sqrt, 1.0);
        let (_, val) = local_search_min(&f);
        prop_assert!(val <= 1e-12, "local search can always stop at the empty set");
        // And never below the global minimum.
        let (_, global) = brute_force_min(&f);
        prop_assert!(val >= global - 1e-9);
    }

    #[test]
    fn subset_algebra_laws(a_mask in 0u64..1024, b_mask in 0u64..1024) {
        let n = 10;
        let a = Subset::from_mask(n, a_mask);
        let b = Subset::from_mask(n, b_mask);
        // |A| + |B| = |A ∪ B| + |A ∩ B|.
        prop_assert_eq!(
            a.len() + b.len(),
            a.union(&b).len() + a.intersection(&b).len()
        );
        // De Morgan.
        prop_assert_eq!(
            a.union(&b).complement(),
            a.complement().intersection(&b.complement())
        );
        // Difference decomposition.
        prop_assert_eq!(a.difference(&b).union(&a.intersection(&b)), a.clone());
        prop_assert!(a.intersection(&b).is_subset_of(&a));
        prop_assert!(a.is_subset_of(&a.union(&b)));
    }

    #[test]
    fn cut_functions_minimize_to_zero(
        edges in proptest::collection::vec((0usize..6, 0usize..6), 0..10),
    ) {
        let f = FnSetFunction::new(6, move |s| {
            edges
                .iter()
                .filter(|(u, v)| u != v && s.contains(*u) != s.contains(*v))
                .count() as f64
        });
        prop_assert!(is_submodular(&f, 1e-12));
        let r = minimize(&f, MnpOptions::default());
        prop_assert!(r.value.abs() < 1e-9, "empty/full cut is always zero");
    }
}
