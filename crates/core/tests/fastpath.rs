//! Property tests pinning down the evaluation kernel's **bit-exactness**:
//! the `ProblemTables` fast paths (table-backed bills, the pruned
//! best-facility scan, upper-bound seeding, incremental `DeltaEval`) must
//! return results bitwise identical to the from-scratch reference
//! computations they replaced. No tolerance comparisons here — equality is
//! on the raw `f64` payloads (via `PartialEq` on `Cost`/`Point`).

use ccs_core::cost::{
    evaluate_facility, evaluate_facility_direct, group_bill, group_bill_direct, try_best_facility,
    try_best_facility_with_upper, DeltaEval, FacilityChoice,
};
use ccs_core::gathering::gathering_point;
use ccs_core::prelude::*;
use ccs_wrsn::entities::{ChargerId, DeviceId};
use ccs_wrsn::scenario::{ParamRange, ScenarioGenerator};
use ccs_wrsn::units::Cost;
use proptest::prelude::*;

fn problem(seed: u64, devices: usize, chargers: usize, budgeted: bool) -> CcsProblem {
    let mut generator = ScenarioGenerator::new(seed)
        .devices(devices)
        .chargers(chargers);
    if budgeted {
        generator = generator.charger_energy_budget_range(ParamRange::new(9_000.0, 14_000.0));
    }
    CcsProblem::new(generator.generate())
}

/// Deterministic nonempty sorted member subset of `0..devices`.
fn members_from_mask(devices: usize, mask: u64) -> Vec<DeviceId> {
    let mut members: Vec<DeviceId> = (0..devices)
        .filter(|&i| (mask >> i) & 1 == 1)
        .map(|i| DeviceId::new(i as u32))
        .collect();
    if members.is_empty() {
        members.push(DeviceId::new((mask % devices as u64) as u32));
    }
    members
}

/// The pre-kernel reference `best_facility`: evaluate *every* eligible
/// charger at a fresh gathering point, keep the cheapest with the charger-id
/// tie-break. The pruned scan must reproduce this bitwise.
fn reference_best_facility(p: &CcsProblem, members: &[DeviceId]) -> Option<FacilityChoice> {
    let mut best: Option<FacilityChoice> = None;
    for c in p.scenario().charger_ids() {
        if !p.charger_can_serve(c, members) {
            continue;
        }
        let point = gathering_point(p, c, members, p.params().gathering);
        let choice = evaluate_facility(p, c, members, point);
        let better = match &best {
            None => true,
            Some(incumbent) => {
                let cost = choice.group_cost().value();
                let cur = incumbent.group_cost().value();
                cost.total_cmp(&cur)
                    .then(choice.charger.cmp(&incumbent.charger))
                    == std::cmp::Ordering::Less
            }
        };
        if better {
            best = Some(choice);
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Table-backed bills and facility evaluations are bitwise the direct
    /// entity-recomputing ones, at arbitrary gathering points.
    #[test]
    fn tables_match_direct_geometry_bitwise(
        seed in 0u64..1_000,
        devices in 2usize..14,
        chargers in 1usize..5,
        mask in 1u64..(1 << 14),
        px in 0.0f64..200.0,
        py in 0.0f64..200.0,
    ) {
        let p = problem(seed, devices, chargers, false);
        let members = members_from_mask(devices, mask);
        let point = ccs_wrsn::geometry::Point::new(px, py);
        for c in p.scenario().charger_ids() {
            let fast = group_bill(&p, c, &members, &point);
            let direct = group_bill_direct(&p, c, &members, &point);
            prop_assert_eq!(&fast, &direct);
            let fast_eval = evaluate_facility(&p, c, &members, point);
            let direct_eval = evaluate_facility_direct(&p, c, &members, point);
            prop_assert_eq!(&fast_eval, &direct_eval);
            prop_assert_eq!(
                fast_eval.group_cost().value().to_bits(),
                direct_eval.group_cost().value().to_bits()
            );
        }
    }

    /// The pruned, memoized charger scan returns bitwise the full-scan
    /// reference choice (including the charger-id tie-break), with and
    /// without energy budgets narrowing eligibility.
    #[test]
    fn pruned_scan_matches_full_scan_bitwise(
        seed in 0u64..1_000,
        devices in 2usize..12,
        chargers in 2usize..6,
        mask in 1u64..(1 << 12),
        budgeted in any::<bool>(),
    ) {
        let p = problem(seed, devices, chargers, budgeted);
        let members = members_from_mask(devices, mask);
        let pruned = try_best_facility(&p, &members);
        let reference = reference_best_facility(&p, &members);
        prop_assert_eq!(&pruned, &reference);
    }

    /// Upper-bound seeding never changes the answer: achievable, too-tight
    /// and slack bounds all produce exactly the unseeded scan's choice.
    #[test]
    fn upper_bound_seeding_is_result_transparent(
        seed in 0u64..1_000,
        devices in 2usize..12,
        chargers in 2usize..6,
        mask in 1u64..(1 << 12),
        scale in 0.25f64..4.0,
    ) {
        let p = problem(seed, devices, chargers, false);
        let members = members_from_mask(devices, mask);
        let unseeded = try_best_facility(&p, &members).expect("unbudgeted groups are feasible");
        let best_cost = unseeded.group_cost();
        for ub in [
            best_cost,                      // exactly achievable
            best_cost * scale,              // slack or too tight
            Cost::new(0.0),                 // absurdly tight: must fall back
            best_cost * 1e6,                // absurdly slack: prunes nothing
        ] {
            let seeded = try_best_facility_with_upper(&p, &members, ub);
            prop_assert!(seeded.as_ref() == Some(&unseeded), "diverged at ub = {ub}");
        }
    }

    /// `DeltaEval` stays bitwise aligned with from-scratch evaluation over
    /// arbitrary join/leave sequences at a fixed facility.
    #[test]
    fn delta_eval_matches_scratch_over_join_leave_sequences(
        seed in 0u64..1_000,
        devices in 3usize..12,
        chargers in 1usize..5,
        mask in 1u64..(1 << 12),
        ops in proptest::collection::vec(0usize..12, 1..40),
    ) {
        let p = problem(seed, devices, chargers, false);
        let members = members_from_mask(devices, mask);
        let charger = ChargerId::new((seed % p.num_chargers() as u64) as u32);
        let point = gathering_point(&p, charger, &members, p.params().gathering);
        let base = evaluate_facility(&p, charger, &members, point);
        let mut delta = DeltaEval::new(&members, &base);

        for &op in &ops {
            let d = DeviceId::new((op % devices) as u32);
            if delta.members().contains(&d) {
                if delta.members().len() == 1 {
                    continue; // keep the set nonempty
                }
                delta.leave(d);
            } else {
                delta.join(&p, d);
            }
            let scratch = evaluate_facility(&p, charger, delta.members(), point);
            let materialized = delta.choice(&p);
            prop_assert_eq!(&materialized, &scratch);
            prop_assert_eq!(
                delta.group_cost(&p).value().to_bits(),
                scratch.group_cost().value().to_bits()
            );
        }
    }
}

/// The gathering-point memo is transparent: repeated `best_facility` calls
/// for the same composition return the identical choice, and the memo only
/// grows with distinct `(charger, members)` keys.
#[test]
fn repeated_best_facility_is_stable_and_memoized() {
    let p = problem(5, 10, 4, false);
    let members: Vec<DeviceId> = [1u32, 4, 7].iter().map(|&i| DeviceId::new(i)).collect();
    let first = best_facility(&p, &members);
    let cached_entries = p.tables().gather_cache_len();
    for _ in 0..3 {
        assert_eq!(best_facility(&p, &members), first);
    }
    assert_eq!(
        p.tables().gather_cache_len(),
        cached_entries,
        "re-evaluating a known composition must not grow the memo"
    );
}
