//! Property tests of the determinism guarantee of the parallel evaluation
//! layer: CCSGA partitions and CCSA schedules must be **bit-identical**
//! across `threads ∈ {1, 2, 8}` for random scenarios and seeds.
//!
//! The thread-count knob is process-wide, but because every parallel batch
//! is deterministic, concurrently running tests are unaffected by the knob
//! changing under them — that is exactly the property being verified.

use ccs_core::prelude::*;
use ccs_wrsn::scenario::ScenarioGenerator;
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn problem(seed: u64, devices: usize, chargers: usize) -> CcsProblem {
    CcsProblem::new(
        ScenarioGenerator::new(seed)
            .devices(devices)
            .chargers(chargers)
            .generate(),
    )
}

/// Serializes a schedule to canonical JSON: equal strings ⇔ every group,
/// member, facility coordinate, and cost share is bit-identical.
fn schedule_json(s: &ccs_core::schedule::Schedule) -> String {
    serde_json::to_string(s).expect("schedules serialize")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn ccsga_partitions_bit_identical_across_thread_counts(
        seed in 0u64..1_000,
        devices in 6usize..16,
        chargers in 2usize..5,
    ) {
        let p = problem(seed, devices, chargers);
        let mut reference: Option<(Vec<Vec<usize>>, String, u64)> = None;
        for &t in &THREAD_COUNTS {
            ccs_par::set_threads(t);
            let out = ccsga(&p, &EqualShare, CcsgaOptions::default());
            ccs_par::set_threads(0);
            let got = (
                out_partition(&out),
                schedule_json(&out.schedule),
                out.schedule.total_cost().value().to_bits(),
            );
            match &reference {
                Some(expected) => prop_assert_eq!(&got, expected),
                None => reference = Some(got),
            }
        }
    }

    #[test]
    fn ccsa_schedules_bit_identical_across_thread_counts(
        seed in 0u64..1_000,
        devices in 6usize..16,
        chargers in 2usize..5,
    ) {
        let p = problem(seed, devices, chargers);
        let mut reference: Option<(String, u64)> = None;
        for &t in &THREAD_COUNTS {
            ccs_par::set_threads(t);
            let s = ccsa(&p, &EqualShare, CcsaOptions::default());
            ccs_par::set_threads(0);
            let got = (schedule_json(&s), s.total_cost().value().to_bits());
            match &reference {
                Some(expected) => prop_assert_eq!(&got, expected),
                None => reference = Some(got),
            }
        }
    }
}

/// The group structure of a CCSGA outcome as sorted member lists.
fn out_partition(out: &ccs_core::algo::ccsga::CcsgaOutcome) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = out
        .schedule
        .groups()
        .iter()
        .map(|g| g.members.iter().map(|d| d.index()).collect())
        .collect();
    groups.sort();
    groups
}

/// Deterministic mock executor for the recovery loop: round `r` fails each
/// device with seeded-RNG probability 0.4 (seed `base + r`), Degraded rounds
/// always serve, nobody moves. Failures are thread-independent by
/// construction; re-planning inside `recover_with` is the part under test.
struct SeededMock {
    base: u64,
}

impl RecoveryExecutor for SeededMock {
    type Outcome = ();

    fn execute(
        &mut self,
        problem: &CcsProblem,
        schedule: &Schedule,
        mode: RoundMode,
        round: usize,
    ) -> RoundExecution<()> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(self.base + round as u64);
        let n = problem.num_devices();
        let served = (0..n)
            .map(|_| {
                let fails = rng.gen_bool(0.4);
                mode == RoundMode::Degraded || !fails
            })
            .collect();
        let end_positions = (0..n)
            .map(|i| {
                problem
                    .device(ccs_wrsn::entities::DeviceId::new(i as u32))
                    .position()
            })
            .collect();
        RoundExecution {
            served,
            device_costs: schedule.device_costs(n),
            end_positions,
            raw: (),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The full recovery loop — initial plan, residual re-plans, degraded
    /// fallback — must produce a bit-identical `RecoveryOutcome` at any
    /// thread count.
    #[test]
    fn recovery_outcomes_bit_identical_across_thread_counts(
        seed in 0u64..1_000,
        devices in 6usize..16,
        chargers in 2usize..5,
    ) {
        let p = problem(seed, devices, chargers);
        let policy = Policy::Ccsga(CcsgaOptions::default());
        let mut reference: Option<(RecoveryOutcome<()>, u64)> = None;
        for &t in &THREAD_COUNTS {
            ccs_par::set_threads(t);
            let initial = policy.plan(&p, &EqualShare);
            let out = recover_with(
                &p,
                &initial,
                policy,
                &EqualShare,
                &mut SeededMock { base: seed },
                &RecoveryConfig { max_rounds: 2, degrade: true },
            );
            ccs_par::set_threads(0);
            let bits = out.total_cost().value().to_bits();
            let got = (out, bits);
            match &reference {
                Some(expected) => {
                    prop_assert_eq!(&got.1, &expected.1);
                    prop_assert!(got.0 == expected.0, "outcome diverged at {} threads", t);
                }
                None => reference = Some(got),
            }
            prop_assert_eq!(reference.as_ref().unwrap().0.served_fraction(), 1.0);
        }
    }
}

/// The general SFM machinery must agree with itself across thread counts
/// too (it drives the Dinkelbach ablation paths).
#[test]
fn dinkelbach_mnp_ccsa_variant_is_thread_invariant() {
    let p = problem(42, 12, 3);
    let mut reference: Option<String> = None;
    for &t in &THREAD_COUNTS {
        ccs_par::set_threads(t);
        let s = ccsa(
            &p,
            &EqualShare,
            CcsaOptions {
                minimizer: InnerMinimizer::DinkelbachMnp,
                ..Default::default()
            },
        );
        ccs_par::set_threads(0);
        let got = schedule_json(&s);
        match &reference {
            Some(expected) => assert_eq!(&got, expected, "threads = {t} diverged"),
            None => reference = Some(got),
        }
    }
}
