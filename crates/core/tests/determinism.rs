//! Property tests of the determinism guarantee of the parallel evaluation
//! layer: CCSGA partitions and CCSA schedules must be **bit-identical**
//! across `threads ∈ {1, 2, 8}` for random scenarios and seeds.
//!
//! The thread-count knob is process-wide, but because every parallel batch
//! is deterministic, concurrently running tests are unaffected by the knob
//! changing under them — that is exactly the property being verified.

use ccs_core::prelude::*;
use ccs_wrsn::scenario::ScenarioGenerator;
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn problem(seed: u64, devices: usize, chargers: usize) -> CcsProblem {
    CcsProblem::new(
        ScenarioGenerator::new(seed)
            .devices(devices)
            .chargers(chargers)
            .generate(),
    )
}

/// Serializes a schedule to canonical JSON: equal strings ⇔ every group,
/// member, facility coordinate, and cost share is bit-identical.
fn schedule_json(s: &ccs_core::schedule::Schedule) -> String {
    serde_json::to_string(s).expect("schedules serialize")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn ccsga_partitions_bit_identical_across_thread_counts(
        seed in 0u64..1_000,
        devices in 6usize..16,
        chargers in 2usize..5,
    ) {
        let p = problem(seed, devices, chargers);
        let mut reference: Option<(Vec<Vec<usize>>, String, u64)> = None;
        for &t in &THREAD_COUNTS {
            ccs_par::set_threads(t);
            let out = ccsga(&p, &EqualShare, CcsgaOptions::default());
            ccs_par::set_threads(0);
            let got = (
                out_partition(&out),
                schedule_json(&out.schedule),
                out.schedule.total_cost().value().to_bits(),
            );
            match &reference {
                Some(expected) => prop_assert_eq!(&got, expected),
                None => reference = Some(got),
            }
        }
    }

    #[test]
    fn ccsa_schedules_bit_identical_across_thread_counts(
        seed in 0u64..1_000,
        devices in 6usize..16,
        chargers in 2usize..5,
    ) {
        let p = problem(seed, devices, chargers);
        let mut reference: Option<(String, u64)> = None;
        for &t in &THREAD_COUNTS {
            ccs_par::set_threads(t);
            let s = ccsa(&p, &EqualShare, CcsaOptions::default());
            ccs_par::set_threads(0);
            let got = (schedule_json(&s), s.total_cost().value().to_bits());
            match &reference {
                Some(expected) => prop_assert_eq!(&got, expected),
                None => reference = Some(got),
            }
        }
    }
}

/// The group structure of a CCSGA outcome as sorted member lists.
fn out_partition(out: &ccs_core::algo::ccsga::CcsgaOutcome) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = out
        .schedule
        .groups()
        .iter()
        .map(|g| g.members.iter().map(|d| d.index()).collect())
        .collect();
    groups.sort();
    groups
}

/// The general SFM machinery must agree with itself across thread counts
/// too (it drives the Dinkelbach ablation paths).
#[test]
fn dinkelbach_mnp_ccsa_variant_is_thread_invariant() {
    let p = problem(42, 12, 3);
    let mut reference: Option<String> = None;
    for &t in &THREAD_COUNTS {
        ccs_par::set_threads(t);
        let s = ccsa(
            &p,
            &EqualShare,
            CcsaOptions {
                minimizer: InnerMinimizer::DinkelbachMnp,
                ..Default::default()
            },
        );
        ccs_par::set_threads(0);
        let got = schedule_json(&s);
        match &reference {
            Some(expected) => assert_eq!(&got, expected, "threads = {t} diverged"),
            None => reference = Some(got),
        }
    }
}
