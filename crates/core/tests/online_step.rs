//! Integration test of the online mode's incremental re-planning: every
//! step's recorded residual solve must equal a from-scratch solve of the
//! same residual problem, bit for bit, at one and at four worker threads
//! (the `ccs-par` determinism contract extended to the event loop).

use std::sync::Mutex;

use ccs_core::online::{OnlineConfig, OnlinePolicy, OnlineSim};
use ccs_core::prelude::*;
use ccs_wrsn::arrival::ArrivalGenerator;
use ccs_wrsn::scenario::ScenarioGenerator;
use proptest::prelude::*;

/// One group's observable outcome: charger, members, gathering point bits,
/// and bill bits.
type GroupPrint = (u32, Vec<u32>, u64, u64, u64);

/// Everything a schedule's observable outcome consists of; two schedules
/// are "the same" exactly when these match (costs down to the bit).
fn schedule_fingerprint(schedule: &Schedule) -> (Vec<GroupPrint>, u64) {
    let groups = schedule
        .groups()
        .iter()
        .map(|g| {
            (
                g.charger.index() as u32,
                g.members.iter().map(|m| m.index() as u32).collect(),
                g.gathering_point.x.to_bits(),
                g.gathering_point.y.to_bits(),
                g.bill.total().value().to_bits(),
            )
        })
        .collect();
    (groups, schedule.total_cost().value().to_bits())
}

/// Serializes mutations of the global `ccs_par` thread count across
/// concurrently running property cases.
static THREADS: Mutex<()> = Mutex::new(());

/// Restores the default thread count even when an assertion unwinds.
struct ThreadReset;
impl Drop for ThreadReset {
    fn drop(&mut self) {
        ccs_par::set_threads(0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Drive a whole online run, collecting every [`ReplanRecord`]; each
    /// records the exact residual problem it solved and the schedule the
    /// policy produced. Re-solving that residual from scratch — at one
    /// and at four threads — must reproduce the recorded schedule bit
    /// for bit. This is what makes "incremental" honest: the dirty-
    /// worklist path may skip work, never change answers.
    #[test]
    fn one_step_equals_a_from_scratch_residual_solve(
        seed in 0u64..500,
        devices in 4usize..12,
        chargers in 2usize..5,
        rate in 0.05f64..0.4,
        slack in 100.0f64..2000.0,
    ) {
        let _guard = THREADS.lock().unwrap_or_else(|e| e.into_inner());
        let _reset = ThreadReset;
        ccs_par::set_threads(1);

        let scenario = ScenarioGenerator::new(seed)
            .devices(devices)
            .chargers(chargers)
            .generate();
        let stream = ArrivalGenerator::new(seed.wrapping_mul(31) + 7)
            .rate(rate)
            .horizon(120.0)
            .slack(slack)
            .generate(devices);
        let options = CcsgaOptions {
            worklist: true,
            ..CcsgaOptions::default()
        };
        let config = OnlineConfig {
            policy: OnlinePolicy::Ccsga(options),
            ..OnlineConfig::default()
        };
        let mut sim = OnlineSim::new(CcsProblem::new(scenario), stream, &EqualShare, config);
        let mut records = Vec::new();
        while let Some(outcome) = sim.step() {
            if let Some(record) = outcome.replan {
                records.push(record);
            }
        }

        for record in &records {
            let reference = schedule_fingerprint(&record.schedule);
            // Both origin maps must cover the residual exactly.
            prop_assert_eq!(record.requests.len(), record.problem.num_devices());
            prop_assert_eq!(record.chargers.len(), record.problem.num_chargers());
            for threads in [1usize, 4] {
                ccs_par::set_threads(threads);
                let fresh = ccsga(&record.problem, &EqualShare, options).schedule;
                let fp = schedule_fingerprint(&fresh);
                prop_assert!(
                    fp == reference,
                    "residual re-solve diverged at {} threads: {:?} vs {:?}",
                    threads,
                    fp,
                    reference
                );
            }
            ccs_par::set_threads(1);
        }
    }
}
