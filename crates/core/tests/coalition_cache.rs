//! Correctness of the shared coalition-cost cache: memoized values must be
//! indistinguishable from fresh direct evaluation, and cache effectiveness
//! must be observable through telemetry in an end-to-end CCSGA run.

use ccs_coalition::cache::CoalitionCache;
use ccs_core::prelude::*;
use ccs_wrsn::entities::DeviceId;
use ccs_wrsn::scenario::ScenarioGenerator;
use std::collections::BTreeSet;

fn problem(seed: u64, devices: usize, chargers: usize) -> CcsProblem {
    CcsProblem::new(
        ScenarioGenerator::new(seed)
            .devices(devices)
            .chargers(chargers)
            .generate(),
    )
}

/// Direct (uncached) evaluation of a coalition, mirroring what CCSGA's
/// hedonic game memoizes: each member's bill share plus moving cost at the
/// coalition's best facility.
fn direct_member_costs(p: &CcsProblem, sharing: &dyn CostSharing, c: &BTreeSet<usize>) -> Vec<f64> {
    let members: Vec<DeviceId> = c.iter().map(|&i| DeviceId::new(i as u32)).collect();
    let facility = best_facility(p, &members);
    let shares = sharing.shares(
        p,
        facility.charger,
        &members,
        &facility.point,
        &facility.bill,
    );
    shares
        .iter()
        .zip(facility.moving.iter())
        .map(|(s, m)| (*s + *m).value())
        .collect()
}

/// A deterministic pseudo-random walk over coalition compositions
/// (splitmix64, so no RNG dependency in the test).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn random_coalition(n: usize, seed: u64) -> BTreeSet<usize> {
    let size = 1 + (mix(seed) as usize) % 4.min(n);
    let mut c = BTreeSet::new();
    let mut s = seed;
    while c.len() < size {
        s = mix(s);
        c.insert((s as usize) % n);
    }
    c
}

/// After many interleaved lookups (repeats mixed with first-time requests),
/// every cached value must equal a fresh direct evaluation.
#[test]
fn cache_matches_direct_evaluation_after_interleaved_rounds() {
    let p = problem(11, 14, 4);
    let sharing = EqualShare;
    let cache: CoalitionCache<Vec<f64>> = CoalitionCache::new();
    let n = 14;

    // Interleave: each round touches a fresh coalition and revisits two
    // earlier ones, so hits and misses alternate within a round.
    let mut seen: Vec<BTreeSet<usize>> = Vec::new();
    for round in 0..40u64 {
        let fresh = random_coalition(n, round);
        let mut batch = vec![fresh.clone()];
        if !seen.is_empty() {
            batch.push(seen[(mix(round) as usize) % seen.len()].clone());
            batch.push(seen[(mix(round + 1000) as usize) % seen.len()].clone());
        }
        for c in batch {
            let cached = cache.get_or_insert_with(&c, || direct_member_costs(&p, &sharing, &c));
            let direct = direct_member_costs(&p, &sharing, &c);
            assert_eq!(
                *cached, direct,
                "cached value diverged from direct evaluation for {c:?}"
            );
        }
        seen.push(fresh);
    }
    assert!(cache.len() <= seen.len(), "cache must not double-insert");
    assert!(!cache.is_empty());
}

/// Revisiting a composition must return the memoized value even if the
/// world changed in between — that is the memoization contract the engine
/// relies on (the problem is immutable during a run).
#[test]
fn cache_is_first_insert_wins() {
    let cache: CoalitionCache<Vec<f64>> = CoalitionCache::new();
    let c: BTreeSet<usize> = [1, 2, 3].into_iter().collect();
    let first = cache.get_or_insert_with(&c, || vec![1.0]);
    let second = cache.get_or_insert_with(&c, || vec![2.0]);
    assert_eq!(*first, vec![1.0]);
    assert_eq!(*second, vec![1.0], "second compute must never replace");
    assert_eq!(cache.len(), 1);
}

/// End to end: a CCSGA run with telemetry enabled must report nonzero
/// `cache.hits` (the dynamics revisit compositions across rounds) and a
/// nonzero final cache population.
#[test]
fn ccsga_run_report_shows_cache_hits() {
    let registry = ccs_telemetry::global();
    registry.enable();
    let p = problem(3, 16, 4);
    let out = ccsga(&p, &EqualShare, CcsgaOptions::default());
    let report = registry.report();
    registry.disable();

    out.schedule.validate(&p).unwrap();
    assert!(
        report.counter("cache.hits") > 0,
        "CCSGA dynamics must hit the coalition cache; report: {:?}",
        report.counters
    );
    assert!(report.counter("cache.misses") > 0);
    assert!(report.counter("ccsga.coalition_cache_entries") > 0);
}
