//! Property tests pinning down the **byte-identity of the grid-pruned
//! search paths**: the ring-ordered charger scan (`facility_scan_grid`)
//! must return the exact `FacilityChoice` of the sort-based full scan —
//! same argmin, same tie-break, same `f64` bits — across random and
//! clustered scenarios and at 1 and 8 worker threads; the grid's
//! `nearest_distance` must equal the brute-force scan bitwise; and the
//! CCSA density-bound pruning (a racy shared threshold by design) must
//! leave schedules bit-identical across thread counts.

use ccs_core::cost::{facility_scan_full, facility_scan_grid};
use ccs_core::grid::UniformGrid;
use ccs_core::prelude::*;
use ccs_wrsn::entities::DeviceId;
use ccs_wrsn::geometry::Point;
use ccs_wrsn::scenario::{Placement, ScenarioGenerator};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 2] = [1, 8];

/// A scenario with enough chargers to cross the grid-dispatch cutoff
/// (`GRID_MIN_CHARGERS = 64`), either uniform or clustered.
fn problem(seed: u64, devices: usize, chargers: usize, clustered: bool) -> CcsProblem {
    let mut generator = ScenarioGenerator::new(seed)
        .devices(devices)
        .chargers(chargers);
    if clustered {
        generator = generator
            .device_placement(Placement::Clustered {
                count: 3,
                sigma: 10.0,
            })
            .charger_placement(Placement::Clustered {
                count: 4,
                sigma: 15.0,
            });
    }
    CcsProblem::new(generator.generate())
}

/// Deterministic nonempty sorted member subset of `0..devices`.
fn members_from_mask(devices: usize, mask: u64) -> Vec<DeviceId> {
    let mut members: Vec<DeviceId> = (0..devices)
        .filter(|&i| (mask >> i) & 1 == 1)
        .map(|i| DeviceId::new(i as u32))
        .collect();
    if members.is_empty() {
        members.push(DeviceId::new((mask % devices as u64) as u32));
    }
    members
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole equivalence: ring-ordered enumeration with geometric
    /// floors prunes *work*, never *answers*. Checked from an unbounded
    /// threshold (the `best_facility` entry path) on uniform and clustered
    /// geometry, under both thread counts (the scans are deterministic
    /// regardless, but the surrounding memo fills concurrently).
    #[test]
    fn grid_scan_is_bitwise_identical_to_full_scan(
        seed in 0u64..500,
        devices in 6usize..14,
        chargers in 64usize..90,
        mask in 1u64..(1 << 14),
    ) {
        let clustered = seed % 2 == 0;
        let p = problem(seed, devices, chargers, clustered);
        let members = members_from_mask(devices, mask);
        for &t in &THREAD_COUNTS {
            ccs_par::set_threads(t);
            let full = facility_scan_full(&p, &members, f64::INFINITY);
            let grid = facility_scan_grid(&p, &members, f64::INFINITY);
            ccs_par::set_threads(0);
            prop_assert!(grid == full, "threads {t}: {grid:?} vs {full:?}");
        }
    }

    /// Same equivalence under a *finite* seeded threshold (the
    /// `try_best_facility_with_upper` path): both scans may return `None`
    /// when the threshold excludes everything, and must agree on which.
    #[test]
    fn grid_scan_agrees_under_seeded_thresholds(
        seed in 0u64..500,
        devices in 6usize..12,
        chargers in 64usize..80,
        mask in 1u64..(1 << 12),
        threshold in 0.0f64..400.0,
    ) {
        let p = problem(seed, devices, chargers, seed % 2 == 0);
        let members = members_from_mask(devices, mask);
        let full = facility_scan_full(&p, &members, threshold);
        let grid = facility_scan_grid(&p, &members, threshold);
        prop_assert_eq!(&grid, &full);
    }

    /// `UniformGrid::nearest_distance` equals the brute-force minimum
    /// bitwise (same formula, same inputs — the rings only change the
    /// enumeration order).
    #[test]
    fn grid_nearest_distance_matches_brute_force(
        seed in 0u64..500,
        n in 1usize..200,
        qx in -50.0f64..350.0,
        qy in -50.0f64..350.0,
    ) {
        let scenario = ScenarioGenerator::new(seed).devices(n.max(1)).chargers(2).generate();
        let positions: Vec<Point> =
            scenario.devices().iter().map(|d| d.position()).collect();
        let grid = UniformGrid::build(&positions);
        let q = Point::new(qx, qy);
        let brute = positions
            .iter()
            .map(|p| q.distance_value(p))
            .fold(f64::INFINITY, f64::min);
        let fast = grid.nearest_distance(q, &positions);
        prop_assert_eq!(fast.to_bits(), brute.to_bits());
    }
}

proptest! {
    // CCSA runs a full solve per case; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// CCSA's density-bound pruning shares a racy atomic threshold across
    /// the parallel facility batch. The exact total-order reduce makes the
    /// winner invariant under any interleaving: schedules must stay
    /// bit-identical across thread counts, *with the grid path engaged*
    /// (≥ 64 chargers).
    #[test]
    fn ccsa_with_grid_and_pruning_is_thread_count_invariant(
        seed in 0u64..200,
        devices in 10usize..18,
    ) {
        let clustered = seed % 2 == 0;
        let p = problem(seed, devices, 64, clustered);
        let mut reference: Option<(String, u64)> = None;
        for &t in &THREAD_COUNTS {
            ccs_par::set_threads(t);
            let s = ccsa(&p, &EqualShare, CcsaOptions::default());
            ccs_par::set_threads(0);
            let got = (
                serde_json::to_string(&s).expect("schedules serialize"),
                s.total_cost().value().to_bits(),
            );
            match &reference {
                None => reference = Some(got),
                Some(want) => prop_assert!(&got == want, "threads {t} diverged"),
            }
        }
    }
}
