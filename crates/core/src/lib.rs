//! # ccs-core — Cooperative Charging as Service scheduling
//!
//! The primary contribution of the reproduced paper (Xu et al., ICDCS'21):
//! the **Cooperative Charging Scheduling (CCS)** problem and its solvers.
//! Rechargeable devices form groups, each group jointly hires a mobile
//! charging-service provider at a gathering point, and the service bill is
//! split by a budget-balanced cost-sharing scheme; every device's
//! *comprehensive cost* is its bill share plus its own moving cost.
//!
//! * [`problem`] — the instance type and shared cost parameters;
//! * [`tables`] — the precomputed evaluation kernel behind the hot paths;
//! * [`grid`] — the uniform-grid spatial index behind ring-ordered search;
//! * [`gathering`] — gathering-point strategies (Weiszfeld et al.);
//! * [`cost`] — group bills, facility choices, comprehensive cost;
//! * [`sharing`] — equal / proportional / Shapley cost sharing;
//! * [`algo`] — CCSA (greedy + submodular minimization), CCSGA
//!   (coalition-formation game), NCP (noncooperation) and OPT (exact DP);
//! * [`schedule`] — validated schedules, the common output format;
//! * [`metrics`] — savings, optimality gaps, Jain fairness.
//!
//! # Example
//!
//! ```
//! use ccs_core::prelude::*;
//! use ccs_wrsn::scenario::ScenarioGenerator;
//!
//! let scenario = ScenarioGenerator::new(42).devices(12).chargers(4).generate();
//! let problem = CcsProblem::new(scenario);
//! let coop = ccsa(&problem, &EqualShare, CcsaOptions::default());
//! let solo = noncooperation(&problem, &EqualShare);
//! coop.validate(&problem)?;
//! assert!(coop.total_cost() <= solo.total_cost());
//! # Ok::<(), ccs_core::schedule::ScheduleError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod algo;
pub mod analysis;
pub mod cost;
pub mod exclusive;
pub mod gathering;
pub mod grid;
pub mod lifetime;
pub mod metrics;
pub mod online;
pub mod problem;
pub mod recover;
pub mod schedule;
pub mod sharing;
pub mod tables;

/// Convenient glob import of the most commonly used items.
pub mod prelude {
    pub use crate::algo::{
        ccsa, ccsga, clustering, noncooperation, optimal, CcsaOptions, CcsgaOptions, CcsgaOutcome,
        ClusterOptions, InitialPartition, InnerMinimizer, OptimalError, OptimalOptions,
    };
    pub use crate::analysis::{
        find_blocking_coalition, individual_rationality_violations, is_core_stable,
        BlockingCoalition,
    };
    pub use crate::cost::{
        best_facility, evaluate_facility, try_best_facility, try_best_facility_with_upper,
        DeltaEval, FacilityChoice, GroupBill,
    };
    pub use crate::exclusive::{
        enforce_exclusivity, exclusivity_ratio, hungarian, ExclusivityError,
    };
    pub use crate::gathering::GatheringStrategy;
    pub use crate::lifetime::{
        run_lifetime, run_lifetime_with, LifetimeConfig, LifetimeDriver, LifetimeReport,
        PlannedDelivery, Policy, RoundDelivery,
    };
    pub use crate::metrics::{
        compare, gap_above_optimal_percent, jain_fairness, saving_percent,
        try_gap_above_optimal_percent, try_jain_fairness, try_saving_percent,
    };
    pub use crate::online::{
        plan_step, Commitment, OnlineConfig, OnlineMetrics, OnlinePolicy, OnlineReport, OnlineSim,
        StepOutcome,
    };
    pub use crate::problem::{CcsProblem, CostParams};
    pub use crate::recover::{
        recover_with, residual_problem, RecoveryConfig, RecoveryExecutor, RecoveryOutcome,
        RecoveryRound, RoundExecution, RoundMode,
    };
    pub use crate::schedule::{GroupPlan, Schedule, ScheduleError};
    pub use crate::sharing::{
        all_schemes, CostSharing, EqualShare, ProportionalShare, ShapleyShare,
    };
    pub use crate::tables::ProblemTables;
}
