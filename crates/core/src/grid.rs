//! A uniform-grid spatial index for ring-ordered candidate enumeration.
//!
//! [`UniformGrid`] buckets a fixed set of points (device or charger
//! positions) into square cells and enumerates them outward from a query
//! point in **Chebyshev rings** of cells. Each ring comes with a geometric
//! lower bound: every point in ring `r` (and every later ring) is at least
//! `(r - 1) · cell` away from the query point, so a search that maintains a
//! cost threshold can stop expanding rings as soon as the bound alone
//! exceeds it — without ever looking at the remaining points.
//!
//! The index is **exact**, not approximate: enumeration order changes, the
//! set of points does not. Every pruning decision built on top of it in
//! `cost::pruned_facility_scan` and the CCSA candidate scan skips a point
//! only when its lower bound proves it cannot beat the incumbent, which is
//! why the argmin (including tie-breaks) stays bitwise identical to the
//! full scan — the property pinned down by `tests/fastpath_grid.rs`.

use ccs_wrsn::geometry::Point;

/// A static spatial hash of points over a uniform square grid, stored as
/// CSR (`cell_start` offsets into `ids`), built once per problem instance.
#[derive(Debug)]
pub struct UniformGrid {
    origin: Point,
    /// Cell side length; strictly positive.
    cell: f64,
    cols: usize,
    rows: usize,
    /// CSR offsets, length `cols * rows + 1`.
    cell_start: Vec<u32>,
    /// Point ids grouped by cell (row-major), ascending id within a cell.
    ids: Vec<u32>,
}

impl UniformGrid {
    /// Builds an index over `points`, sized for roughly two points per
    /// cell. Ids are the indices into `points`.
    pub fn build(points: &[Point]) -> Self {
        let n = points.len();
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in points {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        if n == 0 {
            return UniformGrid {
                origin: Point::ORIGIN,
                cell: 1.0,
                cols: 1,
                rows: 1,
                cell_start: vec![0, 0],
                ids: Vec::new(),
            };
        }
        let side = ((n as f64 / 2.0).sqrt().ceil() as usize).max(1);
        let extent = (max_x - min_x).max(max_y - min_y);
        let cell = if extent > 0.0 {
            extent / side as f64
        } else {
            1.0
        };
        let origin = Point::new(min_x, min_y);
        let cols = (((max_x - min_x) / cell).floor() as usize + 1).max(1);
        let rows = (((max_y - min_y) / cell).floor() as usize + 1).max(1);

        let cell_index = |p: &Point| -> usize {
            let gx = (((p.x - origin.x) / cell).floor() as isize).clamp(0, cols as isize - 1);
            let gy = (((p.y - origin.y) / cell).floor() as isize).clamp(0, rows as isize - 1);
            gy as usize * cols + gx as usize
        };

        let mut counts = vec![0u32; cols * rows + 1];
        for p in points {
            counts[cell_index(p) + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let cell_start = counts.clone();
        let mut ids = vec![0u32; n];
        let mut fill = counts;
        // Iterating ids in ascending order keeps each cell's slice sorted.
        for (id, p) in points.iter().enumerate() {
            let c = cell_index(p);
            ids[fill[c] as usize] = id as u32;
            fill[c] += 1;
        }

        UniformGrid {
            origin,
            cell,
            cols,
            rows,
            cell_start,
            ids,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The cell coordinates `from` falls into (clamped to the grid).
    fn cell_of(&self, from: Point) -> (isize, isize) {
        let gx = (((from.x - self.origin.x) / self.cell).floor() as isize)
            .clamp(0, self.cols as isize - 1);
        let gy = (((from.y - self.origin.y) / self.cell).floor() as isize)
            .clamp(0, self.rows as isize - 1);
        (gx, gy)
    }

    fn cell_ids(&self, gx: isize, gy: isize) -> &[u32] {
        let c = gy as usize * self.cols + gx as usize;
        let lo = self.cell_start[c] as usize;
        let hi = self.cell_start[c + 1] as usize;
        &self.ids[lo..hi]
    }

    /// The exact distance from `from` to the nearest indexed point, by
    /// expanding rings until the ring bound proves no closer point exists.
    /// `positions` must be the slice the grid was built from. Returns
    /// `f64::INFINITY` when the grid is empty.
    pub fn nearest_distance(&self, from: Point, positions: &[Point]) -> f64 {
        debug_assert_eq!(positions.len(), self.len(), "positions mismatch");
        let mut best = f64::INFINITY;
        let mut cursor = self.rings_from(from);
        let mut ring = Vec::new();
        while let Some(lb) = cursor.next_ring(&mut ring) {
            if lb >= best {
                break;
            }
            for &id in &ring {
                let d = from.distance_value(&positions[id as usize]);
                if d < best {
                    best = d;
                }
            }
            ring.clear();
        }
        best
    }

    /// Starts a ring enumeration outward from `from`.
    pub fn rings_from(&self, from: Point) -> RingCursor<'_> {
        let (cx, cy) = self.cell_of(from);
        RingCursor {
            grid: self,
            cx,
            cy,
            r: 0,
        }
    }
}

/// Iterator-style cursor over the Chebyshev cell rings around a query
/// point (see [`UniformGrid::rings_from`]).
#[derive(Debug)]
pub struct RingCursor<'g> {
    grid: &'g UniformGrid,
    cx: isize,
    cy: isize,
    r: isize,
}

impl RingCursor<'_> {
    /// Appends the ids of the next ring to `out` (deterministic order:
    /// cells scanned bottom-to-top, left-to-right) and returns a lower
    /// bound on the distance from the query point to **any point in this
    /// ring or beyond**. Returns `None` once every cell has been visited.
    ///
    /// The bound for ring `r` is `(r - 1) · cell`, valid even for query
    /// points outside the indexed bounding box (their cell is clamped to
    /// the nearest cell, which only increases true distances).
    pub fn next_ring(&mut self, out: &mut Vec<u32>) -> Option<f64> {
        let g = self.grid;
        let r = self.r;
        let max_r = (self.cx)
            .max(g.cols as isize - 1 - self.cx)
            .max(self.cy)
            .max(g.rows as isize - 1 - self.cy);
        if r > max_r {
            return None;
        }
        self.r += 1;
        let lb = ((r - 1).max(0)) as f64 * g.cell;
        for gy in (self.cy - r).max(0)..=(self.cy + r).min(g.rows as isize - 1) {
            let on_rim = gy == self.cy - r || gy == self.cy + r;
            if on_rim {
                for gx in (self.cx - r).max(0)..=(self.cx + r).min(g.cols as isize - 1) {
                    out.extend_from_slice(g.cell_ids(gx, gy));
                }
            } else {
                for gx in [self.cx - r, self.cx + r] {
                    if gx >= 0 && gx < g.cols as isize && r > 0 {
                        out.extend_from_slice(g.cell_ids(gx, gy));
                    }
                }
            }
        }
        Some(lb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points(n: usize, scale: f64) -> Vec<Point> {
        // Deterministic pseudo-random scatter without an RNG dependency.
        (0..n)
            .map(|i| {
                let a = ((i as f64 * 12.9898).sin() * 43758.5453).fract().abs();
                let b = ((i as f64 * 78.233).sin() * 12543.1234).fract().abs();
                Point::new(a * scale, b * scale)
            })
            .collect()
    }

    #[test]
    fn rings_enumerate_every_point_exactly_once() {
        for n in [0usize, 1, 2, 17, 100] {
            let pts = points(n, 500.0);
            let grid = UniformGrid::build(&pts);
            assert_eq!(grid.len(), n);
            let mut seen = Vec::new();
            let mut cursor = grid.rings_from(Point::new(250.0, 250.0));
            let mut ring = Vec::new();
            while cursor.next_ring(&mut ring).is_some() {
                seen.append(&mut ring);
            }
            let mut sorted: Vec<u32> = seen.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), n, "n = {n}");
        }
    }

    #[test]
    fn ring_lower_bounds_never_exceed_true_distances() {
        let pts = points(200, 777.0);
        let grid = UniformGrid::build(&pts);
        for q in [
            Point::new(0.0, 0.0),
            Point::new(400.0, 100.0),
            Point::new(-50.0, 900.0), // outside the indexed bounding box
            Point::new(1000.0, -10.0),
        ] {
            let mut cursor = grid.rings_from(q);
            let mut ring = Vec::new();
            let mut prev_lb = 0.0f64;
            while let Some(lb) = cursor.next_ring(&mut ring) {
                assert!(lb >= prev_lb, "bounds must be monotone");
                prev_lb = lb;
                for &id in &ring {
                    let d = q.distance_value(&pts[id as usize]);
                    assert!(
                        lb <= d + 1e-9,
                        "lb {lb} exceeds true distance {d} for id {id}"
                    );
                }
                ring.clear();
            }
        }
    }

    #[test]
    fn degenerate_coincident_points_index_cleanly() {
        let pts = vec![Point::new(5.0, 5.0); 9];
        let grid = UniformGrid::build(&pts);
        let mut cursor = grid.rings_from(Point::new(5.0, 5.0));
        let mut ring = Vec::new();
        let lb = cursor.next_ring(&mut ring).unwrap();
        assert_eq!(lb, 0.0);
        assert_eq!(ring.len(), 9);
    }
}
