//! Evaluation metrics: savings, optimality gaps and fairness.
//!
//! These are the quantities the paper's evaluation reports: average
//! comprehensive cost, percentage saving of CCSA/CCSGA over the
//! noncooperation baseline, the gap above the optimal solution, and (for
//! the cost-sharing comparison) Jain's fairness index over per-device
//! costs.

use crate::schedule::Schedule;
use ccs_wrsn::units::Cost;

/// Percentage by which `candidate` undercuts `baseline`
/// (`27.3` means 27.3% cheaper), or `None` when `baseline` is not strictly
/// positive (the ratio is undefined, not merely extreme).
///
/// Long-running surfaces (the `ccs-serve` daemon, the experiment harness)
/// call this form so a degenerate input becomes a structured marker instead
/// of a process abort or a silent `inf`.
pub fn try_saving_percent(candidate: Cost, baseline: Cost) -> Option<f64> {
    if baseline <= Cost::ZERO {
        return None;
    }
    Some((1.0 - candidate / baseline) * 100.0)
}

/// Percentage by which `candidate` undercuts `baseline`
/// (`27.3` means 27.3% cheaper). Negative when the candidate is worse.
///
/// # Panics
///
/// Panics if `baseline` is not strictly positive; see
/// [`try_saving_percent`] for the fallible form.
pub fn saving_percent(candidate: Cost, baseline: Cost) -> f64 {
    try_saving_percent(candidate, baseline)
        .expect("saving undefined against a non-positive baseline")
}

/// Percentage by which `candidate` exceeds `optimal`
/// (`7.3` means 7.3% above optimal), or `None` when `optimal` is not
/// strictly positive.
pub fn try_gap_above_optimal_percent(candidate: Cost, optimal: Cost) -> Option<f64> {
    if optimal <= Cost::ZERO {
        return None;
    }
    Some((candidate / optimal - 1.0) * 100.0)
}

/// Percentage by which `candidate` exceeds `optimal`
/// (`7.3` means 7.3% above optimal).
///
/// # Panics
///
/// Panics if `optimal` is not strictly positive; see
/// [`try_gap_above_optimal_percent`] for the fallible form.
pub fn gap_above_optimal_percent(candidate: Cost, optimal: Cost) -> f64 {
    try_gap_above_optimal_percent(candidate, optimal)
        .expect("gap undefined against a non-positive optimum")
}

/// Jain's fairness index of per-device costs:
/// `(Σx)² / (n · Σx²)`, in `(0, 1]`, `1` = perfectly equal.
///
/// Returns `1.0` for an all-zero (degenerate) cost vector and `None` for an
/// empty one.
pub fn try_jain_fairness(costs: &[Cost]) -> Option<f64> {
    if costs.is_empty() {
        return None;
    }
    let sum: f64 = costs.iter().map(|c| c.value()).sum();
    let sum_sq: f64 = costs.iter().map(|c| c.value() * c.value()).sum();
    if sum_sq == 0.0 {
        return Some(1.0);
    }
    Some(sum * sum / (costs.len() as f64 * sum_sq))
}

/// Jain's fairness index of per-device costs:
/// `(Σx)² / (n · Σx²)`, in `(0, 1]`, `1` = perfectly equal.
///
/// Returns `1.0` for an all-zero (degenerate) cost vector.
///
/// # Panics
///
/// Panics if `costs` is empty; see [`try_jain_fairness`] for the fallible
/// form.
pub fn jain_fairness(costs: &[Cost]) -> f64 {
    try_jain_fairness(costs).expect("fairness of an empty vector is undefined")
}

/// A one-line comparison of a schedule against baselines — the row format
/// of the paper-style result tables.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Total comprehensive cost.
    pub total: Cost,
    /// Average comprehensive cost per device.
    pub average: Cost,
    /// Number of groups formed.
    pub groups: usize,
    /// Saving vs the noncooperation baseline, percent (if provided).
    pub saving_vs_ncp: Option<f64>,
    /// Gap above the optimal solution, percent (if provided).
    pub gap_vs_opt: Option<f64>,
}

/// Builds a comparison row for `schedule` against optional baselines.
pub fn compare(
    schedule: &Schedule,
    ncp: Option<&Schedule>,
    opt: Option<&Schedule>,
) -> ComparisonRow {
    ComparisonRow {
        algorithm: schedule.algorithm(),
        total: schedule.total_cost(),
        average: schedule.average_cost(),
        groups: schedule.groups().len(),
        saving_vs_ncp: ncp.map(|b| saving_percent(schedule.total_cost(), b.total_cost())),
        gap_vs_opt: opt.map(|b| gap_above_optimal_percent(schedule.total_cost(), b.total_cost())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{ccsa, noncooperation, CcsaOptions};
    use crate::problem::CcsProblem;
    use crate::sharing::EqualShare;
    use ccs_wrsn::scenario::ScenarioGenerator;

    #[test]
    fn saving_percent_basic() {
        assert!((saving_percent(Cost::new(73.0), Cost::new(100.0)) - 27.0).abs() < 1e-12);
        assert!(saving_percent(Cost::new(110.0), Cost::new(100.0)) < 0.0);
        assert_eq!(saving_percent(Cost::new(100.0), Cost::new(100.0)), 0.0);
    }

    #[test]
    fn gap_percent_basic() {
        assert!((gap_above_optimal_percent(Cost::new(107.3), Cost::new(100.0)) - 7.3).abs() < 1e-9);
        assert_eq!(
            gap_above_optimal_percent(Cost::new(100.0), Cost::new(100.0)),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "non-positive baseline")]
    fn saving_rejects_zero_baseline() {
        let _ = saving_percent(Cost::new(1.0), Cost::ZERO);
    }

    #[test]
    #[should_panic(expected = "saving undefined against a non-positive baseline")]
    fn saving_rejects_negative_baseline() {
        let _ = saving_percent(Cost::new(1.0), Cost::new(-5.0));
    }

    #[test]
    #[should_panic(expected = "gap undefined against a non-positive optimum")]
    fn gap_rejects_zero_optimum() {
        let _ = gap_above_optimal_percent(Cost::new(1.0), Cost::ZERO);
    }

    #[test]
    #[should_panic(expected = "gap undefined against a non-positive optimum")]
    fn gap_rejects_negative_optimum() {
        let _ = gap_above_optimal_percent(Cost::new(1.0), Cost::new(-1.0));
    }

    #[test]
    #[should_panic(expected = "fairness of an empty vector is undefined")]
    fn jain_rejects_empty_vector() {
        let _ = jain_fairness(&[]);
    }

    #[test]
    fn try_forms_mirror_the_panicking_forms() {
        assert_eq!(
            try_saving_percent(Cost::new(73.0), Cost::new(100.0)),
            Some(saving_percent(Cost::new(73.0), Cost::new(100.0)))
        );
        assert_eq!(try_saving_percent(Cost::new(1.0), Cost::ZERO), None);
        assert_eq!(try_saving_percent(Cost::new(1.0), Cost::new(-5.0)), None);
        assert_eq!(
            try_gap_above_optimal_percent(Cost::new(107.3), Cost::new(100.0)),
            Some(gap_above_optimal_percent(
                Cost::new(107.3),
                Cost::new(100.0)
            ))
        );
        assert_eq!(
            try_gap_above_optimal_percent(Cost::new(1.0), Cost::ZERO),
            None
        );
        assert_eq!(
            try_jain_fairness(&[Cost::new(5.0); 4]),
            Some(jain_fairness(&[Cost::new(5.0); 4]))
        );
        assert_eq!(try_jain_fairness(&[]), None);
    }

    #[test]
    fn jain_fairness_uniform_vectors_are_perfectly_fair() {
        for n in 1..=6 {
            let uniform = vec![Cost::new(13.7); n];
            assert!(
                (jain_fairness(&uniform) - 1.0).abs() < 1e-12,
                "uniform vector of length {n}"
            );
        }
    }

    #[test]
    fn jain_fairness_single_element_and_single_nonzero() {
        // One device is always "fair to itself".
        assert_eq!(jain_fairness(&[Cost::new(42.0)]), 1.0);
        assert_eq!(jain_fairness(&[Cost::ZERO]), 1.0);
        // One nonzero among n approaches the 1/n lower bound.
        for n in [2usize, 5, 10] {
            let mut v = vec![Cost::ZERO; n];
            v[0] = Cost::new(9.0);
            assert!((jain_fairness(&v) - 1.0 / n as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn jain_fairness_is_scale_invariant() {
        let base = [Cost::new(1.0), Cost::new(4.0), Cost::new(2.5)];
        let scaled: Vec<Cost> = base.iter().map(|c| *c * 1000.0).collect();
        assert!((jain_fairness(&base) - jain_fairness(&scaled)).abs() < 1e-12);
    }

    #[test]
    fn jain_fairness_bounds() {
        assert_eq!(jain_fairness(&[Cost::new(5.0); 4]), 1.0);
        let skewed = [Cost::new(100.0), Cost::ZERO, Cost::ZERO, Cost::ZERO];
        assert!((jain_fairness(&skewed) - 0.25).abs() < 1e-12);
        assert_eq!(jain_fairness(&[Cost::ZERO; 3]), 1.0, "degenerate vector");
        let mixed = [Cost::new(1.0), Cost::new(2.0), Cost::new(3.0)];
        let j = jain_fairness(&mixed);
        assert!(j > 0.25 && j < 1.0);
    }

    #[test]
    fn compare_builds_row_from_real_schedules() {
        let p = CcsProblem::new(ScenarioGenerator::new(3).devices(10).chargers(3).generate());
        let coop = ccsa(&p, &EqualShare, CcsaOptions::default());
        let solo = noncooperation(&p, &EqualShare);
        let row = compare(&coop, Some(&solo), None);
        assert_eq!(row.algorithm, "ccsa");
        assert!(row.saving_vs_ncp.unwrap() >= -1e-9);
        assert!(row.gap_vs_opt.is_none());
        assert_eq!(row.groups, coop.groups().len());
        assert!((row.average - row.total / 10.0).abs() < Cost::new(1e-9));
    }
}
