//! The CCS cost model: group bills, moving costs and comprehensive cost.
//!
//! For a group `S` served by charger `j` at gathering point `p`:
//!
//! ```text
//! bill(S, j, p) = b_j                      base service fee (per hire)
//!               + τ_j · d(q_j, p)          charger travel
//!               + Σ_{i∈S} π_j · w_i        energy at price π_j
//!               + η_j · g(|S|)             service-time congestion (concave g)
//! ```
//!
//! Each member additionally pays its own moving cost `κ_i · d(p_i, p)`. The
//! **group cost** (what OPT and the social objective count) is the bill plus
//! all members' moving costs; the **comprehensive cost of a device** is its
//! bill *share* (see `sharing`) plus its own moving cost.
//!
//! `bill(·, j, p)` as a function of `S` is `fee·1[S≠∅] + modular +
//! concave(|S|)` — nonnegative submodular — which is what CCSA's machinery
//! requires; the property test in this module pins that down.

use crate::gathering::gathering_point;
use crate::problem::CcsProblem;
use ccs_wrsn::entities::{ChargerId, DeviceId};
use ccs_wrsn::geometry::Point;
use ccs_wrsn::units::Cost;

/// Itemized charging-service bill of one group.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct GroupBill {
    /// The charger's per-hire base fee `b_j`.
    pub base_fee: Cost,
    /// Charger travel `τ_j · d(q_j, p)`.
    pub charger_travel: Cost,
    /// Per-member energy charges `π_j · w_i`, aligned with the member list
    /// the bill was computed for.
    pub energy: Vec<Cost>,
    /// Service-time congestion `η_j · g(|S|)`.
    pub congestion: Cost,
}

impl GroupBill {
    /// The group-level (member-independent) part: fee + travel + congestion.
    pub fn group_level(&self) -> Cost {
        self.base_fee + self.charger_travel + self.congestion
    }

    /// The full bill: group-level part plus all energy charges.
    pub fn total(&self) -> Cost {
        self.group_level() + self.energy.iter().copied().sum::<Cost>()
    }
}

/// Computes the itemized bill for `(members, charger, point)`.
///
/// The `energy` entries align with `members` order.
///
/// # Panics
///
/// Panics if `members` is empty.
pub fn group_bill(
    problem: &CcsProblem,
    charger: ChargerId,
    members: &[DeviceId],
    point: &Point,
) -> GroupBill {
    assert!(!members.is_empty(), "a group needs at least one member");
    let c = problem.charger(charger);
    let energy = members
        .iter()
        .map(|&d| problem.device(d).demand() * c.energy_price())
        .collect();
    GroupBill {
        base_fee: c.base_fee(),
        charger_travel: c.travel_cost_rate() * c.position().distance(point),
        energy,
        congestion: c.occupancy_rate() * problem.params().congestion_curve.eval(members.len()),
    }
}

/// Per-member moving costs `κ_i · d(p_i, p)`, aligned with `members`.
pub fn moving_costs(problem: &CcsProblem, members: &[DeviceId], point: &Point) -> Vec<Cost> {
    members
        .iter()
        .map(|&d| {
            let dev = problem.device(d);
            dev.move_cost_rate() * dev.position().distance(point)
        })
        .collect()
}

/// A fully resolved facility choice for one group: the charger, the
/// gathering point, the itemized bill and the members' moving costs.
#[derive(Debug, Clone, PartialEq)]
pub struct FacilityChoice {
    /// The hired charger.
    pub charger: ChargerId,
    /// The gathering point.
    pub point: Point,
    /// The itemized bill (aligned with the member list used to build it).
    pub bill: GroupBill,
    /// Per-member moving costs (same alignment).
    pub moving: Vec<Cost>,
}

impl FacilityChoice {
    /// The group cost: bill total plus all moving costs — the quantity OPT
    /// minimizes summed over groups.
    pub fn group_cost(&self) -> Cost {
        self.bill.total() + self.moving.iter().copied().sum::<Cost>()
    }
}

/// Evaluates one `(charger, point)` facility for a member set.
pub fn evaluate_facility(
    problem: &CcsProblem,
    charger: ChargerId,
    members: &[DeviceId],
    point: Point,
) -> FacilityChoice {
    FacilityChoice {
        charger,
        point,
        bill: group_bill(problem, charger, members, &point),
        moving: moving_costs(problem, members, &point),
    }
}

/// The cheapest facility for a member set among the chargers whose energy
/// budget covers the group's demand. Every eligible charger is tried with
/// the problem's gathering strategy, and the lowest group cost wins
/// (deterministic tie-break on charger id).
///
/// Returns `None` when no charger can serve the group (never happens for
/// singletons: problem construction validates them).
pub fn try_best_facility(problem: &CcsProblem, members: &[DeviceId]) -> Option<FacilityChoice> {
    assert!(!members.is_empty(), "a group needs at least one member");
    problem
        .scenario()
        .charger_ids()
        .filter(|&c| problem.charger_can_serve(c, members))
        .map(|c| {
            let point = gathering_point(problem, c, members, problem.params().gathering);
            evaluate_facility(problem, c, members, point)
        })
        .min_by(|a, b| {
            a.group_cost()
                .total_cmp(&b.group_cost())
                .then(a.charger.cmp(&b.charger))
        })
}

/// Like [`try_best_facility`], for callers that have already established
/// feasibility.
///
/// # Panics
///
/// Panics if `members` is empty or no charger's budget covers the group.
pub fn best_facility(problem: &CcsProblem, members: &[DeviceId]) -> FacilityChoice {
    try_best_facility(problem, members)
        .expect("no charger's energy budget covers this group's demand")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_submodular::check::{is_monotone_nondecreasing, is_submodular};
    use ccs_submodular::set_fn::FnSetFunction;
    use ccs_wrsn::scenario::ScenarioGenerator;

    fn problem() -> CcsProblem {
        CcsProblem::new(ScenarioGenerator::new(7).devices(8).chargers(3).generate())
    }

    fn ids(v: &[u32]) -> Vec<DeviceId> {
        v.iter().map(|&i| DeviceId::new(i)).collect()
    }

    #[test]
    fn bill_items_add_up() {
        let p = problem();
        let members = ids(&[0, 1, 2]);
        let c = ChargerId::new(0);
        let point = p.charger(c).position();
        let bill = group_bill(&p, c, &members, &point);
        assert_eq!(bill.charger_travel, Cost::ZERO, "charger gathers at home");
        assert_eq!(bill.energy.len(), 3);
        let manual = bill.base_fee
            + bill.charger_travel
            + bill.congestion
            + bill.energy.iter().copied().sum::<Cost>();
        assert!((bill.total() - manual).abs() < Cost::new(1e-9));
        assert!(bill.group_level() <= bill.total());
    }

    #[test]
    fn bigger_group_pays_more_total_but_congestion_is_concave() {
        let p = problem();
        let c = ChargerId::new(1);
        let point = Point::new(50.0, 50.0);
        let b1 = group_bill(&p, c, &ids(&[0]), &point);
        let b2 = group_bill(&p, c, &ids(&[0, 1]), &point);
        let b3 = group_bill(&p, c, &ids(&[0, 1, 2]), &point);
        assert!(b2.total() > b1.total());
        assert!(b3.total() > b2.total());
        let inc12 = b2.congestion - b1.congestion;
        let inc23 = b3.congestion - b2.congestion;
        assert!(inc23 <= inc12 + Cost::new(1e-12), "diminishing congestion");
    }

    #[test]
    fn bill_is_submodular_and_monotone_in_membership() {
        // The paper-critical property: for a FIXED facility, S -> bill(S)
        // (with bill(∅) = 0) is nonnegative, monotone and submodular.
        let p = problem();
        let c = ChargerId::new(2);
        let point = Point::new(120.0, 80.0);
        let all: Vec<DeviceId> = (0..6).map(DeviceId::new).collect();
        let pc = p.clone();
        let f = FnSetFunction::new(6, move |s| {
            if s.is_empty() {
                return 0.0;
            }
            let members: Vec<DeviceId> = s.iter().map(|i| all[i]).collect();
            group_bill(&pc, c, &members, &point).total().value()
        });
        assert!(is_submodular(&f, 1e-9));
        assert!(is_monotone_nondecreasing(&f, 1e-9));
    }

    #[test]
    fn moving_costs_align_and_scale_with_distance() {
        let p = problem();
        let members = ids(&[0, 3]);
        let at_dev0 = p.device(DeviceId::new(0)).position();
        let mv = moving_costs(&p, &members, &at_dev0);
        assert_eq!(mv.len(), 2);
        assert_eq!(mv[0], Cost::ZERO, "device 0 does not move");
        assert!(mv[1] >= Cost::ZERO);
    }

    #[test]
    fn best_facility_beats_every_single_charger_choice() {
        let p = problem();
        let members = ids(&[1, 4, 5]);
        let best = best_facility(&p, &members);
        for c in p.scenario().charger_ids() {
            let point = gathering_point(&p, c, &members, p.params().gathering);
            let alt = evaluate_facility(&p, c, &members, point);
            assert!(best.group_cost() <= alt.group_cost() + Cost::new(1e-9));
        }
        assert_eq!(best.moving.len(), members.len());
        assert_eq!(best.bill.energy.len(), members.len());
    }

    #[test]
    fn facility_group_cost_is_bill_plus_moving() {
        let p = problem();
        let members = ids(&[2, 6]);
        let f = best_facility(&p, &members);
        let manual = f.bill.total() + f.moving.iter().copied().sum::<Cost>();
        assert!((f.group_cost() - manual).abs() < Cost::new(1e-9));
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_group_bill_panics() {
        let p = problem();
        let _ = group_bill(&p, ChargerId::new(0), &[], &Point::ORIGIN);
    }
}
