//! The CCS cost model: group bills, moving costs and comprehensive cost.
//!
//! For a group `S` served by charger `j` at gathering point `p`:
//!
//! ```text
//! bill(S, j, p) = b_j                      base service fee (per hire)
//!               + τ_j · d(q_j, p)          charger travel
//!               + Σ_{i∈S} π_j · w_i        energy at price π_j
//!               + η_j · g(|S|)             service-time congestion (concave g)
//! ```
//!
//! Each member additionally pays its own moving cost `κ_i · d(p_i, p)`. The
//! **group cost** (what OPT and the social objective count) is the bill plus
//! all members' moving costs; the **comprehensive cost of a device** is its
//! bill *share* (see `sharing`) plus its own moving cost.
//!
//! `bill(·, j, p)` as a function of `S` is `fee·1[S≠∅] + modular +
//! concave(|S|)` — nonnegative submodular — which is what CCSA's machinery
//! requires; the property test in this module pins that down.

use crate::problem::CcsProblem;
use ccs_wrsn::entities::{ChargerId, DeviceId};
use ccs_wrsn::geometry::Point;
use ccs_wrsn::units::Cost;

/// Itemized charging-service bill of one group.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct GroupBill {
    /// The charger's per-hire base fee `b_j`.
    pub base_fee: Cost,
    /// Charger travel `τ_j · d(q_j, p)`.
    pub charger_travel: Cost,
    /// Per-member energy charges `π_j · w_i`, aligned with the member list
    /// the bill was computed for.
    pub energy: Vec<Cost>,
    /// Service-time congestion `η_j · g(|S|)`.
    pub congestion: Cost,
}

impl GroupBill {
    /// The group-level (member-independent) part: fee + travel + congestion.
    pub fn group_level(&self) -> Cost {
        self.base_fee + self.charger_travel + self.congestion
    }

    /// The full bill: group-level part plus all energy charges.
    pub fn total(&self) -> Cost {
        self.group_level() + self.energy.iter().copied().sum::<Cost>()
    }
}

/// Computes the itemized bill for `(members, charger, point)`, reading the
/// price terms from the problem's [`ProblemTables`](crate::tables) kernel.
///
/// The `energy` entries align with `members` order. Bitwise equal to
/// [`group_bill_direct`] (the tables store the identical products), which
/// the `fastpath` proptests verify.
///
/// # Panics
///
/// Panics if `members` is empty.
pub fn group_bill(
    problem: &CcsProblem,
    charger: ChargerId,
    members: &[DeviceId],
    point: &Point,
) -> GroupBill {
    assert!(!members.is_empty(), "a group needs at least one member");
    let t = problem.tables();
    let c = problem.charger(charger);
    let energy = members.iter().map(|&d| t.energy(charger, d)).collect();
    GroupBill {
        base_fee: c.base_fee(),
        charger_travel: c.travel_cost_rate() * c.position().distance(point),
        energy,
        congestion: t.congestion(charger, members.len()),
    }
}

/// The reference implementation of [`group_bill`]: recomputes every term
/// from the entities instead of reading the kernel tables. Kept for tests
/// and proptests that pin down the tables' bit-exactness.
///
/// # Panics
///
/// Panics if `members` is empty.
pub fn group_bill_direct(
    problem: &CcsProblem,
    charger: ChargerId,
    members: &[DeviceId],
    point: &Point,
) -> GroupBill {
    assert!(!members.is_empty(), "a group needs at least one member");
    let c = problem.charger(charger);
    let energy = members
        .iter()
        .map(|&d| problem.device(d).demand() * c.energy_price())
        .collect();
    GroupBill {
        base_fee: c.base_fee(),
        charger_travel: c.travel_cost_rate() * c.position().distance(point),
        energy,
        congestion: c.occupancy_rate() * problem.params().congestion_curve.eval(members.len()),
    }
}

/// Per-member moving costs `κ_i · d(p_i, p)`, aligned with `members`.
pub fn moving_costs(problem: &CcsProblem, members: &[DeviceId], point: &Point) -> Vec<Cost> {
    members
        .iter()
        .map(|&d| {
            let dev = problem.device(d);
            dev.move_cost_rate() * dev.position().distance(point)
        })
        .collect()
}

/// A fully resolved facility choice for one group: the charger, the
/// gathering point, the itemized bill and the members' moving costs.
#[derive(Debug, Clone, PartialEq)]
pub struct FacilityChoice {
    /// The hired charger.
    pub charger: ChargerId,
    /// The gathering point.
    pub point: Point,
    /// The itemized bill (aligned with the member list used to build it).
    pub bill: GroupBill,
    /// Per-member moving costs (same alignment).
    pub moving: Vec<Cost>,
}

impl FacilityChoice {
    /// The group cost: bill total plus all moving costs — the quantity OPT
    /// minimizes summed over groups.
    pub fn group_cost(&self) -> Cost {
        self.bill.total() + self.moving.iter().copied().sum::<Cost>()
    }
}

/// Evaluates one `(charger, point)` facility for a member set.
pub fn evaluate_facility(
    problem: &CcsProblem,
    charger: ChargerId,
    members: &[DeviceId],
    point: Point,
) -> FacilityChoice {
    FacilityChoice {
        charger,
        point,
        bill: group_bill(problem, charger, members, &point),
        moving: moving_costs(problem, members, &point),
    }
}

/// [`evaluate_facility`] through [`group_bill_direct`] — the tables-free
/// reference path.
pub fn evaluate_facility_direct(
    problem: &CcsProblem,
    charger: ChargerId,
    members: &[DeviceId],
    point: Point,
) -> FacilityChoice {
    FacilityChoice {
        charger,
        point,
        bill: group_bill_direct(problem, charger, members, &point),
        moving: moving_costs(problem, members, &point),
    }
}

/// A lower bound on `group_cost` for serving `members` with `charger` at
/// *any* gathering point: the point-independent bill terms plus a spatial
/// bound (`dd_lb` is the charger-independent device-pair bound, computed
/// once per scan by [`pairwise_spatial_bound`]).
///
/// The spatial term `τ_j·d(q_j,p) + Σ κ_i·d(p_i,p)` is bounded below by
/// `min(τ_j, κ_i)·d(q_j, p_i)` for every member `i` (triangle inequality),
/// and by `min(κ_i, κ_i')·d(p_i, p_i')` for every member pair.
fn facility_lower_bound(
    problem: &CcsProblem,
    charger: ChargerId,
    members: &[DeviceId],
    dd_lb: f64,
) -> f64 {
    let t = problem.tables();
    let k = members.len();
    let mut fixed = problem.charger(charger).base_fee() + t.congestion(charger, k);
    let tau = t.travel_rate(charger);
    let mut spatial = dd_lb;
    for &d in members {
        fixed += t.energy(charger, d);
        let bound = tau.min(t.move_rate(d)) * t.device_charger_distance(d, charger);
        if bound > spatial {
            spatial = bound;
        }
    }
    fixed.value() + spatial
}

/// An `O(1)` per-charger prefilter ahead of the `O(k)` exact bound,
/// shared by both scan strategies. The exact bound's bill part is
/// `b_j + η_j·g(k) + Σ_i π_j·w_i`; `π_j·Σ_i w_i` can differ from that
/// member-by-member sum only by float reassociation error, which the
/// `1 − 1e-9` factor dominates (the relative error of a reordered
/// nonnegative sum is ≤ k·ε ≈ 1e-11 even at k = 10⁵). The exact spatial
/// part maximises over members and so is at least the reference-member
/// term reproduced here from the same tables. The returned value is
/// therefore a true lower bound on [`facility_lower_bound`], and skipping
/// a charger whose cheap bound exceeds the threshold prunes a subset of
/// what the exact bound would prune — the argmin is unchanged, bit for
/// bit.
#[inline]
fn cheap_charger_bound(
    problem: &CcsProblem,
    charger: ChargerId,
    k: usize,
    total_demand: f64,
    dd_lb: f64,
    ref_dev: DeviceId,
    kappa_ref: f64,
) -> f64 {
    let t = problem.tables();
    let cheap_bill = ((t.base_fee(charger) + t.congestion(charger, k)).value()
        + t.energy_price(charger).value() * total_demand)
        * (1.0 - 1e-9);
    let rate = t.travel_rate(charger).min(kappa_ref);
    cheap_bill + dd_lb.max(rate * t.device_charger_distance(ref_dev, charger))
}

/// The charger-independent part of the spatial lower bound: the largest
/// `min(κ_i, κ_i')·d(p_i, p_i')` over member pairs (`0` for singletons).
fn pairwise_spatial_bound(problem: &CcsProblem, members: &[DeviceId]) -> f64 {
    let t = problem.tables();
    let mut best = 0.0f64;
    for (idx, &a) in members.iter().enumerate() {
        let ka = t.move_rate(a);
        for &b in &members[idx + 1..] {
            let bound = ka.min(t.move_rate(b)) * t.device_distance(a, b);
            if bound > best {
                best = bound;
            }
        }
    }
    best
}

/// The group cost of serving `members` with `charger` at `point`, as a
/// bare scalar — no `FacilityChoice`, no `Vec`s. Accumulates exactly the
/// terms [`evaluate_facility`]`(..).group_cost()` accumulates, in exactly
/// the same order (`(base + travel + congestion) + Σ energy`, then
/// `+ Σ moving`, each `Σ` a left fold in member order), so the result is
/// bitwise the materialized one — pinned by the `scan_scalar` proptest.
fn group_cost_at(
    problem: &CcsProblem,
    charger: ChargerId,
    members: &[DeviceId],
    point: &Point,
) -> f64 {
    let t = problem.tables();
    let c = problem.charger(charger);
    let group_level = c.base_fee()
        + c.travel_cost_rate() * c.position().distance(point)
        + t.congestion(charger, members.len());
    let energy: Cost = members.iter().map(|&d| t.energy(charger, d)).sum();
    let moving: Cost = members
        .iter()
        .map(|&d| {
            let dev = problem.device(d);
            dev.move_cost_rate() * dev.position().distance(point)
        })
        .sum();
    ((group_level + energy) + moving).value()
}

/// Evaluates one candidate charger against the incumbent, updating
/// `best`/`best_cost`/`threshold` under the exact `(group_cost, charger
/// id)` total order shared by both scan strategies.
///
/// Candidates are ranked by the allocation-free [`group_cost_at`] scalar;
/// the `FacilityChoice` (with its itemized-bill and moving-cost `Vec`s) is
/// materialized only when the candidate actually wins. `best_cost` carries
/// the incumbent's group cost (`f64::INFINITY` while `best` is `None`), so
/// losing candidates never touch the incumbent either.
fn consider_charger(
    problem: &CcsProblem,
    members: &[DeviceId],
    c: ChargerId,
    best: &mut Option<FacilityChoice>,
    best_cost: &mut f64,
    threshold: &mut f64,
) {
    let point = problem.tables().cached_gathering_point(problem, c, members);
    let cost = group_cost_at(problem, c, members, &point);
    let better = match &best {
        None => true,
        Some(incumbent) => {
            cost.total_cmp(best_cost).then(c.cmp(&incumbent.charger)) == std::cmp::Ordering::Less
        }
    };
    if better {
        *threshold = threshold.min(cost);
        *best_cost = cost;
        *best = Some(evaluate_facility(problem, c, members, point));
    }
}

/// The full pruned charger scan: every eligible charger gets a lower
/// bound, chargers are visited in ascending `(bound, id)` order and the
/// scan stops as soon as the next bound *strictly* exceeds `threshold`
/// (which shrinks to the best cost found so far). A pruned charger's true
/// cost is `>=` its bound `>` the final best, so it can be neither the
/// argmin nor a tie — the result (including the id tie-break) is bitwise
/// the exhaustive scan's.
#[doc(hidden)]
pub fn facility_scan_full(
    problem: &CcsProblem,
    members: &[DeviceId],
    threshold: f64,
) -> Option<FacilityChoice> {
    facility_scan_full_from(problem, members, None, f64::INFINITY, threshold)
}

/// [`facility_scan_full`] continued from an already-evaluated incumbent
/// (`best` at `threshold`). Visit order never affects the result — the
/// `(group_cost, charger id)` comparison in [`consider_charger`] is a
/// total order — so starting from an incumbent only tightens pruning.
fn facility_scan_full_from(
    problem: &CcsProblem,
    members: &[DeviceId],
    mut best: Option<FacilityChoice>,
    mut best_cost: f64,
    mut threshold: f64,
) -> Option<FacilityChoice> {
    let t = problem.tables();
    let dd_lb = pairwise_spatial_bound(problem, members);
    let k = members.len();
    let demand = problem.group_demand(members);
    let total_demand: f64 = members
        .iter()
        .map(|&d| problem.device(d).demand().value())
        .sum();
    let ref_dev = members[0];
    let kappa_ref = t.move_rate(ref_dev);
    let mut candidates: Vec<(f64, ChargerId)> = problem
        .scenario()
        .charger_ids()
        .filter(|&c| {
            cheap_charger_bound(problem, c, k, total_demand, dd_lb, ref_dev, kappa_ref) <= threshold
                && problem.charger(c).can_deliver(demand)
        })
        .map(|c| (facility_lower_bound(problem, c, members, dd_lb), c))
        .collect();
    candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    for (bound, c) in candidates {
        if bound > threshold {
            break;
        }
        consider_charger(
            problem,
            members,
            c,
            &mut best,
            &mut best_cost,
            &mut threshold,
        );
    }
    best
}

/// The ring-ordered charger scan: chargers are enumerated outward from the
/// first member's position through the charger [`UniformGrid`], ring by
/// ring. Ring `r` carries a floor on the cost of *every* charger in it or
/// beyond — the instance-wide fee/price/congestion minima plus
/// `min(τ_min, κ_ref) · ring_distance` — so the search stops without
/// touching the remaining rings once the floor exceeds `threshold`.
/// Within the visited rings each charger gets the same per-charger lower
/// bound as [`facility_scan_full`] and candidates run in `(bound, id)`
/// order against the same exact total order, so the winner (including
/// tie-breaks) is bitwise identical to the full scan — only the number of
/// evaluated chargers differs. `O(chargers near the group)` instead of
/// `O(m log m)` per call.
#[doc(hidden)]
pub fn facility_scan_grid(
    problem: &CcsProblem,
    members: &[DeviceId],
    threshold: f64,
) -> Option<FacilityChoice> {
    facility_scan_grid_from(problem, members, None, f64::INFINITY, threshold)
}

/// [`facility_scan_grid`] continued from an already-evaluated incumbent —
/// see [`facility_scan_full_from`] for why that cannot change the result.
fn facility_scan_grid_from(
    problem: &CcsProblem,
    members: &[DeviceId],
    mut best: Option<FacilityChoice>,
    mut best_cost: f64,
    mut threshold: f64,
) -> Option<FacilityChoice> {
    let t = problem.tables();
    let dd_lb = pairwise_spatial_bound(problem, members);

    // Point-independent floor over ALL chargers: b_j + η_j·g(k) + Σ π_j·w_i
    // >= min_b + min_η·g(k) + min_π·Σw_i for any charger j.
    let total_demand: f64 = members
        .iter()
        .map(|&d| problem.device(d).demand().value())
        .sum();
    let fixed_floor = t.min_base_fee()
        + t.min_occupancy() * t.curve_value(members.len())
        + t.min_energy_price() * total_demand;
    // Rate for the ring-distance floor: spatial_j >= min(τ_j, κ_ref) ·
    // d(q_j, p_ref) >= min(τ_min, κ_ref) · ring lower bound.
    let ref_dev = members[0];
    let spatial_rate = t.min_travel_rate().min(t.move_rate(ref_dev));
    let ref_pos = t.device_position(ref_dev);

    let k = members.len();
    let demand = problem.group_demand(members);
    let kappa_ref = t.move_rate(ref_dev);
    let mut cursor = t.charger_grid().rings_from(ref_pos);
    let mut ring: Vec<u32> = Vec::new();
    let mut candidates: Vec<(f64, ChargerId)> = Vec::new();
    while let Some(ring_lb) = cursor.next_ring(&mut ring) {
        if fixed_floor + dd_lb.max(spatial_rate * ring_lb) > threshold {
            break;
        }
        candidates.clear();
        for &raw in &ring {
            let c = ChargerId::new(raw);
            if cheap_charger_bound(problem, c, k, total_demand, dd_lb, ref_dev, kappa_ref)
                > threshold
                || !problem.charger(c).can_deliver(demand)
            {
                continue;
            }
            candidates.push((facility_lower_bound(problem, c, members, dd_lb), c));
        }
        ring.clear();
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for &(bound, c) in &candidates {
            if bound > threshold {
                break;
            }
            consider_charger(
                problem,
                members,
                c,
                &mut best,
                &mut best_cost,
                &mut threshold,
            );
        }
    }
    best
}

/// Chargers counts below this use the sort-based full scan; the grid's
/// ring machinery only pays off once there are enough chargers to skip.
const GRID_MIN_CHARGERS: usize = 64;

/// Strategy dispatch behind [`try_best_facility`]: both strategies return
/// the bitwise-identical argmin (pinned by the `fastpath_grid` proptests),
/// so the cutoff is purely a performance choice.
fn pruned_facility_scan(
    problem: &CcsProblem,
    members: &[DeviceId],
    threshold: f64,
) -> Option<FacilityChoice> {
    if problem.tables().num_chargers() >= GRID_MIN_CHARGERS {
        facility_scan_grid(problem, members, threshold)
    } else {
        facility_scan_full(problem, members, threshold)
    }
}

/// The cheapest facility for a member set among the chargers whose energy
/// budget covers the group's demand, with the lowest group cost winning
/// (deterministic tie-break on charger id).
///
/// Chargers whose per-charger lower bound already exceeds the best cost
/// found are pruned without running Weiszfeld — the dominant saving of the
/// evaluation kernel — and gathering points come from the per-problem memo.
/// The result is bitwise identical to evaluating every eligible charger.
///
/// Returns `None` when no charger can serve the group (never happens for
/// singletons: problem construction validates them).
pub fn try_best_facility(problem: &CcsProblem, members: &[DeviceId]) -> Option<FacilityChoice> {
    assert!(!members.is_empty(), "a group needs at least one member");
    pruned_facility_scan(problem, members, f64::INFINITY)
}

/// [`try_best_facility`] seeded with an upper bound `ub` on the best group
/// cost — typically a [`DeltaEval`] of the member set at a known-feasible
/// facility. The bound lets the scan prune chargers before any evaluation;
/// if it turns out unachievable (the fresh gathering points all cost more
/// than `ub`, possible because Weiszfeld is approximate), the scan is redone
/// unseeded, so the result is always exactly [`try_best_facility`]'s.
pub fn try_best_facility_with_upper(
    problem: &CcsProblem,
    members: &[DeviceId],
    ub: Cost,
) -> Option<FacilityChoice> {
    assert!(!members.is_empty(), "a group needs at least one member");
    let seeded = pruned_facility_scan(problem, members, ub.value());
    match seeded {
        Some(choice) if choice.group_cost() <= ub => Some(choice),
        _ => pruned_facility_scan(problem, members, f64::INFINITY),
    }
}

/// [`try_best_facility`] that evaluates `anchor` — a charger a caller has
/// reason to believe is the winner, e.g. the base coalition's choice when
/// probing one member's join — before the ordered scan. The anchor's
/// *achieved* cost (unlike `try_best_facility_with_upper`'s hypothetical
/// bound) is a valid threshold from the first ring, so the scan prunes as
/// hard as possible and never needs an unseeded redo. Bitwise identical to
/// [`try_best_facility`]: pruning compares against an achieved cost and
/// the `(group_cost, charger id)` order is visit-order independent.
pub fn try_best_facility_anchored(
    problem: &CcsProblem,
    members: &[DeviceId],
    anchor: ChargerId,
) -> Option<FacilityChoice> {
    assert!(!members.is_empty(), "a group needs at least one member");
    let mut best: Option<FacilityChoice> = None;
    let mut best_cost = f64::INFINITY;
    let mut threshold = f64::INFINITY;
    if problem.charger_can_serve(anchor, members) {
        consider_charger(
            problem,
            members,
            anchor,
            &mut best,
            &mut best_cost,
            &mut threshold,
        );
    }
    if problem.tables().num_chargers() >= GRID_MIN_CHARGERS {
        facility_scan_grid_from(problem, members, best, best_cost, threshold)
    } else {
        facility_scan_full_from(problem, members, best, best_cost, threshold)
    }
}

/// Like [`try_best_facility`], for callers that have already established
/// feasibility.
///
/// # Panics
///
/// Panics if `members` is empty or no charger's budget covers the group.
pub fn best_facility(problem: &CcsProblem, members: &[DeviceId]) -> FacilityChoice {
    try_best_facility(problem, members)
        .expect("no charger's energy budget covers this group's demand")
}

/// An incrementally maintained facility evaluation at a **fixed**
/// `(charger, point)`: one member joining or leaving costs O(log k) list
/// surgery plus one energy-table lookup and one distance — the congestion
/// term is a table lookup at materialization time.
///
/// The invariant (debug-asserted in [`DeltaEval::choice`], pinned by a
/// proptest) is that materializing after any join/leave sequence is
/// **bit-identical** to [`evaluate_facility`] from scratch on the resulting
/// member set: entries are kept aligned with the sorted member list and all
/// sums re-run over the vectors in the same order, so no floating-point
/// reassociation can creep in.
///
/// This powers the coalition engine's best-response scan: the cost of a
/// candidate move at the coalition's *current* facility is a delta, and the
/// full charger scan ([`try_best_facility_with_upper`]) runs with that value
/// as its pruning bound — falling back to an unseeded scan only when the
/// facility choice actually changes.
#[derive(Debug, Clone)]
pub struct DeltaEval {
    charger: ChargerId,
    point: Point,
    base_fee: Cost,
    charger_travel: Cost,
    members: Vec<DeviceId>,
    energy: Vec<Cost>,
    moving: Vec<Cost>,
}

impl DeltaEval {
    /// Adopts an already-evaluated facility for `members` (aligned with the
    /// choice's `energy`/`moving` vectors, ascending by device id).
    pub fn new(members: &[DeviceId], choice: &FacilityChoice) -> Self {
        assert_eq!(members.len(), choice.bill.energy.len(), "misaligned choice");
        debug_assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "members must be sorted"
        );
        DeltaEval {
            charger: choice.charger,
            point: choice.point,
            base_fee: choice.bill.base_fee,
            charger_travel: choice.bill.charger_travel,
            members: members.to_vec(),
            energy: choice.bill.energy.clone(),
            moving: choice.moving.clone(),
        }
    }

    /// The fixed facility's charger.
    #[inline]
    pub fn charger(&self) -> ChargerId {
        self.charger
    }

    /// The current member set (sorted ascending).
    #[inline]
    pub fn members(&self) -> &[DeviceId] {
        &self.members
    }

    /// Adds one member: O(log k) search, O(k) insert, one table lookup and
    /// one distance computation.
    ///
    /// # Panics
    ///
    /// Panics if `d` is already a member.
    pub fn join(&mut self, problem: &CcsProblem, d: DeviceId) {
        let pos = self
            .members
            .binary_search(&d)
            .expect_err("device already in the coalition");
        let dev = problem.device(d);
        self.members.insert(pos, d);
        self.energy
            .insert(pos, problem.tables().energy(self.charger, d));
        self.moving.insert(
            pos,
            dev.move_cost_rate() * dev.position().distance(&self.point),
        );
    }

    /// Removes one member: O(log k) search, O(k) removal.
    ///
    /// # Panics
    ///
    /// Panics if `d` is not a member.
    pub fn leave(&mut self, d: DeviceId) {
        let pos = self
            .members
            .binary_search(&d)
            .expect("device not in the coalition");
        self.members.remove(pos);
        self.energy.remove(pos);
        self.moving.remove(pos);
    }

    /// Whether the fixed charger's energy budget still covers the current
    /// member set (joins can outgrow it; leaves never do).
    pub fn feasible(&self, problem: &CcsProblem) -> bool {
        !self.members.is_empty() && problem.charger_can_serve(self.charger, &self.members)
    }

    /// Materializes the current state as a [`FacilityChoice`] — bit-identical
    /// to `evaluate_facility(problem, charger, members, point)` from scratch.
    ///
    /// # Panics
    ///
    /// Panics if the member set is empty.
    pub fn choice(&self, problem: &CcsProblem) -> FacilityChoice {
        assert!(
            !self.members.is_empty(),
            "a group needs at least one member"
        );
        let choice = FacilityChoice {
            charger: self.charger,
            point: self.point,
            bill: GroupBill {
                base_fee: self.base_fee,
                charger_travel: self.charger_travel,
                energy: self.energy.clone(),
                congestion: problem
                    .tables()
                    .congestion(self.charger, self.members.len()),
            },
            moving: self.moving.clone(),
        };
        debug_assert_eq!(
            choice,
            evaluate_facility(problem, self.charger, &self.members, self.point),
            "DeltaEval diverged from from-scratch evaluation"
        );
        choice
    }

    /// The group cost of the current state, without materializing: the same
    /// vector sums [`FacilityChoice::group_cost`] runs, in the same order.
    pub fn group_cost(&self, problem: &CcsProblem) -> Cost {
        let congestion = problem
            .tables()
            .congestion(self.charger, self.members.len());
        let bill_total = (self.base_fee + self.charger_travel + congestion)
            + self.energy.iter().copied().sum::<Cost>();
        bill_total + self.moving.iter().copied().sum::<Cost>()
    }
}

/// The group cost of `base ∪ {joiner}` held at `base`'s facility — an upper
/// bound for [`try_best_facility_with_upper`] on the enlarged set. `None`
/// when the base charger's budget cannot absorb the joiner (the bound would
/// not correspond to a feasible facility).
///
/// `base_members` must be the sorted member list `base` was evaluated for.
pub fn join_upper_bound(
    problem: &CcsProblem,
    base_members: &[DeviceId],
    base: &FacilityChoice,
    joiner: DeviceId,
) -> Option<Cost> {
    let mut delta = DeltaEval::new(base_members, base);
    delta.join(problem, joiner);
    delta.feasible(problem).then(|| delta.group_cost(problem))
}

/// The group cost of `base ∖ {leaver}` held at `base`'s facility — an upper
/// bound for the shrunken set (always feasible: demand only drops). `None`
/// when the leaver was the last member.
pub fn leave_upper_bound(
    problem: &CcsProblem,
    base_members: &[DeviceId],
    base: &FacilityChoice,
    leaver: DeviceId,
) -> Option<Cost> {
    let mut delta = DeltaEval::new(base_members, base);
    delta.leave(leaver);
    (!delta.members().is_empty()).then(|| delta.group_cost(problem))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gathering::gathering_point;
    use ccs_submodular::check::{is_monotone_nondecreasing, is_submodular};
    use ccs_submodular::set_fn::FnSetFunction;
    use ccs_wrsn::scenario::ScenarioGenerator;

    fn problem() -> CcsProblem {
        CcsProblem::new(ScenarioGenerator::new(7).devices(8).chargers(3).generate())
    }

    fn ids(v: &[u32]) -> Vec<DeviceId> {
        v.iter().map(|&i| DeviceId::new(i)).collect()
    }

    #[test]
    fn bill_items_add_up() {
        let p = problem();
        let members = ids(&[0, 1, 2]);
        let c = ChargerId::new(0);
        let point = p.charger(c).position();
        let bill = group_bill(&p, c, &members, &point);
        assert_eq!(bill.charger_travel, Cost::ZERO, "charger gathers at home");
        assert_eq!(bill.energy.len(), 3);
        let manual = bill.base_fee
            + bill.charger_travel
            + bill.congestion
            + bill.energy.iter().copied().sum::<Cost>();
        assert!((bill.total() - manual).abs() < Cost::new(1e-9));
        assert!(bill.group_level() <= bill.total());
    }

    #[test]
    fn bigger_group_pays_more_total_but_congestion_is_concave() {
        let p = problem();
        let c = ChargerId::new(1);
        let point = Point::new(50.0, 50.0);
        let b1 = group_bill(&p, c, &ids(&[0]), &point);
        let b2 = group_bill(&p, c, &ids(&[0, 1]), &point);
        let b3 = group_bill(&p, c, &ids(&[0, 1, 2]), &point);
        assert!(b2.total() > b1.total());
        assert!(b3.total() > b2.total());
        let inc12 = b2.congestion - b1.congestion;
        let inc23 = b3.congestion - b2.congestion;
        assert!(inc23 <= inc12 + Cost::new(1e-12), "diminishing congestion");
    }

    #[test]
    fn bill_is_submodular_and_monotone_in_membership() {
        // The paper-critical property: for a FIXED facility, S -> bill(S)
        // (with bill(∅) = 0) is nonnegative, monotone and submodular.
        let p = problem();
        let c = ChargerId::new(2);
        let point = Point::new(120.0, 80.0);
        let all: Vec<DeviceId> = (0..6).map(DeviceId::new).collect();
        let pc = p.clone();
        let f = FnSetFunction::new(6, move |s| {
            if s.is_empty() {
                return 0.0;
            }
            let members: Vec<DeviceId> = s.iter().map(|i| all[i]).collect();
            group_bill(&pc, c, &members, &point).total().value()
        });
        assert!(is_submodular(&f, 1e-9));
        assert!(is_monotone_nondecreasing(&f, 1e-9));
    }

    #[test]
    fn moving_costs_align_and_scale_with_distance() {
        let p = problem();
        let members = ids(&[0, 3]);
        let at_dev0 = p.device(DeviceId::new(0)).position();
        let mv = moving_costs(&p, &members, &at_dev0);
        assert_eq!(mv.len(), 2);
        assert_eq!(mv[0], Cost::ZERO, "device 0 does not move");
        assert!(mv[1] >= Cost::ZERO);
    }

    #[test]
    fn best_facility_beats_every_single_charger_choice() {
        let p = problem();
        let members = ids(&[1, 4, 5]);
        let best = best_facility(&p, &members);
        for c in p.scenario().charger_ids() {
            let point = gathering_point(&p, c, &members, p.params().gathering);
            let alt = evaluate_facility(&p, c, &members, point);
            assert!(best.group_cost() <= alt.group_cost() + Cost::new(1e-9));
        }
        assert_eq!(best.moving.len(), members.len());
        assert_eq!(best.bill.energy.len(), members.len());
    }

    #[test]
    fn facility_group_cost_is_bill_plus_moving() {
        let p = problem();
        let members = ids(&[2, 6]);
        let f = best_facility(&p, &members);
        let manual = f.bill.total() + f.moving.iter().copied().sum::<Cost>();
        assert!((f.group_cost() - manual).abs() < Cost::new(1e-9));
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_group_bill_panics() {
        let p = problem();
        let _ = group_bill(&p, ChargerId::new(0), &[], &Point::ORIGIN);
    }

    mod scan_scalar {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// [`group_cost_at`] is bitwise
            /// `evaluate_facility(..).group_cost()`: the scalar ranking in
            /// `consider_charger` sees exactly the costs the materialized
            /// path would, so deferring `FacilityChoice` construction to
            /// winners cannot change any argmin or tie-break.
            #[test]
            fn scalar_cost_is_bitwise_the_materialized_cost(
                seed in 0u64..1_000,
                devices in 2usize..14,
                chargers in 1usize..5,
                mask in 1u64..(1 << 14),
                px in 0.0f64..200.0,
                py in 0.0f64..200.0,
            ) {
                let p = CcsProblem::new(
                    ScenarioGenerator::new(seed)
                        .devices(devices)
                        .chargers(chargers)
                        .generate(),
                );
                let mut members: Vec<DeviceId> = (0..devices)
                    .filter(|&i| (mask >> i) & 1 == 1)
                    .map(|i| DeviceId::new(i as u32))
                    .collect();
                if members.is_empty() {
                    members.push(DeviceId::new((mask % devices as u64) as u32));
                }
                let point = Point::new(px, py);
                for c in p.scenario().charger_ids() {
                    let scalar = group_cost_at(&p, c, &members, &point);
                    let materialized =
                        evaluate_facility(&p, c, &members, point).group_cost().value();
                    prop_assert_eq!(scalar.to_bits(), materialized.to_bits());
                }
            }
        }
    }
}
