//! Intragroup cost-sharing schemes.
//!
//! The paper proposes two schemes to "sustain the cooperation among
//! devices"; we reconstruct them as the two canonical budget-balanced rules
//! of this literature ([`EqualShare`], [`ProportionalShare`]) and add exact
//! [`ShapleyShare`] as a fairness yardstick for small groups.
//!
//! All schemes are **budget-balanced**: the shares sum to the bill total
//! (verified by a property test). Shares are nonnegative whenever the bill
//! items are.

use crate::cost::{group_bill, GroupBill};
use crate::problem::CcsProblem;
use ccs_wrsn::entities::{ChargerId, DeviceId};
use ccs_wrsn::geometry::Point;
use ccs_wrsn::units::Cost;
use std::fmt;

/// A budget-balanced division of a group's bill among its members.
///
/// `Send + Sync` because sharing schemes are consulted from the parallel
/// evaluation batches of CCSGA's induced hedonic game; all schemes are
/// stateless, so this costs implementations nothing.
pub trait CostSharing: fmt::Debug + Send + Sync {
    /// Splits `bill` among `members` (shares align with `members`).
    ///
    /// The extra context (`problem`, `charger`, `point`) lets schemes like
    /// Shapley re-price subcoalitions; simple schemes ignore it.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `bill.energy.len() != members.len()`
    /// or `members` is empty.
    fn shares(
        &self,
        problem: &CcsProblem,
        charger: ChargerId,
        members: &[DeviceId],
        point: &Point,
        bill: &GroupBill,
    ) -> Vec<Cost>;

    /// Short scheme name for reports.
    fn name(&self) -> &'static str;
}

/// Egalitarian sharing: the group-level part (fee + charger travel +
/// congestion) is split equally; each member pays its own energy charge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EqualShare;

impl CostSharing for EqualShare {
    fn shares(
        &self,
        _problem: &CcsProblem,
        _charger: ChargerId,
        members: &[DeviceId],
        _point: &Point,
        bill: &GroupBill,
    ) -> Vec<Cost> {
        assert!(!members.is_empty(), "a group needs at least one member");
        assert_eq!(bill.energy.len(), members.len(), "bill/member mismatch");
        let per_head = bill.group_level() / members.len() as f64;
        bill.energy.iter().map(|&e| per_head + e).collect()
    }

    fn name(&self) -> &'static str {
        "equal"
    }
}

/// Proportional sharing: the whole bill is split in proportion to energy
/// demands. Falls back to an equal split when all demands are zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProportionalShare;

impl CostSharing for ProportionalShare {
    fn shares(
        &self,
        problem: &CcsProblem,
        _charger: ChargerId,
        members: &[DeviceId],
        _point: &Point,
        bill: &GroupBill,
    ) -> Vec<Cost> {
        assert!(!members.is_empty(), "a group needs at least one member");
        assert_eq!(bill.energy.len(), members.len(), "bill/member mismatch");
        let demands: Vec<f64> = members
            .iter()
            .map(|&d| problem.device(d).demand().value())
            .collect();
        let total_demand: f64 = demands.iter().sum();
        let total = bill.total();
        if total_demand <= 0.0 {
            return vec![total / members.len() as f64; members.len()];
        }
        demands.iter().map(|w| total * (w / total_demand)).collect()
    }

    fn name(&self) -> &'static str {
        "proportional"
    }
}

/// Exact Shapley-value sharing of the bill, with the subcoalition
/// characteristic `v(T) = bill(T, j, p)` at the *same* facility.
///
/// Exponential in group size; guarded to groups of at most
/// [`ShapleyShare::MAX_GROUP`] members.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShapleyShare;

impl ShapleyShare {
    /// Largest group the exact computation accepts.
    pub const MAX_GROUP: usize = 16;
}

impl CostSharing for ShapleyShare {
    /// # Panics
    ///
    /// Additionally panics if the group exceeds [`ShapleyShare::MAX_GROUP`]
    /// members.
    fn shares(
        &self,
        problem: &CcsProblem,
        charger: ChargerId,
        members: &[DeviceId],
        point: &Point,
        bill: &GroupBill,
    ) -> Vec<Cost> {
        assert!(!members.is_empty(), "a group needs at least one member");
        assert_eq!(bill.energy.len(), members.len(), "bill/member mismatch");
        let k = members.len();
        assert!(
            k <= Self::MAX_GROUP,
            "exact Shapley limited to {} members, got {k}",
            Self::MAX_GROUP
        );

        // v(T) for all subcoalitions T of the group, indexed by bitmask.
        let v: Vec<f64> = (0u32..(1 << k))
            .map(|mask| {
                if mask == 0 {
                    return 0.0;
                }
                let sub: Vec<DeviceId> = (0..k)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| members[i])
                    .collect();
                group_bill(problem, charger, &sub, point).total().value()
            })
            .collect();

        // φ_i = Σ_{T ⊆ S\{i}} |T|!(k−1−|T|)!/k! · [v(T∪i) − v(T)]
        let mut factorial = vec![1.0f64; k + 1];
        for i in 1..=k {
            factorial[i] = factorial[i - 1] * i as f64;
        }
        let k_fact = factorial[k];
        (0..k)
            .map(|i| {
                let bit = 1u32 << i;
                let mut phi = 0.0;
                for mask in 0u32..(1 << k) {
                    if mask & bit != 0 {
                        continue;
                    }
                    let t = mask.count_ones() as usize;
                    let weight = factorial[t] * factorial[k - 1 - t] / k_fact;
                    phi += weight * (v[(mask | bit) as usize] - v[mask as usize]);
                }
                Cost::new(phi)
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "shapley"
    }
}

/// The built-in schemes, as trait objects, for sweeping in experiments.
pub fn all_schemes() -> Vec<Box<dyn CostSharing>> {
    vec![
        Box::new(EqualShare),
        Box::new(ProportionalShare),
        Box::new(ShapleyShare),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::best_facility;
    use ccs_wrsn::scenario::ScenarioGenerator;

    fn problem() -> CcsProblem {
        CcsProblem::new(ScenarioGenerator::new(11).devices(8).chargers(3).generate())
    }

    fn setup(p: &CcsProblem, devs: &[u32]) -> (Vec<DeviceId>, ChargerId, Point, GroupBill) {
        let members: Vec<DeviceId> = devs.iter().map(|&i| DeviceId::new(i)).collect();
        let f = best_facility(p, &members);
        (members, f.charger, f.point, f.bill)
    }

    fn assert_budget_balanced(shares: &[Cost], bill: &GroupBill) {
        let total: Cost = shares.iter().copied().sum();
        assert!(
            (total - bill.total()).abs() < Cost::new(1e-9),
            "shares {total} must equal bill {}",
            bill.total()
        );
    }

    #[test]
    fn equal_share_is_budget_balanced_and_nonnegative() {
        let p = problem();
        let (members, charger, point, bill) = setup(&p, &[0, 1, 2, 3]);
        let shares = EqualShare.shares(&p, charger, &members, &point, &bill);
        assert_eq!(shares.len(), 4);
        assert_budget_balanced(&shares, &bill);
        assert!(shares.iter().all(|&s| s >= Cost::ZERO));
    }

    #[test]
    fn equal_share_differs_only_by_energy() {
        let p = problem();
        let (members, charger, point, bill) = setup(&p, &[0, 1]);
        let shares = EqualShare.shares(&p, charger, &members, &point, &bill);
        let diff = shares[0] - shares[1];
        let energy_diff = bill.energy[0] - bill.energy[1];
        assert!((diff - energy_diff).abs() < Cost::new(1e-12));
    }

    #[test]
    fn proportional_share_tracks_demand() {
        let p = problem();
        let (members, charger, point, bill) = setup(&p, &[0, 1, 2]);
        let shares = ProportionalShare.shares(&p, charger, &members, &point, &bill);
        assert_budget_balanced(&shares, &bill);
        // Higher demand ⇒ strictly higher share (demands are a.s. distinct).
        for i in 0..3 {
            for j in 0..3 {
                let di = p.device(members[i]).demand();
                let dj = p.device(members[j]).demand();
                if di > dj {
                    assert!(shares[i] > shares[j]);
                }
            }
        }
    }

    #[test]
    fn shapley_share_is_budget_balanced() {
        let p = problem();
        let (members, charger, point, bill) = setup(&p, &[0, 1, 2, 4]);
        let shares = ShapleyShare.shares(&p, charger, &members, &point, &bill);
        assert_budget_balanced(&shares, &bill);
        assert!(shares.iter().all(|&s| s >= Cost::ZERO));
    }

    #[test]
    fn shapley_of_singleton_is_the_whole_bill() {
        let p = problem();
        let (members, charger, point, bill) = setup(&p, &[5]);
        let shares = ShapleyShare.shares(&p, charger, &members, &point, &bill);
        assert_eq!(shares.len(), 1);
        assert!((shares[0] - bill.total()).abs() < Cost::new(1e-9));
    }

    #[test]
    fn shapley_symmetric_members_pay_equally() {
        // Two members with identical demand and the same energy price are
        // symmetric in v, so their Shapley values coincide regardless of
        // position (the bill does not depend on member positions).
        let p = problem();
        let (members, charger, point, bill) = setup(&p, &[0, 1]);
        let shares = ShapleyShare.shares(&p, charger, &members, &point, &bill);
        // Symmetry holds up to the demand difference: re-derive via the
        // closed form for 2 players: φ_i = energy_i + group_level/2.
        let expected0 = bill.energy[0] + bill.group_level() / 2.0;
        let expected1 = bill.energy[1] + bill.group_level() / 2.0;
        assert!((shares[0] - expected0).abs() < Cost::new(1e-9));
        assert!((shares[1] - expected1).abs() < Cost::new(1e-9));
    }

    #[test]
    fn all_schemes_are_budget_balanced_on_random_groups() {
        let p = problem();
        for devs in [&[0u32, 1, 2][..], &[3, 4], &[0, 2, 4, 6, 7], &[5]] {
            let (members, charger, point, bill) = setup(&p, devs);
            for scheme in all_schemes() {
                let shares = scheme.shares(&p, charger, &members, &point, &bill);
                assert_eq!(shares.len(), members.len(), "{}", scheme.name());
                assert_budget_balanced(&shares, &bill);
            }
        }
    }

    #[test]
    #[should_panic(expected = "exact Shapley limited")]
    fn shapley_rejects_huge_groups() {
        let p = CcsProblem::new(ScenarioGenerator::new(1).devices(20).chargers(2).generate());
        let members: Vec<DeviceId> = (0..17).map(DeviceId::new).collect();
        let f = best_facility(&p, &members);
        let _ = ShapleyShare.shares(&p, f.charger, &members, &f.point, &f.bill);
    }
}
