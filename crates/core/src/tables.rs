//! The precomputed evaluation kernel: [`ProblemTables`].
//!
//! Every scheduler in this workspace funnels through the same two oracles —
//! `cost::evaluate_facility` (a bill at a fixed facility) and
//! `cost::best_facility` (a scan over chargers, each requiring a Weiszfeld
//! gathering-point solve). Both used to recompute geometry and price terms
//! from the entities on every call. `ProblemTables` hoists everything that
//! depends only on the *instance* into flat arrays, built once per
//! [`CcsProblem`] on first use:
//!
//! * **SoA factor columns** — `demand[i]`, `energy_price[j]`,
//!   `occupancy[j]`, `curve[k]`, `move_rate[i]`, `travel_rate[j]`, and the
//!   raw positions. The hot per-(charger, device) reads are products of two
//!   column entries (`π_j · w_i`, `η_j · g(k)`), bitwise identical to the
//!   direct entity computation but read from contiguous, cache-friendly
//!   vectors instead of an `m × n` matrix;
//! * `dist_dc[i][j]` / `dist_dd[i][i']` — device–charger and device–device
//!   distances, **densely cached only while they fit** (≤
//!   [`DENSE_DIST_LIMIT`] entries). Above the limit the accessors fall back
//!   to recomputing `hypot` from the stored positions — the same formula on
//!   the same inputs, hence the same bits — so a 10k-device instance does
//!   not allocate an 800 MB `n²` matrix;
//! * two [`UniformGrid`] spatial indexes (devices and chargers) powering
//!   ring-ordered candidate enumeration with geometric lower bounds in
//!   `cost::try_best_facility` and the CCSA candidate scan, plus the
//!   instance-wide rate/price floors those bounds need;
//! * a memo of gathering points keyed by flat `[charger, member ids…]`
//!   slices (probed allocation-free from thread-local scratch), so a
//!   coalition re-evaluated with the same membership (the common case in
//!   best-response scans) never re-runs Weiszfeld.
//!
//! The tables are **read-only shared state** (the gathering memo is a pure
//! function cache), so they cannot perturb determinism: every value read
//! from a table is bitwise the value the direct computation produces, which
//! `cost::group_bill_direct` and the `fastpath` proptests pin down.

use crate::gathering::gathering_point;
use crate::grid::UniformGrid;
use crate::problem::CcsProblem;
use ccs_coalition::fasthash::FastBuildHasher;
use ccs_wrsn::entities::{ChargerId, DeviceId};
use ccs_wrsn::geometry::Point;
use ccs_wrsn::scenario::Scenario;
use ccs_wrsn::units::{Cost, CostPerJoule, Joules};
use std::collections::HashMap;
use std::fmt;
use std::hash::BuildHasher;
use std::sync::Mutex;

/// Number of independently locked shards of the gathering-point memo.
const GATHER_SHARDS: usize = 16;

/// Largest entry count for which a distance matrix is cached densely.
/// 16 M `f64` entries = 128 MB; anything larger recomputes on the fly.
pub const DENSE_DIST_LIMIT: usize = 16_000_000;

/// One shard of the gathering-point memo: a flat `[charger, member ids…]`
/// key to the memoized point. The flat key lets the hit path probe with a
/// borrowed `&[u32]` built in thread-local scratch — no allocation at all;
/// an owned boxed key is only materialized alongside a miss's Weiszfeld
/// solve.
type GatherShard = Mutex<HashMap<Box<[u32]>, Point, FastBuildHasher>>;

/// One shard of the neighbor-order memo: `(device, limit)` to the nearest
/// device ids in ascending `(distance, id)` order.
type NeighborShard = Mutex<HashMap<(u32, u32), Box<[u32]>, FastBuildHasher>>;

/// Flat per-instance lookup tables for the CCS cost model.
pub struct ProblemTables {
    n: usize,
    m: usize,
    /// `κ_i` as raw values, indexed by device.
    move_rate: Vec<f64>,
    /// `τ_j` as raw values, indexed by charger.
    travel_rate: Vec<f64>,
    /// `w_i`, indexed by device.
    demand: Vec<Joules>,
    /// `π_j`, indexed by charger.
    energy_price: Vec<CostPerJoule>,
    /// `b_j`, indexed by charger.
    base_fee: Vec<Cost>,
    /// `η_j`, indexed by charger.
    occupancy: Vec<Cost>,
    /// `g(k)` for every `k ≤ n`.
    curve: Vec<f64>,
    /// `p_i`, indexed by device.
    device_pos: Vec<Point>,
    /// `q_j`, indexed by charger.
    charger_pos: Vec<Point>,
    /// `d(p_i, q_j)`, row-major by device (`dist_dc[i * m + j]`), cached
    /// only while `n · m <= DENSE_DIST_LIMIT`.
    dist_dc: Option<Vec<f64>>,
    /// `d(p_i, p_i')`, row-major (`dist_dd[i * n + i']`), cached only while
    /// `n² <= DENSE_DIST_LIMIT`.
    dist_dd: Option<Vec<f64>>,
    /// Spatial index over device positions.
    device_grid: UniformGrid,
    /// Spatial index over charger positions.
    charger_grid: UniformGrid,
    /// `min_j τ_j` (`0` when there are no chargers).
    min_travel_rate: f64,
    /// `min_i κ_i` (`0` when there are no devices).
    min_move_rate: f64,
    /// `min_j b_j` as a raw value.
    min_base_fee: f64,
    /// `min_j π_j` as a raw value.
    min_energy_price: f64,
    /// `min_j η_j` as a raw value.
    min_occupancy: f64,
    /// Gathering-point memo: `(charger, sorted member ids) -> point`.
    gather: Vec<GatherShard>,
    /// Spatial neighbor-order memo: `(device, limit) -> nearest device ids
    /// in ascending (distance, id) order`. Pure function of the instance,
    /// like the gathering memo, so memoization cannot perturb determinism;
    /// sharded by device id so parallel probes rarely contend.
    neighbors: Vec<NeighborShard>,
}

impl ProblemTables {
    /// Builds the tables for a scenario + cost parameters. Called once per
    /// problem via `CcsProblem::tables`; `O(n + m)` space for the factor
    /// columns plus the distance caches while they fit.
    pub(crate) fn new(
        scenario: &Scenario,
        curve: &ccs_submodular::set_fn::CardinalityCurve,
    ) -> Self {
        let devices = scenario.devices();
        let chargers = scenario.chargers();
        let (n, m) = (devices.len(), chargers.len());

        let move_rate: Vec<f64> = devices.iter().map(|d| d.move_cost_rate().value()).collect();
        let travel_rate: Vec<f64> = chargers
            .iter()
            .map(|c| c.travel_cost_rate().value())
            .collect();
        let demand: Vec<Joules> = devices.iter().map(|d| d.demand()).collect();
        let energy_price: Vec<CostPerJoule> = chargers.iter().map(|c| c.energy_price()).collect();
        let base_fee: Vec<Cost> = chargers.iter().map(|c| c.base_fee()).collect();
        let occupancy: Vec<Cost> = chargers.iter().map(|c| c.occupancy_rate()).collect();
        let curve: Vec<f64> = (0..=n).map(|k| curve.eval(k)).collect();
        let device_pos: Vec<Point> = devices.iter().map(|d| d.position()).collect();
        let charger_pos: Vec<Point> = chargers.iter().map(|c| c.position()).collect();

        let dist_dc = (n * m <= DENSE_DIST_LIMIT).then(|| {
            let mut dist = Vec::with_capacity(n * m);
            for p in &device_pos {
                for q in &charger_pos {
                    dist.push(p.distance_value(q));
                }
            }
            dist
        });
        let dist_dd = (n * n <= DENSE_DIST_LIMIT).then(|| {
            let mut dist = Vec::with_capacity(n * n);
            for p in &device_pos {
                for other in &device_pos {
                    dist.push(p.distance_value(other));
                }
            }
            dist
        });

        let fold_min = |values: &[f64]| values.iter().copied().fold(f64::INFINITY, f64::min);
        let finite = |v: f64| if v.is_finite() { v } else { 0.0 };

        ProblemTables {
            n,
            m,
            min_travel_rate: finite(fold_min(&travel_rate)),
            min_move_rate: finite(fold_min(&move_rate)),
            min_base_fee: finite(
                chargers
                    .iter()
                    .map(|c| c.base_fee().value())
                    .fold(f64::INFINITY, f64::min),
            ),
            min_energy_price: finite(
                energy_price
                    .iter()
                    .map(|p| p.value())
                    .fold(f64::INFINITY, f64::min),
            ),
            min_occupancy: finite(
                occupancy
                    .iter()
                    .map(|o| o.value())
                    .fold(f64::INFINITY, f64::min),
            ),
            move_rate,
            travel_rate,
            demand,
            energy_price,
            base_fee,
            occupancy,
            curve,
            device_grid: UniformGrid::build(&device_pos),
            charger_grid: UniformGrid::build(&charger_pos),
            device_pos,
            charger_pos,
            dist_dc,
            dist_dd,
            gather: (0..GATHER_SHARDS)
                .map(|_| Mutex::new(HashMap::default()))
                .collect(),
            neighbors: (0..GATHER_SHARDS)
                .map(|_| Mutex::new(HashMap::default()))
                .collect(),
        }
    }

    /// Ground-set size `n` the tables were built for.
    #[inline]
    pub fn num_devices(&self) -> usize {
        self.n
    }

    /// Number of chargers `m` the tables were built for.
    #[inline]
    pub fn num_chargers(&self) -> usize {
        self.m
    }

    /// The energy charge `π_j · w_i` — the product of the two factor
    /// columns, bitwise `device.demand() * charger.energy_price()`.
    #[inline]
    pub fn energy(&self, charger: ChargerId, device: DeviceId) -> Cost {
        self.demand[device.index()] * self.energy_price[charger.index()]
    }

    /// The base fee `b_j` — the charger column, bitwise
    /// `charger.base_fee()`.
    #[inline]
    pub fn base_fee(&self, charger: ChargerId) -> Cost {
        self.base_fee[charger.index()]
    }

    /// The energy price `π_j` — the charger column, bitwise
    /// `charger.energy_price()`.
    #[inline]
    pub fn energy_price(&self, charger: ChargerId) -> CostPerJoule {
        self.energy_price[charger.index()]
    }

    /// The congestion term `η_j · g(k)` for a group of size `k ≤ n`.
    #[inline]
    pub fn congestion(&self, charger: ChargerId, k: usize) -> Cost {
        self.occupancy[charger.index()] * self.curve[k]
    }

    /// Device–charger distance `d(p_i, q_j)`.
    #[inline]
    pub fn device_charger_distance(&self, device: DeviceId, charger: ChargerId) -> f64 {
        match &self.dist_dc {
            Some(dist) => dist[device.index() * self.m + charger.index()],
            None => {
                self.device_pos[device.index()].distance_value(&self.charger_pos[charger.index()])
            }
        }
    }

    /// Device–device distance `d(p_i, p_i')`.
    #[inline]
    pub fn device_distance(&self, a: DeviceId, b: DeviceId) -> f64 {
        match &self.dist_dd {
            Some(dist) => dist[a.index() * self.n + b.index()],
            None => self.device_pos[a.index()].distance_value(&self.device_pos[b.index()]),
        }
    }

    /// The device's movement cost rate `κ_i` as a raw value.
    #[inline]
    pub fn move_rate(&self, device: DeviceId) -> f64 {
        self.move_rate[device.index()]
    }

    /// The charger's travel cost rate `τ_j` as a raw value.
    #[inline]
    pub fn travel_rate(&self, charger: ChargerId) -> f64 {
        self.travel_rate[charger.index()]
    }

    /// The device's position `p_i`.
    #[inline]
    pub fn device_position(&self, device: DeviceId) -> Point {
        self.device_pos[device.index()]
    }

    /// The charger's position `q_j`.
    #[inline]
    pub fn charger_position(&self, charger: ChargerId) -> Point {
        self.charger_pos[charger.index()]
    }

    /// The spatial index over device positions.
    #[inline]
    pub fn device_grid(&self) -> &UniformGrid {
        &self.device_grid
    }

    /// The spatial index over charger positions.
    #[inline]
    pub fn charger_grid(&self) -> &UniformGrid {
        &self.charger_grid
    }

    /// `min_j τ_j`, the floor used by ring-ordered charger search.
    #[inline]
    pub fn min_travel_rate(&self) -> f64 {
        self.min_travel_rate
    }

    /// `min_i κ_i`, the floor used by the CCSA candidate-point bound.
    #[inline]
    pub fn min_move_rate(&self) -> f64 {
        self.min_move_rate
    }

    /// `min_j b_j` as a raw value.
    #[inline]
    pub fn min_base_fee(&self) -> f64 {
        self.min_base_fee
    }

    /// `min_j π_j` as a raw value.
    #[inline]
    pub fn min_energy_price(&self) -> f64 {
        self.min_energy_price
    }

    /// `min_j η_j` as a raw value.
    #[inline]
    pub fn min_occupancy(&self) -> f64 {
        self.min_occupancy
    }

    /// `g(k)` as a raw value (`k ≤ n`).
    #[inline]
    pub fn curve_value(&self, k: usize) -> f64 {
        self.curve[k]
    }

    /// `true` when the device–device distance matrix is densely cached
    /// (diagnostics; accessors behave identically either way).
    pub fn dense_distances(&self) -> bool {
        self.dist_dd.is_some()
    }

    /// The gathering point for `(charger, members)` under the problem's
    /// strategy, memoized. The memo is a pure-function cache — a hit returns
    /// bitwise the point a fresh [`gathering_point`] call would compute.
    pub fn cached_gathering_point(
        &self,
        problem: &CcsProblem,
        charger: ChargerId,
        members: &[DeviceId],
    ) -> Point {
        thread_local! {
            /// Scratch for the flat `[charger, member ids…]` probe key.
            static KEY: std::cell::RefCell<Vec<u32>> = const { std::cell::RefCell::new(Vec::new()) };
        }
        let (shard_idx, hit) = KEY.with(|cell| {
            let mut key = cell.borrow_mut();
            key.clear();
            key.push(charger.value());
            key.extend(members.iter().map(|d| d.value()));
            let shard_idx = FastBuildHasher::default().hash_one(&key[..]) as usize % GATHER_SHARDS;
            let hit = self.gather[shard_idx]
                .lock()
                .expect("gathering memo poisoned")
                .get(&key[..])
                .copied();
            (shard_idx, hit)
        });
        if let Some(point) = hit {
            ccs_telemetry::counter!("tables.gather_hits").incr();
            return point;
        }
        ccs_telemetry::counter!("tables.gather_misses").incr();
        let point = gathering_point(problem, charger, members, problem.params().gathering);
        let key: Box<[u32]> = std::iter::once(charger.value())
            .chain(members.iter().map(|d| d.value()))
            .collect();
        self.gather[shard_idx]
            .lock()
            .expect("gathering memo poisoned")
            .insert(key, point);
        point
    }

    /// Copies the memoized neighbor order for `(device, limit)` into
    /// `out`, returning whether there was a hit. See
    /// [`store_neighbor_order`](Self::store_neighbor_order).
    pub fn cached_neighbor_order(&self, device: u32, limit: u32, out: &mut Vec<usize>) -> bool {
        let shard = &self.neighbors[device as usize % GATHER_SHARDS];
        match shard
            .lock()
            .expect("neighbor memo poisoned")
            .get(&(device, limit))
        {
            Some(order) => {
                out.extend(order.iter().map(|&q| q as usize));
                true
            }
            None => false,
        }
    }

    /// Memoizes a neighbor order computed for `(device, limit)`. The order
    /// must be the pure spatial ranking the ccsga game computes — nearest
    /// devices by exact `(distance, id)` — so a later hit is bitwise the
    /// recomputation.
    pub fn store_neighbor_order(&self, device: u32, limit: u32, order: &[usize]) {
        let boxed: Box<[u32]> = order.iter().map(|&q| q as u32).collect();
        self.neighbors[device as usize % GATHER_SHARDS]
            .lock()
            .expect("neighbor memo poisoned")
            .insert((device, limit), boxed);
    }

    /// Number of memoized gathering points (for tests and diagnostics).
    pub fn gather_cache_len(&self) -> usize {
        self.gather
            .iter()
            .map(|s| s.lock().expect("gathering memo poisoned").len())
            .sum()
    }
}

impl fmt::Debug for ProblemTables {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProblemTables")
            .field("n", &self.n)
            .field("m", &self.m)
            .field("dense_distances", &self.dense_distances())
            .field("gather_cache_len", &self.gather_cache_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_wrsn::scenario::ScenarioGenerator;

    fn problem() -> CcsProblem {
        CcsProblem::new(ScenarioGenerator::new(11).devices(9).chargers(3).generate())
    }

    #[test]
    fn tables_match_direct_entity_computation() {
        let p = problem();
        let t = p.tables();
        for c in p.scenario().charger_ids() {
            let ch = p.charger(c);
            for d in p.scenario().device_ids() {
                let dev = p.device(d);
                assert_eq!(t.energy(c, d), dev.demand() * ch.energy_price());
                assert_eq!(
                    t.device_charger_distance(d, c).to_bits(),
                    dev.position().distance(&ch.position()).value().to_bits()
                );
            }
            for k in 0..=p.num_devices() {
                assert_eq!(
                    t.congestion(c, k),
                    ch.occupancy_rate() * p.params().congestion_curve.eval(k)
                );
            }
        }
    }

    #[test]
    fn rate_floors_match_entity_minima() {
        let p = problem();
        let t = p.tables();
        let min_tau = p
            .scenario()
            .chargers()
            .iter()
            .map(|c| c.travel_cost_rate().value())
            .fold(f64::INFINITY, f64::min);
        assert_eq!(t.min_travel_rate(), min_tau);
        let min_fee = p
            .scenario()
            .chargers()
            .iter()
            .map(|c| c.base_fee().value())
            .fold(f64::INFINITY, f64::min);
        assert_eq!(t.min_base_fee(), min_fee);
    }

    #[test]
    fn grids_cover_all_entities() {
        let p = problem();
        let t = p.tables();
        assert_eq!(t.device_grid().len(), p.num_devices());
        assert_eq!(t.charger_grid().len(), p.scenario().chargers().len());
    }

    #[test]
    fn gathering_memo_is_transparent() {
        let p = problem();
        let t = p.tables();
        let members: Vec<DeviceId> = [0u32, 2, 5].iter().map(|&i| DeviceId::new(i)).collect();
        let c = ChargerId::new(1);
        let fresh = gathering_point(&p, c, &members, p.params().gathering);
        let first = t.cached_gathering_point(&p, c, &members);
        let second = t.cached_gathering_point(&p, c, &members);
        assert_eq!(first, fresh);
        assert_eq!(second, fresh);
        assert_eq!(t.gather_cache_len(), 1);
    }

    #[test]
    fn clone_of_problem_shares_no_stale_state() {
        let p = problem();
        let _ = p.tables();
        let q = p.clone();
        // The clone either re-derives or shares the same immutable tables;
        // both must answer identically.
        assert_eq!(
            q.tables().energy(ChargerId::new(0), DeviceId::new(0)),
            p.tables().energy(ChargerId::new(0), DeviceId::new(0))
        );
    }
}
