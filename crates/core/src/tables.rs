//! The precomputed evaluation kernel: [`ProblemTables`].
//!
//! Every scheduler in this workspace funnels through the same two oracles —
//! `cost::evaluate_facility` (a bill at a fixed facility) and
//! `cost::best_facility` (a scan over chargers, each requiring a Weiszfeld
//! gathering-point solve). Both used to recompute geometry and price terms
//! from the entities on every call. `ProblemTables` hoists everything that
//! depends only on the *instance* into dense arrays, built once per
//! [`CcsProblem`] on first use:
//!
//! * `energy[j][i] = π_j · w_i` — the per-(charger, device) energy charge,
//!   bit-identical to `device.demand() * charger.energy_price()`;
//! * `congestion[j][k] = η_j · g(k)` for every `k ≤ n` — the concave
//!   congestion term as a lookup instead of a curve evaluation;
//! * `dist_dc[i][j]` / `dist_dd[i][i']` — device–charger and device–device
//!   distances, the geometry behind the charger-pruning lower bounds in
//!   `cost::try_best_facility`;
//! * a memo of gathering points keyed by `(charger, member set)`, so a
//!   coalition re-evaluated with the same membership (the common case in
//!   best-response scans) never re-runs Weiszfeld.
//!
//! The tables are **read-only shared state** (the gathering memo is a pure
//! function cache), so they cannot perturb determinism: every value read
//! from a table is bitwise the value the direct computation produces, which
//! `cost::group_bill_direct` and the `fastpath` proptests pin down.

use crate::gathering::gathering_point;
use crate::problem::CcsProblem;
use ccs_wrsn::entities::{ChargerId, DeviceId};
use ccs_wrsn::geometry::Point;
use ccs_wrsn::scenario::Scenario;
use ccs_wrsn::units::Cost;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// Number of independently locked shards of the gathering-point memo.
const GATHER_SHARDS: usize = 16;

/// One shard of the gathering-point memo: `(charger, sorted member ids)`
/// to the memoized point.
type GatherShard = Mutex<HashMap<(u32, Vec<u32>), Point>>;

/// Dense per-instance lookup tables for the CCS cost model.
pub struct ProblemTables {
    n: usize,
    m: usize,
    /// `κ_i` as raw values, indexed by device.
    move_rate: Vec<f64>,
    /// `τ_j` as raw values, indexed by charger.
    travel_rate: Vec<f64>,
    /// `π_j · w_i`, row-major by charger: `energy[j * n + i]`.
    energy: Vec<Cost>,
    /// `η_j · g(k)`, row-major by charger: `congestion[j * (n + 1) + k]`.
    congestion: Vec<Cost>,
    /// `d(p_i, q_j)`, row-major by device: `dist_dc[i * m + j]`.
    dist_dc: Vec<f64>,
    /// `d(p_i, p_i')`, row-major: `dist_dd[i * n + i']`.
    dist_dd: Vec<f64>,
    /// Gathering-point memo: `(charger, sorted member ids) -> point`.
    gather: Vec<GatherShard>,
}

impl ProblemTables {
    /// Builds the tables for a scenario + cost parameters. Called once per
    /// problem via `CcsProblem::tables`; `O(n·(n + m))` time and space.
    pub(crate) fn new(
        scenario: &Scenario,
        curve: &ccs_submodular::set_fn::CardinalityCurve,
    ) -> Self {
        let devices = scenario.devices();
        let chargers = scenario.chargers();
        let (n, m) = (devices.len(), chargers.len());

        let move_rate: Vec<f64> = devices.iter().map(|d| d.move_cost_rate().value()).collect();
        let travel_rate: Vec<f64> = chargers
            .iter()
            .map(|c| c.travel_cost_rate().value())
            .collect();

        let mut energy = Vec::with_capacity(m * n);
        let mut congestion = Vec::with_capacity(m * (n + 1));
        for c in chargers {
            for d in devices {
                energy.push(d.demand() * c.energy_price());
            }
            for k in 0..=n {
                congestion.push(c.occupancy_rate() * curve.eval(k));
            }
        }

        let mut dist_dc = Vec::with_capacity(n * m);
        let mut dist_dd = Vec::with_capacity(n * n);
        for d in devices {
            let p = d.position();
            for c in chargers {
                dist_dc.push(p.distance_value(&c.position()));
            }
            for other in devices {
                dist_dd.push(p.distance_value(&other.position()));
            }
        }

        ProblemTables {
            n,
            m,
            move_rate,
            travel_rate,
            energy,
            congestion,
            dist_dc,
            dist_dd,
            gather: (0..GATHER_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// Ground-set size `n` the tables were built for.
    #[inline]
    pub fn num_devices(&self) -> usize {
        self.n
    }

    /// The energy charge `π_j · w_i`.
    #[inline]
    pub fn energy(&self, charger: ChargerId, device: DeviceId) -> Cost {
        self.energy[charger.index() * self.n + device.index()]
    }

    /// The congestion term `η_j · g(k)` for a group of size `k ≤ n`.
    #[inline]
    pub fn congestion(&self, charger: ChargerId, k: usize) -> Cost {
        self.congestion[charger.index() * (self.n + 1) + k]
    }

    /// Device–charger distance `d(p_i, q_j)`.
    #[inline]
    pub fn device_charger_distance(&self, device: DeviceId, charger: ChargerId) -> f64 {
        self.dist_dc[device.index() * self.m + charger.index()]
    }

    /// Device–device distance `d(p_i, p_i')`.
    #[inline]
    pub fn device_distance(&self, a: DeviceId, b: DeviceId) -> f64 {
        self.dist_dd[a.index() * self.n + b.index()]
    }

    /// The device's movement cost rate `κ_i` as a raw value.
    #[inline]
    pub fn move_rate(&self, device: DeviceId) -> f64 {
        self.move_rate[device.index()]
    }

    /// The charger's travel cost rate `τ_j` as a raw value.
    #[inline]
    pub fn travel_rate(&self, charger: ChargerId) -> f64 {
        self.travel_rate[charger.index()]
    }

    /// The gathering point for `(charger, members)` under the problem's
    /// strategy, memoized. The memo is a pure-function cache — a hit returns
    /// bitwise the point a fresh [`gathering_point`] call would compute.
    pub fn cached_gathering_point(
        &self,
        problem: &CcsProblem,
        charger: ChargerId,
        members: &[DeviceId],
    ) -> Point {
        let key = (
            charger.value(),
            members.iter().map(|d| d.value()).collect::<Vec<u32>>(),
        );
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let shard = &self.gather[hasher.finish() as usize % GATHER_SHARDS];
        if let Some(point) = shard.lock().expect("gathering memo poisoned").get(&key) {
            ccs_telemetry::counter!("tables.gather_hits").incr();
            return *point;
        }
        ccs_telemetry::counter!("tables.gather_misses").incr();
        let point = gathering_point(problem, charger, members, problem.params().gathering);
        shard
            .lock()
            .expect("gathering memo poisoned")
            .insert(key, point);
        point
    }

    /// Number of memoized gathering points (for tests and diagnostics).
    pub fn gather_cache_len(&self) -> usize {
        self.gather
            .iter()
            .map(|s| s.lock().expect("gathering memo poisoned").len())
            .sum()
    }
}

impl fmt::Debug for ProblemTables {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProblemTables")
            .field("n", &self.n)
            .field("m", &self.m)
            .field("gather_cache_len", &self.gather_cache_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_wrsn::scenario::ScenarioGenerator;

    fn problem() -> CcsProblem {
        CcsProblem::new(ScenarioGenerator::new(11).devices(9).chargers(3).generate())
    }

    #[test]
    fn tables_match_direct_entity_computation() {
        let p = problem();
        let t = p.tables();
        for c in p.scenario().charger_ids() {
            let ch = p.charger(c);
            for d in p.scenario().device_ids() {
                let dev = p.device(d);
                assert_eq!(t.energy(c, d), dev.demand() * ch.energy_price());
                assert_eq!(
                    t.device_charger_distance(d, c).to_bits(),
                    dev.position().distance(&ch.position()).value().to_bits()
                );
            }
            for k in 0..=p.num_devices() {
                assert_eq!(
                    t.congestion(c, k),
                    ch.occupancy_rate() * p.params().congestion_curve.eval(k)
                );
            }
        }
    }

    #[test]
    fn gathering_memo_is_transparent() {
        let p = problem();
        let t = p.tables();
        let members: Vec<DeviceId> = [0u32, 2, 5].iter().map(|&i| DeviceId::new(i)).collect();
        let c = ChargerId::new(1);
        let fresh = gathering_point(&p, c, &members, p.params().gathering);
        let first = t.cached_gathering_point(&p, c, &members);
        let second = t.cached_gathering_point(&p, c, &members);
        assert_eq!(first, fresh);
        assert_eq!(second, fresh);
        assert_eq!(t.gather_cache_len(), 1);
    }

    #[test]
    fn clone_of_problem_shares_no_stale_state() {
        let p = problem();
        let _ = p.tables();
        let q = p.clone();
        // The clone either re-derives or shares the same immutable tables;
        // both must answer identically.
        assert_eq!(
            q.tables().energy(ChargerId::new(0), DeviceId::new(0)),
            p.tables().energy(ChargerId::new(0), DeviceId::new(0))
        );
    }
}
