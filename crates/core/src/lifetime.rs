//! Multi-round operation: charging as a *recurring* service.
//!
//! The paper schedules one round; a deployed WRSN buys charging again and
//! again as sensing drains batteries. This module drives that loop: each
//! round every device consumes a random amount of energy, devices whose
//! state of charge falls below a threshold request a refill, the chosen
//! scheduling policy plans the round, and batteries/ledgers are updated.
//! The cumulative comprehensive cost over a horizon is the *operating
//! expenditure* of the network — the quantity the `fig13_lifetime`
//! experiment compares across policies.
//!
//! Deaths (device-rounds spent at an empty battery) are also tracked:
//! with aggressive thresholds or heavy consumption, devices can brown out
//! before their next refill.

use crate::algo::{ccsa, ccsga, noncooperation, CcsaOptions, CcsgaOptions};
use crate::problem::{CcsProblem, CostParams};
use crate::schedule::Schedule;
use crate::sharing::CostSharing;
use ccs_wrsn::energy::{Battery, EnergyDemand};
use ccs_wrsn::entities::{Device, DeviceId};
use ccs_wrsn::scenario::{ParamRange, Scenario};
use ccs_wrsn::units::{Cost, Joules};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Which scheduler plans each round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Greedy + submodular minimization.
    Ccsa(CcsaOptions),
    /// Coalition-formation game.
    Ccsga(CcsgaOptions),
    /// Everyone hires alone.
    Noncooperative,
}

impl Policy {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Ccsa(_) => "ccsa",
            Policy::Ccsga(_) => "ccsga",
            Policy::Noncooperative => "ncp",
        }
    }

    /// Plans one round with this policy. The single dispatch point shared
    /// by the lifetime loop and the recovery engine, so "re-plan with the
    /// same algorithm" means exactly that.
    pub fn plan(&self, problem: &CcsProblem, sharing: &dyn CostSharing) -> Schedule {
        match self {
            Policy::Ccsa(options) => ccsa(problem, sharing, *options),
            Policy::Ccsga(options) => ccsga(problem, sharing, *options).schedule,
            Policy::Noncooperative => noncooperation(problem, sharing),
        }
    }
}

/// What one round's schedule actually delivered, as reported by a
/// [`LifetimeDriver`].
#[derive(Debug, Clone, PartialEq)]
pub struct RoundDelivery {
    /// Whether each *round-local* device (index into the round problem)
    /// received its energy.
    pub served: Vec<bool>,
    /// Realized total comprehensive cost of the round.
    pub total_cost: Cost,
    /// Charger hires actually made (recovery re-dispatches add hires).
    pub hires: usize,
}

/// Executes one planned round of the lifetime loop.
///
/// The default driver ([`PlannedDelivery`]) trusts the planner: every
/// scheduled device is served at the planned cost. A testbed-backed driver
/// replays the schedule under noise and hard failures (optionally with
/// closed-loop recovery) and reports what was *really* delivered; devices
/// it leaves unserved keep their depleted batteries and re-request in the
/// next round.
pub trait LifetimeDriver {
    /// Delivers `schedule` for `problem`, round index `round`.
    fn deliver(&mut self, problem: &CcsProblem, schedule: &Schedule, round: usize)
        -> RoundDelivery;
}

/// The planner-faithful driver: everything planned is delivered.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlannedDelivery;

impl LifetimeDriver for PlannedDelivery {
    fn deliver(
        &mut self,
        problem: &CcsProblem,
        schedule: &Schedule,
        _round: usize,
    ) -> RoundDelivery {
        RoundDelivery {
            served: vec![true; problem.num_devices()],
            total_cost: schedule.total_cost(),
            hires: schedule.groups().len(),
        }
    }
}

/// Configuration of a multi-round run.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeConfig {
    /// Number of rounds to simulate.
    pub rounds: usize,
    /// Per-device per-round energy consumption, sampled uniformly (Joules).
    pub consumption: ParamRange,
    /// Request a refill when state of charge falls below this fraction.
    pub refill_threshold: f64,
    /// Refill up to this state of charge.
    pub target_soc: f64,
    /// Seed of the consumption process (shared across policies so they face
    /// identical workloads).
    pub seed: u64,
}

impl Default for LifetimeConfig {
    fn default() -> Self {
        LifetimeConfig {
            rounds: 20,
            consumption: ParamRange::new(500.0, 1_500.0),
            refill_threshold: 0.3,
            target_soc: 0.9,
            seed: 0,
        }
    }
}

/// Outcome of a multi-round run.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeReport {
    /// Cumulative comprehensive cost over the horizon.
    pub total_cost: Cost,
    /// Cost of each round (zero for rounds with no requests).
    pub per_round_cost: Vec<Cost>,
    /// Number of charger hires over the horizon.
    pub hires: usize,
    /// Total energy purchased.
    pub energy_purchased: Joules,
    /// Device-rounds spent with an empty battery.
    pub dead_device_rounds: usize,
    /// Fraction of device-rounds with a non-empty battery, in `[0, 1]`.
    pub survival_rate: f64,
    /// Refill requests that went unserved (failure-aware drivers only;
    /// always zero under the planner-faithful default driver).
    pub unserved_requests: usize,
}

/// Runs the multi-round loop.
///
/// # Examples
///
/// ```
/// use ccs_core::prelude::*;
/// use ccs_wrsn::scenario::ScenarioGenerator;
///
/// let scenario = ScenarioGenerator::new(1).devices(8).chargers(3).generate();
/// let report = run_lifetime(
///     &scenario,
///     &CostParams::default(),
///     &EqualShare,
///     Policy::Ccsa(CcsaOptions::default()),
///     &LifetimeConfig { rounds: 5, ..Default::default() },
/// );
/// assert_eq!(report.per_round_cost.len(), 5);
/// assert!((0.0..=1.0).contains(&report.survival_rate));
/// ```
///
/// Each round: consume → collect refill requests → schedule the requesters
/// with `policy` → charge batteries and account costs. Rounds with no
/// requester cost nothing. The consumption sequence depends only on
/// `config.seed`, so different policies face identical workloads.
///
/// # Panics
///
/// Panics if `config` thresholds are not in `(0, 1]` with
/// `refill_threshold < target_soc`, or `config.rounds == 0`.
pub fn run_lifetime(
    scenario: &Scenario,
    params: &CostParams,
    sharing: &dyn CostSharing,
    policy: Policy,
    config: &LifetimeConfig,
) -> LifetimeReport {
    run_lifetime_with(
        scenario,
        params,
        sharing,
        policy,
        config,
        &mut PlannedDelivery,
    )
}

/// Runs the multi-round loop with an explicit [`LifetimeDriver`].
///
/// Same contract as [`run_lifetime`], but each planned round is handed to
/// `driver` for delivery: only the devices the driver reports as served get
/// their batteries refilled (and their demand counted as purchased energy),
/// and the round is accounted at the driver's *realized* cost. Unserved
/// requesters stay depleted and naturally re-request next round — the
/// lifetime-level recovery loop.
///
/// # Panics
///
/// Same as [`run_lifetime`].
pub fn run_lifetime_with(
    scenario: &Scenario,
    params: &CostParams,
    sharing: &dyn CostSharing,
    policy: Policy,
    config: &LifetimeConfig,
    driver: &mut dyn LifetimeDriver,
) -> LifetimeReport {
    assert!(config.rounds > 0, "need at least one round");
    assert!(
        config.refill_threshold > 0.0 && config.refill_threshold < config.target_soc,
        "refill threshold must be in (0, target)"
    );
    assert!(
        config.target_soc > 0.0 && config.target_soc <= 1.0,
        "target state of charge must be in (0, 1]"
    );

    let n = scenario.devices().len();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut batteries: Vec<Battery> = scenario.devices().iter().map(|d| *d.battery()).collect();

    let mut per_round_cost = Vec::with_capacity(config.rounds);
    let mut total_cost = Cost::ZERO;
    let mut hires = 0usize;
    let mut energy_purchased = Joules::ZERO;
    let mut dead_device_rounds = 0usize;
    let mut unserved_requests = 0usize;

    for round in 0..config.rounds {
        // 1. Consumption (dead devices stay dead but keep consuming nothing).
        for battery in batteries.iter_mut() {
            let draw = Joules::new(config.consumption.sample(&mut rng));
            let usable = draw.min(battery.level());
            battery
                .discharge(usable)
                .expect("usable is clamped to the level");
            if battery.is_empty() {
                dead_device_rounds += 1;
            }
        }

        // 2. Refill requests.
        let requesters: Vec<(DeviceId, Joules)> = scenario
            .device_ids()
            .filter_map(|d| {
                let b = &batteries[d.index()];
                if b.state_of_charge() < config.refill_threshold {
                    let demand = EnergyDemand::refill_to(b, config.target_soc);
                    (!demand.is_zero()).then_some((d, demand.amount()))
                } else {
                    None
                }
            })
            .collect();
        if requesters.is_empty() {
            per_round_cost.push(Cost::ZERO);
            continue;
        }

        // 3. Build the round's sub-problem over the requesters (ids must be
        // dense, so requesters are renumbered; `origin` maps back).
        let origin: Vec<DeviceId> = requesters.iter().map(|(d, _)| *d).collect();
        let round_devices: Vec<Device> = requesters
            .iter()
            .enumerate()
            .map(|(i, (d, demand))| {
                let dev = scenario.device(*d);
                Device::builder(DeviceId::new(i as u32), dev.position())
                    .battery(batteries[d.index()])
                    .demand(*demand)
                    .move_cost_rate(dev.move_cost_rate())
                    .speed(dev.speed())
                    .build()
            })
            .collect();
        let round_scenario = Scenario::new(
            scenario.field(),
            round_devices,
            scenario.chargers().to_vec(),
        )
        .expect("round scenario is valid by construction");
        let problem = CcsProblem::with_params(round_scenario, params.clone());

        // 4. Plan, deliver, account. The driver decides who was actually
        // served and what the round really cost; anyone left unserved keeps
        // a depleted battery and re-requests next round.
        let schedule = policy.plan(&problem, sharing);
        debug_assert!(schedule.validate(&problem).is_ok());
        let delivery = driver.deliver(&problem, &schedule, round);
        debug_assert_eq!(delivery.served.len(), problem.num_devices());
        let round_cost = delivery.total_cost;
        total_cost += round_cost;
        per_round_cost.push(round_cost);
        hires += delivery.hires;

        // 5. Deliver the energy to the served devices.
        for group in schedule.groups() {
            for &local in &group.members {
                if !delivery.served[local.index()] {
                    unserved_requests += 1;
                    continue;
                }
                let global = origin[local.index()];
                let demand = requesters
                    .iter()
                    .find(|(d, _)| *d == global)
                    .expect("member came from the requester list")
                    .1;
                let overflow = batteries[global.index()].charge(demand);
                energy_purchased += demand - overflow;
            }
        }
    }

    let device_rounds = n * config.rounds;
    LifetimeReport {
        total_cost,
        per_round_cost,
        hires,
        energy_purchased,
        dead_device_rounds,
        survival_rate: survival_rate(dead_device_rounds, device_rounds),
        unserved_requests,
    }
}

/// `1 - dead/total`, defined as full survival (`1.0`) when there are no
/// device-rounds at all — the degenerate denominator must not leak `NaN`
/// into a report field documented to lie in `[0, 1]`.
fn survival_rate(dead_device_rounds: usize, device_rounds: usize) -> f64 {
    if device_rounds == 0 {
        1.0
    } else {
        1.0 - dead_device_rounds as f64 / device_rounds as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharing::EqualShare;
    use ccs_wrsn::scenario::ScenarioGenerator;

    fn scenario() -> Scenario {
        ScenarioGenerator::new(4).devices(12).chargers(4).generate()
    }

    fn config(rounds: usize) -> LifetimeConfig {
        LifetimeConfig {
            rounds,
            ..Default::default()
        }
    }

    #[test]
    fn survival_rate_guards_the_zero_denominator() {
        assert_eq!(
            survival_rate(0, 0),
            1.0,
            "no device-rounds is full survival"
        );
        assert_eq!(survival_rate(0, 10), 1.0);
        assert_eq!(survival_rate(5, 10), 0.5);
        assert!(survival_rate(0, 0).is_finite(), "must never be NaN");
    }

    #[test]
    #[should_panic(expected = "need at least one round")]
    fn zero_rounds_is_rejected_by_config_validation() {
        let s = scenario();
        run_lifetime(
            &s,
            &CostParams::default(),
            &EqualShare,
            Policy::Ccsa(CcsaOptions::default()),
            &config(0),
        );
    }

    #[test]
    fn runs_the_full_horizon() {
        let s = scenario();
        let report = run_lifetime(
            &s,
            &CostParams::default(),
            &EqualShare,
            Policy::Ccsa(CcsaOptions::default()),
            &config(10),
        );
        assert_eq!(report.per_round_cost.len(), 10);
        assert!(report.total_cost > Cost::ZERO, "someone must need charging");
        assert!(report.hires > 0);
        assert!(report.energy_purchased > Joules::ZERO);
        assert!((0.0..=1.0).contains(&report.survival_rate));
        let sum: Cost = report.per_round_cost.iter().copied().sum();
        assert!((sum - report.total_cost).abs() < Cost::new(1e-9));
    }

    #[test]
    fn cooperative_policies_cost_less_over_the_horizon() {
        let s = scenario();
        let cfg = config(15);
        let params = CostParams::default();
        let ncp = run_lifetime(&s, &params, &EqualShare, Policy::Noncooperative, &cfg);
        let coop = run_lifetime(
            &s,
            &params,
            &EqualShare,
            Policy::Ccsa(CcsaOptions::default()),
            &cfg,
        );
        let game = run_lifetime(
            &s,
            &params,
            &EqualShare,
            Policy::Ccsga(CcsgaOptions::default()),
            &cfg,
        );
        assert!(
            coop.total_cost <= ncp.total_cost + Cost::new(1e-6),
            "ccsa {} vs ncp {}",
            coop.total_cost,
            ncp.total_cost
        );
        assert!(game.total_cost <= ncp.total_cost + Cost::new(1e-6));
        assert!(coop.hires <= ncp.hires, "cooperation amortizes hires");
    }

    #[test]
    fn identical_seeds_identical_workloads() {
        let s = scenario();
        let cfg = config(8);
        let params = CostParams::default();
        let a = run_lifetime(&s, &params, &EqualShare, Policy::Noncooperative, &cfg);
        let b = run_lifetime(&s, &params, &EqualShare, Policy::Noncooperative, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn heavy_consumption_causes_deaths() {
        let s = scenario();
        let cfg = LifetimeConfig {
            rounds: 10,
            // Consumption far above what one refill-to-90% can cover.
            consumption: ParamRange::new(6_000.0, 9_000.0),
            refill_threshold: 0.2,
            target_soc: 0.9,
            seed: 1,
        };
        let report = run_lifetime(
            &s,
            &CostParams::default(),
            &EqualShare,
            Policy::Ccsa(CcsaOptions::default()),
            &cfg,
        );
        assert!(report.dead_device_rounds > 0, "devices must brown out");
        assert!(report.survival_rate < 1.0);
    }

    #[test]
    fn light_consumption_keeps_everyone_alive_and_cheap() {
        let s = scenario();
        // Generated devices start between 20% and 80% state of charge, so a
        // 5% threshold plus trickle consumption never triggers a request.
        let cfg = LifetimeConfig {
            rounds: 5,
            consumption: ParamRange::new(10.0, 20.0),
            refill_threshold: 0.05,
            target_soc: 0.5,
            ..Default::default()
        };
        let report = run_lifetime(
            &s,
            &CostParams::default(),
            &EqualShare,
            Policy::Noncooperative,
            &cfg,
        );
        // Batteries start well above the threshold; trickle consumption
        // cannot pull anyone below it within 5 rounds.
        assert_eq!(report.total_cost, Cost::ZERO);
        assert_eq!(report.hires, 0);
        assert_eq!(report.survival_rate, 1.0);
    }

    #[test]
    fn failing_driver_leaves_requests_unserved_and_buys_nothing() {
        struct NothingDelivered;
        impl LifetimeDriver for NothingDelivered {
            fn deliver(
                &mut self,
                problem: &CcsProblem,
                _schedule: &Schedule,
                _round: usize,
            ) -> RoundDelivery {
                RoundDelivery {
                    served: vec![false; problem.num_devices()],
                    total_cost: Cost::ZERO,
                    hires: 0,
                }
            }
        }
        let s = scenario();
        let cfg = config(10);
        let params = CostParams::default();
        let report = run_lifetime_with(
            &s,
            &params,
            &EqualShare,
            Policy::Noncooperative,
            &cfg,
            &mut NothingDelivered,
        );
        assert!(report.unserved_requests > 0, "someone must have requested");
        assert_eq!(report.energy_purchased, Joules::ZERO);
        assert_eq!(report.total_cost, Cost::ZERO);
        assert_eq!(report.hires, 0);
        // Never refilled, so devices die more than under the faithful driver.
        let faithful = run_lifetime(&s, &params, &EqualShare, Policy::Noncooperative, &cfg);
        assert_eq!(faithful.unserved_requests, 0);
        assert!(report.dead_device_rounds >= faithful.dead_device_rounds);
    }

    #[test]
    #[should_panic(expected = "refill threshold must be in (0, target)")]
    fn rejects_inverted_thresholds() {
        let s = scenario();
        let cfg = LifetimeConfig {
            refill_threshold: 0.95,
            target_soc: 0.9,
            ..Default::default()
        };
        let _ = run_lifetime(
            &s,
            &CostParams::default(),
            &EqualShare,
            Policy::Noncooperative,
            &cfg,
        );
    }
}
