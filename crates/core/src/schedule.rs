//! Schedules: the output of every CCS algorithm.
//!
//! A [`Schedule`] partitions the devices into [`GroupPlan`]s, each with a
//! hired charger, a gathering point, the itemized bill, the member shares
//! under the active cost-sharing scheme, and per-member moving costs.
//! [`Schedule::validate`] re-checks the partition and budget-balance
//! invariants against the problem; algorithms call it in debug builds and
//! integration tests call it on every produced schedule.

use crate::cost::{moving_costs, FacilityChoice, GroupBill};
use crate::problem::CcsProblem;
use crate::sharing::CostSharing;
use ccs_wrsn::entities::{ChargerId, DeviceId};
use ccs_wrsn::geometry::Point;
use ccs_wrsn::units::Cost;
use std::fmt;

/// One group of a schedule.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct GroupPlan {
    /// The hired charger.
    pub charger: ChargerId,
    /// Where the group gathers.
    pub gathering_point: Point,
    /// The members, in ascending id order.
    pub members: Vec<DeviceId>,
    /// Itemized bill (energy entries aligned with `members`).
    pub bill: GroupBill,
    /// Bill shares per member (aligned with `members`).
    pub shares: Vec<Cost>,
    /// Moving cost per member (aligned with `members`).
    pub moving: Vec<Cost>,
}

impl GroupPlan {
    /// Builds a plan from a facility choice plus a sharing scheme.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or unsorted.
    pub fn from_facility(
        problem: &CcsProblem,
        members: Vec<DeviceId>,
        facility: FacilityChoice,
        sharing: &dyn CostSharing,
    ) -> Self {
        assert!(!members.is_empty(), "a group needs at least one member");
        assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "members must be sorted and distinct"
        );
        let shares = sharing.shares(
            problem,
            facility.charger,
            &members,
            &facility.point,
            &facility.bill,
        );
        GroupPlan {
            charger: facility.charger,
            gathering_point: facility.point,
            members,
            bill: facility.bill,
            shares,
            moving: facility.moving,
        }
    }

    /// Comprehensive cost of the member at local index `idx`.
    pub fn member_cost(&self, idx: usize) -> Cost {
        self.shares[idx] + self.moving[idx]
    }

    /// Group cost: bill total plus all moving costs.
    pub fn group_cost(&self) -> Cost {
        self.bill.total() + self.moving.iter().copied().sum::<Cost>()
    }
}

/// A complete schedule for one round.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Schedule {
    groups: Vec<GroupPlan>,
    algorithm: &'static str,
    sharing: &'static str,
}

/// Validation failure of a schedule against a problem.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// A device appears in no group or in more than one.
    NotAPartition {
        /// The offending device.
        device: DeviceId,
        /// How many groups it appeared in.
        occurrences: usize,
    },
    /// A group exceeds the configured size cap.
    GroupTooLarge {
        /// Index of the offending group.
        group: usize,
        /// Its size.
        size: usize,
    },
    /// A group's shares do not sum to its bill.
    NotBudgetBalanced {
        /// Index of the offending group.
        group: usize,
        /// |Σ shares − bill|.
        gap: Cost,
    },
    /// A gathering point lies outside the field.
    PointOutOfField {
        /// Index of the offending group.
        group: usize,
    },
    /// A group's total demand exceeds its charger's per-hire energy budget.
    ChargerOverBudget {
        /// Index of the offending group.
        group: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NotAPartition {
                device,
                occurrences,
            } => {
                write!(f, "device {device} scheduled {occurrences} times")
            }
            ScheduleError::GroupTooLarge { group, size } => {
                write!(f, "group {group} has {size} members, over the cap")
            }
            ScheduleError::NotBudgetBalanced { group, gap } => {
                write!(f, "group {group} shares miss the bill by {gap}")
            }
            ScheduleError::PointOutOfField { group } => {
                write!(f, "group {group} gathers outside the field")
            }
            ScheduleError::ChargerOverBudget { group } => {
                write!(f, "group {group} exceeds its charger's energy budget")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    /// Assembles a schedule.
    pub fn new(groups: Vec<GroupPlan>, algorithm: &'static str, sharing: &'static str) -> Self {
        Schedule {
            groups,
            algorithm,
            sharing,
        }
    }

    /// The groups.
    pub fn groups(&self) -> &[GroupPlan] {
        &self.groups
    }

    /// Name of the algorithm that produced this schedule.
    pub fn algorithm(&self) -> &'static str {
        self.algorithm
    }

    /// Name of the cost-sharing scheme in force.
    pub fn sharing(&self) -> &'static str {
        self.sharing
    }

    /// Total comprehensive cost over all devices (= total bills + total
    /// moving, by budget balance).
    pub fn total_cost(&self) -> Cost {
        self.groups.iter().map(|g| g.group_cost()).sum()
    }

    /// Average comprehensive cost per device, or `None` for an empty
    /// schedule (no groups, or only memberless groups).
    ///
    /// Long-running surfaces (the `ccs-serve` daemon, the experiment
    /// harness) call this form so a degenerate request yields a structured
    /// error instead of a process abort.
    pub fn try_average_cost(&self) -> Option<Cost> {
        let n: usize = self.groups.iter().map(|g| g.members.len()).sum();
        if n == 0 {
            return None;
        }
        Some(self.total_cost() / n as f64)
    }

    /// Average comprehensive cost per device.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty; see [`Schedule::try_average_cost`]
    /// for the fallible form.
    pub fn average_cost(&self) -> Cost {
        self.try_average_cost()
            .expect("empty schedule has no average")
    }

    /// Comprehensive cost of one device (share + own moving cost).
    ///
    /// Returns `None` if the device is not scheduled.
    pub fn device_cost(&self, device: DeviceId) -> Option<Cost> {
        for g in &self.groups {
            if let Ok(idx) = g.members.binary_search(&device) {
                return Some(g.member_cost(idx));
            }
        }
        None
    }

    /// Comprehensive cost of every device, indexed by `DeviceId::index()`.
    ///
    /// Unscheduled devices (invalid schedules only) get `Cost::ZERO`.
    pub fn device_costs(&self, n: usize) -> Vec<Cost> {
        let mut out = vec![Cost::ZERO; n];
        for g in &self.groups {
            for (idx, &d) in g.members.iter().enumerate() {
                out[d.index()] = g.member_cost(idx);
            }
        }
        out
    }

    /// Number of distinct chargers hired.
    pub fn chargers_used(&self) -> usize {
        let mut ids: Vec<ChargerId> = self.groups.iter().map(|g| g.charger).collect();
        ids.sort();
        ids.dedup();
        ids.len()
    }

    /// Checks the schedule against the problem's invariants.
    ///
    /// # Errors
    ///
    /// See [`ScheduleError`] — partition coverage, group-size cap, budget
    /// balance of every group's shares, and in-field gathering points.
    pub fn validate(&self, problem: &CcsProblem) -> Result<(), ScheduleError> {
        let n = problem.num_devices();
        let mut seen = vec![0usize; n];
        for (gi, g) in self.groups.iter().enumerate() {
            if !problem.group_size_ok(g.members.len()) {
                return Err(ScheduleError::GroupTooLarge {
                    group: gi,
                    size: g.members.len(),
                });
            }
            if !problem.scenario().field().contains(&g.gathering_point) {
                return Err(ScheduleError::PointOutOfField { group: gi });
            }
            if !problem.charger_can_serve(g.charger, &g.members) {
                return Err(ScheduleError::ChargerOverBudget { group: gi });
            }
            let share_sum: Cost = g.shares.iter().copied().sum();
            let gap = (share_sum - g.bill.total()).abs();
            if gap > Cost::new(1e-6) {
                return Err(ScheduleError::NotBudgetBalanced { group: gi, gap });
            }
            for &d in &g.members {
                seen[d.index()] += 1;
            }
        }
        for (i, &count) in seen.iter().enumerate() {
            if count != 1 {
                return Err(ScheduleError::NotAPartition {
                    device: DeviceId::new(i as u32),
                    occurrences: count,
                });
            }
        }
        Ok(())
    }

    /// Recomputes every member's moving cost from the problem (used by the
    /// testbed to diff planned vs realized costs).
    pub fn recompute_moving(&self, problem: &CcsProblem) -> Vec<Vec<Cost>> {
        self.groups
            .iter()
            .map(|g| moving_costs(problem, &g.members, &g.gathering_point))
            .collect()
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} schedule ({} sharing), {} groups, total cost {:.2}",
            self.algorithm,
            self.sharing,
            self.groups.len(),
            self.total_cost().value()
        )?;
        for (i, g) in self.groups.iter().enumerate() {
            write!(
                f,
                "  group {i}: charger {} at {} members [",
                g.charger, g.gathering_point
            )?;
            for (k, d) in g.members.iter().enumerate() {
                if k > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{d}")?;
            }
            writeln!(f, "] bill {:.2}", g.bill.total().value())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::best_facility;
    use crate::sharing::EqualShare;
    use ccs_wrsn::scenario::ScenarioGenerator;

    fn problem(n: usize) -> CcsProblem {
        CcsProblem::new(ScenarioGenerator::new(5).devices(n).chargers(3).generate())
    }

    fn plan(p: &CcsProblem, devs: &[u32]) -> GroupPlan {
        let members: Vec<DeviceId> = devs.iter().map(|&i| DeviceId::new(i)).collect();
        let f = best_facility(p, &members);
        GroupPlan::from_facility(p, members, f, &EqualShare)
    }

    #[test]
    fn valid_schedule_passes_validation() {
        let p = problem(5);
        let s = Schedule::new(
            vec![plan(&p, &[0, 1]), plan(&p, &[2]), plan(&p, &[3, 4])],
            "test",
            "equal",
        );
        s.validate(&p).unwrap();
        assert_eq!(s.groups().len(), 3);
        assert!(s.total_cost() > Cost::ZERO);
        assert!(s.average_cost() > Cost::ZERO);
        assert!(s.chargers_used() >= 1);
    }

    #[test]
    fn missing_device_fails_validation() {
        let p = problem(4);
        let s = Schedule::new(vec![plan(&p, &[0, 1]), plan(&p, &[2])], "test", "equal");
        assert_eq!(
            s.validate(&p).unwrap_err(),
            ScheduleError::NotAPartition {
                device: DeviceId::new(3),
                occurrences: 0
            }
        );
    }

    #[test]
    fn duplicated_device_fails_validation() {
        let p = problem(3);
        let s = Schedule::new(vec![plan(&p, &[0, 1]), plan(&p, &[1, 2])], "test", "equal");
        assert!(matches!(
            s.validate(&p).unwrap_err(),
            ScheduleError::NotAPartition { occurrences: 2, .. }
        ));
    }

    #[test]
    fn oversized_group_fails_validation() {
        let scenario = ScenarioGenerator::new(5).devices(4).chargers(2).generate();
        let p = CcsProblem::with_params(
            scenario,
            crate::problem::CostParams {
                max_group_size: Some(2),
                ..Default::default()
            },
        );
        let s = Schedule::new(vec![plan(&p, &[0, 1, 2]), plan(&p, &[3])], "test", "equal");
        assert!(matches!(
            s.validate(&p).unwrap_err(),
            ScheduleError::GroupTooLarge { size: 3, .. }
        ));
    }

    #[test]
    fn tampered_shares_fail_budget_balance() {
        let p = problem(2);
        let mut g = plan(&p, &[0, 1]);
        g.shares[0] += Cost::new(1.0);
        let s = Schedule::new(vec![g], "test", "equal");
        assert!(matches!(
            s.validate(&p).unwrap_err(),
            ScheduleError::NotBudgetBalanced { .. }
        ));
    }

    #[test]
    fn device_costs_align_with_member_costs() {
        let p = problem(4);
        let s = Schedule::new(vec![plan(&p, &[0, 2]), plan(&p, &[1, 3])], "test", "equal");
        let costs = s.device_costs(4);
        for i in 0..4u32 {
            assert_eq!(costs[i as usize], s.device_cost(DeviceId::new(i)).unwrap());
        }
        assert_eq!(s.device_cost(DeviceId::new(7)), None);
        // Totals agree.
        let total: Cost = costs.iter().copied().sum();
        assert!((total - s.total_cost()).abs() < Cost::new(1e-9));
    }

    #[test]
    fn display_mentions_algorithm_and_groups() {
        let p = problem(2);
        let s = Schedule::new(vec![plan(&p, &[0, 1])], "ccsa", "equal");
        let text = s.to_string();
        assert!(text.contains("ccsa"));
        assert!(text.contains("group 0"));
    }

    #[test]
    fn try_average_cost_handles_empty_schedules() {
        let p = problem(2);
        let s = Schedule::new(vec![plan(&p, &[0, 1])], "test", "equal");
        assert_eq!(s.try_average_cost(), Some(s.average_cost()));
        let empty = Schedule::new(Vec::new(), "test", "equal");
        assert_eq!(empty.try_average_cost(), None);
    }

    #[test]
    #[should_panic(expected = "empty schedule has no average")]
    fn average_cost_panics_on_empty_schedule() {
        let _ = Schedule::new(Vec::new(), "test", "equal").average_cost();
    }

    #[test]
    #[should_panic(expected = "sorted and distinct")]
    fn unsorted_members_panic() {
        let p = problem(3);
        let members = vec![DeviceId::new(2), DeviceId::new(0)];
        let f = best_facility(&p, &members);
        let _ = GroupPlan::from_facility(&p, members, f, &EqualShare);
    }
}
