//! Cooperative-game analysis of schedules: does the cost allocation
//! *sustain cooperation* in the formal sense?
//!
//! The paper motivates its cost-sharing schemes as the glue that keeps
//! devices cooperating. Game theory has two standard formalizations, both
//! checked here:
//!
//! * **individual rationality** — no device pays more than its solo cost
//!   ([`individual_rationality_violations`]);
//! * **core stability** — no *coalition* of devices (possibly spanning
//!   several scheduled groups) could defect together, hire its own best
//!   facility, and pay less in total than its members' current allocation
//!   ([`find_blocking_coalition`], exponential, guarded to small `n`).
//!
//! The `fig11_sharing` experiment uses the IR check; core stability is the
//! stronger notion exercised by `tests/` on small instances.

use crate::algo::noncoop::solo_cost;
use crate::cost::best_facility;
use crate::problem::CcsProblem;
use crate::schedule::Schedule;
use ccs_wrsn::entities::DeviceId;
use ccs_wrsn::units::Cost;

/// A coalition that would be better off defecting from the schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockingCoalition {
    /// The defectors, ascending.
    pub members: Vec<DeviceId>,
    /// What they currently pay in total under the schedule.
    pub current_total: Cost,
    /// What they would pay hiring their own best facility.
    pub defection_total: Cost,
}

impl BlockingCoalition {
    /// How much the defectors save, as a fraction of their current total.
    pub fn relative_gain(&self) -> f64 {
        1.0 - self.defection_total / self.current_total
    }
}

/// Devices whose scheduled comprehensive cost exceeds their solo cost by
/// more than `eps` (empty under the CCSA/CCSGA defaults — both enforce it).
pub fn individual_rationality_violations(
    problem: &CcsProblem,
    schedule: &Schedule,
    eps: Cost,
) -> Vec<DeviceId> {
    problem
        .scenario()
        .device_ids()
        .filter(|&d| match schedule.device_cost(d) {
            Some(cost) => cost > solo_cost(problem, d) + eps,
            None => true, // unscheduled counts as violated
        })
        .collect()
}

/// Largest instance [`find_blocking_coalition`] accepts (it enumerates all
/// `2^n` coalitions and prices each one).
pub const MAX_CORE_CHECK_DEVICES: usize = 16;

/// Searches for a blocking coalition: a nonempty device set `T` whose best
/// standalone facility costs strictly less (by `eps`) than what `T`'s
/// members currently pay under `schedule`. Returns the *most profitable*
/// blocking coalition, or `None` if the allocation is core-stable.
///
/// # Panics
///
/// Panics if the instance exceeds [`MAX_CORE_CHECK_DEVICES`] devices, or if
/// the schedule does not cover every device.
pub fn find_blocking_coalition(
    problem: &CcsProblem,
    schedule: &Schedule,
    eps: Cost,
) -> Option<BlockingCoalition> {
    let n = problem.num_devices();
    assert!(
        n <= MAX_CORE_CHECK_DEVICES,
        "core check is exponential; {n} devices exceeds the cap of {MAX_CORE_CHECK_DEVICES}"
    );
    let current: Vec<Cost> = problem
        .scenario()
        .device_ids()
        .map(|d| {
            schedule
                .device_cost(d)
                .expect("schedule must cover every device")
        })
        .collect();

    let mut best: Option<BlockingCoalition> = None;
    for mask in 1u32..(1 << n) {
        let members: Vec<DeviceId> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| DeviceId::new(i as u32))
            .collect();
        if !problem.group_size_ok(members.len()) {
            continue;
        }
        let current_total: Cost = members.iter().map(|d| current[d.index()]).sum();
        let defection_total = best_facility(problem, &members).group_cost();
        if defection_total < current_total - eps {
            let candidate = BlockingCoalition {
                members,
                current_total,
                defection_total,
            };
            let better = match &best {
                Some(b) => {
                    candidate.current_total - candidate.defection_total
                        > b.current_total - b.defection_total
                }
                None => true,
            };
            if better {
                best = Some(candidate);
            }
        }
    }
    best
}

/// Whether the schedule's allocation is core-stable (no blocking coalition).
///
/// # Panics
///
/// Same guards as [`find_blocking_coalition`].
pub fn is_core_stable(problem: &CcsProblem, schedule: &Schedule, eps: Cost) -> bool {
    find_blocking_coalition(problem, schedule, eps).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{ccsa, noncooperation, optimal, CcsaOptions, OptimalOptions};
    use crate::sharing::{all_schemes, EqualShare};
    use ccs_wrsn::scenario::ScenarioGenerator;

    fn problem(seed: u64, n: usize) -> CcsProblem {
        CcsProblem::new(
            ScenarioGenerator::new(seed)
                .devices(n)
                .chargers(3)
                .generate(),
        )
    }

    #[test]
    fn ccsa_has_no_ir_violations() {
        for seed in 1..=5 {
            let p = problem(seed, 10);
            let s = ccsa(&p, &EqualShare, CcsaOptions::default());
            assert!(
                individual_rationality_violations(&p, &s, Cost::new(1e-6)).is_empty(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn ncp_is_trivially_individually_rational() {
        let p = problem(2, 8);
        let s = noncooperation(&p, &EqualShare);
        assert!(individual_rationality_violations(&p, &s, Cost::new(1e-6)).is_empty());
    }

    #[test]
    fn ncp_is_usually_blocked_by_a_grand_coalition() {
        // Solo hiring leaves the whole fee amortization on the table, so
        // some coalition almost always blocks it.
        let mut blocked = 0;
        for seed in 1..=5 {
            let p = problem(seed, 8);
            let s = noncooperation(&p, &EqualShare);
            if let Some(b) = find_blocking_coalition(&p, &s, Cost::new(1e-6)) {
                blocked += 1;
                assert!(b.members.len() >= 2, "a singleton cannot block NCP");
                assert!(b.defection_total < b.current_total);
                assert!(b.relative_gain() > 0.0);
            }
        }
        assert!(blocked >= 4, "only {blocked}/5 NCP schedules were blocked");
    }

    #[test]
    fn optimal_allocations_have_small_blocking_gains() {
        // OPT minimizes total cost, so no coalition can gain more than the
        // sharing scheme's misallocation within groups; gains, when they
        // exist, are small relative to the allocation.
        for seed in 1..=3 {
            let p = problem(seed, 8);
            let s = optimal(&p, &EqualShare, OptimalOptions::default()).unwrap();
            if let Some(b) = find_blocking_coalition(&p, &s, Cost::new(1e-6)) {
                assert!(
                    b.relative_gain() < 0.5,
                    "seed {seed}: implausibly large blocking gain {:.2}",
                    b.relative_gain()
                );
            }
        }
    }

    #[test]
    fn core_stability_summary_across_schemes() {
        // At minimum the check must run for every scheme and agree with
        // find_blocking_coalition.
        let p = problem(7, 8);
        for scheme in all_schemes() {
            let s = ccsa(&p, scheme.as_ref(), CcsaOptions::default());
            let stable = is_core_stable(&p, &s, Cost::new(1e-6));
            assert_eq!(
                stable,
                find_blocking_coalition(&p, &s, Cost::new(1e-6)).is_none(),
                "{}",
                scheme.name()
            );
        }
    }

    #[test]
    #[should_panic(expected = "core check is exponential")]
    fn core_check_rejects_large_instances() {
        let p = problem(1, 20);
        let s = noncooperation(&p, &EqualShare);
        let _ = find_blocking_coalition(&p, &s, Cost::ZERO);
    }
}
