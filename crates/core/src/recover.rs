//! Closed-loop failure recovery: re-plan and re-serve what execution missed.
//!
//! Planning assumes the schedule will be delivered; real executions lose
//! devices to charger breakdowns and no-shows. This module closes that loop:
//! after a (possibly faulty) execution, the *residual problem* — unserved
//! devices with their still-owed demand, at wherever they physically ended
//! up — is re-planned with the **same** algorithm and cost-sharing scheme
//! and re-executed, up to a bounded number of recovery rounds. Stragglers
//! left when the budget is exhausted can be gracefully degraded to
//! non-cooperative solo charging (one dedicated dispatch each), trading
//! cost efficiency for guaranteed service.
//!
//! The engine is execution-agnostic: it talks to a [`RecoveryExecutor`]
//! (the testbed implements one over `execute_with_failures`), so `ccs-core`
//! stays free of simulator dependencies while the loop itself — residual
//! extraction, re-planning, merging, degradation — lives here and is shared
//! by every front end.

use crate::algo::noncooperation;
use crate::lifetime::Policy;
use crate::problem::CcsProblem;
use crate::schedule::Schedule;
use crate::sharing::CostSharing;
use ccs_wrsn::entities::{Device, DeviceId};
use ccs_wrsn::geometry::Point;
use ccs_wrsn::scenario::Scenario;
use ccs_wrsn::units::Cost;

/// Why a round was executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundMode {
    /// Round 0: the caller's original schedule on the full problem.
    Initial,
    /// A bounded re-plan of the residual problem with the same policy.
    Recovery,
    /// The final fallback: non-cooperative solo dispatches for stragglers.
    Degraded,
}

/// What one executed round delivered, as reported by a [`RecoveryExecutor`].
///
/// All vectors are indexed by the *round-local* device index (dense ids of
/// the round's problem), not the original scenario ids.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundExecution<O> {
    /// Whether each round-local device received its full demand.
    pub served: Vec<bool>,
    /// Realized comprehensive cost billed to each round-local device.
    pub device_costs: Vec<Cost>,
    /// Where each round-local device physically ended the round (unserved
    /// devices may have travelled part-way; the next round plans from here).
    pub end_positions: Vec<Point>,
    /// The executor's full native outcome (trace, makespan, ...).
    pub raw: O,
}

/// Executes one round's schedule and reports what was really delivered.
///
/// Implementations decide what "execution" means — the testbed replays under
/// noise and hard failures with seed `base_seed + round`, a mock in tests
/// scripts the failures. [`RoundMode::Degraded`] rounds are the guaranteed
/// fallback: executors should run them without stochastic failures
/// (dedicated, vetted dispatches) so degradation actually terminates.
pub trait RecoveryExecutor {
    /// The executor's native per-round outcome, kept verbatim in the
    /// [`RecoveryRound`] for inspection.
    type Outcome;

    /// Executes `schedule` for `problem` (round index `round`, counted from
    /// 0 = initial) and reports the delivery.
    fn execute(
        &mut self,
        problem: &CcsProblem,
        schedule: &Schedule,
        mode: RoundMode,
        round: usize,
    ) -> RoundExecution<Self::Outcome>;
}

/// Bounds of the recovery loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Maximum number of recovery rounds after the initial execution
    /// (0 disables re-planning entirely).
    pub max_rounds: usize,
    /// Whether stragglers still unserved after `max_rounds` get dedicated
    /// non-cooperative dispatches ([`RoundMode::Degraded`]).
    pub degrade: bool,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            max_rounds: 3,
            degrade: true,
        }
    }
}

/// One executed round of the recovery loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryRound<O> {
    /// Round index: 0 is the initial execution, 1.. are recovery rounds.
    pub round: usize,
    /// Why this round ran.
    pub mode: RoundMode,
    /// Original scenario ids of the round's devices: `devices[local]` is
    /// the original id of round-local device `local`.
    pub devices: Vec<DeviceId>,
    /// The schedule this round executed.
    pub schedule: Schedule,
    /// What the executor delivered.
    pub execution: RoundExecution<O>,
}

/// Merged outcome of an initial execution plus its recovery rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryOutcome<O> {
    /// Cumulative realized cost billed to each device (original ids) across
    /// every round it took part in.
    pub device_costs: Vec<Cost>,
    /// Whether each device (original ids) was ultimately served.
    pub served: Vec<bool>,
    /// Every executed round, in order; `rounds[0]` is the initial execution.
    pub rounds: Vec<RecoveryRound<O>>,
    /// Whether a [`RoundMode::Degraded`] fallback round ran.
    pub degraded: bool,
}

impl<O> RecoveryOutcome<O> {
    /// Fraction of devices ultimately served, in `[0, 1]`.
    pub fn served_fraction(&self) -> f64 {
        if self.served.is_empty() {
            return 1.0;
        }
        self.served.iter().filter(|s| **s).count() as f64 / self.served.len() as f64
    }

    /// Total realized cost across all rounds.
    pub fn total_cost(&self) -> Cost {
        self.device_costs.iter().copied().sum()
    }

    /// Number of extra rounds beyond the initial execution.
    pub fn recovery_rounds(&self) -> usize {
        self.rounds.len() - 1
    }
}

/// Builds the residual problem: `unserved[i]` (original ids) becomes dense
/// round-local device `i`, standing at `positions[i]`, still owing its full
/// original demand. Chargers, field, and cost parameters are unchanged.
///
/// Public because the online mode ([`crate::online`]) re-plans through
/// exactly this extraction on every event — the index of `unserved` *is*
/// the origin map back to the full problem.
pub fn residual_problem(
    problem: &CcsProblem,
    unserved: &[DeviceId],
    positions: &[Point],
) -> CcsProblem {
    debug_assert_eq!(unserved.len(), positions.len());
    let scenario = problem.scenario();
    let devices: Vec<Device> = unserved
        .iter()
        .zip(positions)
        .enumerate()
        .map(|(i, (&orig, &pos))| {
            let dev = scenario.device(orig);
            Device::builder(DeviceId::new(i as u32), pos)
                .battery(*dev.battery())
                .demand(dev.demand())
                .move_cost_rate(dev.move_cost_rate())
                .speed(dev.speed())
                .build()
        })
        .collect();
    let residual = Scenario::new(scenario.field(), devices, scenario.chargers().to_vec())
        .expect("residual devices are dense renumberings of valid devices");
    CcsProblem::with_params(residual, problem.params().clone())
}

/// Runs the closed recovery loop over an arbitrary [`RecoveryExecutor`].
///
/// Round 0 executes the caller's `initial` schedule on the full `problem`.
/// While devices remain unserved and the round budget allows, the residual
/// problem is re-planned with `policy` + `sharing` and re-executed; if
/// `config.degrade` is set, any stragglers after `config.max_rounds`
/// recovery rounds get one final non-cooperative round of dedicated
/// dispatches. Costs accumulate per device across every round it rode in.
///
/// With a failure-free executor the loop runs 0 extra rounds and the
/// outcome is exactly the initial execution.
///
/// # Panics
///
/// Panics if an executor report's vector lengths disagree with the round's
/// device count.
pub fn recover_with<E: RecoveryExecutor>(
    problem: &CcsProblem,
    initial: &Schedule,
    policy: Policy,
    sharing: &dyn CostSharing,
    executor: &mut E,
    config: &RecoveryConfig,
) -> RecoveryOutcome<E::Outcome> {
    let _span = ccs_telemetry::span!("recover");
    let n = problem.num_devices();
    let mut device_costs = vec![Cost::ZERO; n];
    let mut served = vec![false; n];
    let mut rounds = Vec::new();
    let mut degraded = false;

    // Round 0: the original schedule, full problem, identity id map.
    let mut round_devices: Vec<DeviceId> = problem.scenario().device_ids().collect();
    let mut round_problem;
    let mut current: (&CcsProblem, Schedule) = (problem, initial.clone());
    let mut round = 0usize;

    loop {
        let (prob, schedule) = (current.0, current.1);
        let mode = if round == 0 {
            RoundMode::Initial
        } else if degraded {
            RoundMode::Degraded
        } else {
            RoundMode::Recovery
        };
        let execution = executor.execute(prob, &schedule, mode, round);
        assert_eq!(execution.served.len(), round_devices.len());
        assert_eq!(execution.device_costs.len(), round_devices.len());
        assert_eq!(execution.end_positions.len(), round_devices.len());
        ccs_telemetry::counter!("recover.rounds").add(1);

        // Merge into the original-id ledgers.
        for (local, &orig) in round_devices.iter().enumerate() {
            device_costs[orig.index()] += execution.device_costs[local];
            if execution.served[local] {
                served[orig.index()] = true;
            }
        }
        let residual: Vec<(DeviceId, Point)> = round_devices
            .iter()
            .enumerate()
            .filter(|(local, _)| !execution.served[*local])
            .map(|(local, &orig)| (orig, execution.end_positions[local]))
            .collect();
        rounds.push(RecoveryRound {
            round,
            mode,
            devices: std::mem::take(&mut round_devices),
            schedule,
            execution,
        });

        if residual.is_empty() || mode == RoundMode::Degraded {
            break;
        }
        ccs_telemetry::counter!("recover.residual_devices").add(residual.len() as u64);
        round += 1;

        // Build and plan the next round.
        let (ids, positions): (Vec<DeviceId>, Vec<Point>) = residual.into_iter().unzip();
        if round > config.max_rounds {
            if !config.degrade {
                break;
            }
            // Fallback: dedicated solo dispatches for the stragglers.
            degraded = true;
            ccs_telemetry::counter!("recover.degraded_devices").add(ids.len() as u64);
        }
        round_problem = residual_problem(problem, &ids, &positions);
        let next_schedule = if degraded {
            noncooperation(&round_problem, sharing)
        } else {
            policy.plan(&round_problem, sharing)
        };
        debug_assert!(next_schedule.validate(&round_problem).is_ok());
        round_devices = ids;
        current = (&round_problem, next_schedule);
    }

    RecoveryOutcome {
        device_costs,
        served,
        rounds,
        degraded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{ccsa, CcsaOptions};
    use crate::sharing::EqualShare;
    use ccs_wrsn::scenario::ScenarioGenerator;

    /// Scripted executor: `succeeds_at[d]` (original ids) is the first round
    /// index at which device `d` gets served; Degraded rounds always serve.
    /// Costs come from the round's schedule; nobody moves. Relies on the
    /// engine keeping residuals in ascending original-id order.
    struct Scripted {
        succeeds_at: Vec<usize>,
    }

    impl Scripted {
        fn new(succeeds_at: Vec<usize>) -> Self {
            Scripted { succeeds_at }
        }
    }

    impl RecoveryExecutor for Scripted {
        type Outcome = ();

        fn execute(
            &mut self,
            problem: &CcsProblem,
            schedule: &Schedule,
            mode: RoundMode,
            round: usize,
        ) -> RoundExecution<()> {
            let n = problem.num_devices();
            // Present in round r: failed every round before r.
            let present: Vec<usize> = self
                .succeeds_at
                .iter()
                .enumerate()
                .filter(|(_, &s)| s >= round)
                .map(|(d, _)| d)
                .collect();
            assert_eq!(present.len(), n, "mock presence must match the residual");
            let served = present
                .iter()
                .map(|&d| mode == RoundMode::Degraded || self.succeeds_at[d] <= round)
                .collect();
            let end_positions = (0..n)
                .map(|i| problem.device(DeviceId::new(i as u32)).position())
                .collect();
            RoundExecution {
                served,
                device_costs: schedule.device_costs(n),
                end_positions,
                raw: (),
            }
        }
    }

    fn setup() -> (CcsProblem, Schedule) {
        let scenario = ScenarioGenerator::new(7).devices(8).chargers(4).generate();
        let problem = CcsProblem::new(scenario);
        let schedule = ccsa(&problem, &EqualShare, CcsaOptions::default());
        (problem, schedule)
    }

    #[test]
    fn failure_free_execution_runs_zero_extra_rounds() {
        let (problem, schedule) = setup();
        let mut exec = Scripted::new(vec![0; 8]);
        let out = recover_with(
            &problem,
            &schedule,
            Policy::Ccsa(CcsaOptions::default()),
            &EqualShare,
            &mut exec,
            &RecoveryConfig::default(),
        );
        assert_eq!(out.recovery_rounds(), 0);
        assert_eq!(out.rounds.len(), 1);
        assert_eq!(out.rounds[0].mode, RoundMode::Initial);
        assert!(!out.degraded);
        assert_eq!(out.served_fraction(), 1.0);
        // Costs are exactly the schedule's per-device costs.
        assert_eq!(out.device_costs, schedule.device_costs(8));
        assert!((out.total_cost() - schedule.total_cost()).abs() < Cost::new(1e-9));
    }

    #[test]
    fn one_round_of_failures_recovers_everyone() {
        let (problem, schedule) = setup();
        // Devices 2 and 5 fail round 0, succeed at round 1.
        let mut script = vec![0; 8];
        script[2] = 1;
        script[5] = 1;
        let mut exec = Scripted::new(script);
        let out = recover_with(
            &problem,
            &schedule,
            Policy::Ccsa(CcsaOptions::default()),
            &EqualShare,
            &mut exec,
            &RecoveryConfig::default(),
        );
        assert_eq!(out.recovery_rounds(), 1);
        assert_eq!(out.rounds[1].mode, RoundMode::Recovery);
        assert_eq!(
            out.rounds[1].devices,
            vec![DeviceId::new(2), DeviceId::new(5)]
        );
        assert!(!out.degraded);
        assert_eq!(out.served_fraction(), 1.0);
        // Recovered devices carry costs from both rounds they rode in.
        let base = schedule.device_costs(8);
        assert!(out.device_costs[2] >= base[2]);
        assert!(out.total_cost() >= schedule.total_cost());
    }

    #[test]
    fn persistent_failures_degrade_to_solo_dispatches() {
        let (problem, schedule) = setup();
        // Device 3 never succeeds within the budget.
        let mut script = vec![0; 8];
        script[3] = usize::MAX;
        let mut exec = Scripted::new(script);
        let config = RecoveryConfig {
            max_rounds: 2,
            degrade: true,
        };
        let out = recover_with(
            &problem,
            &schedule,
            Policy::Ccsa(CcsaOptions::default()),
            &EqualShare,
            &mut exec,
            &config,
        );
        assert!(out.degraded);
        assert_eq!(out.served_fraction(), 1.0, "degradation guarantees service");
        let last = out.rounds.last().unwrap();
        assert_eq!(last.mode, RoundMode::Degraded);
        assert_eq!(last.schedule.algorithm(), "ncp");
        // Rounds: initial + max_rounds recoveries + 1 degraded.
        assert_eq!(out.rounds.len(), 1 + config.max_rounds + 1);
    }

    #[test]
    fn without_degradation_stragglers_stay_unserved() {
        let (problem, schedule) = setup();
        let mut script = vec![0; 8];
        script[3] = usize::MAX;
        let mut exec = Scripted::new(script);
        let config = RecoveryConfig {
            max_rounds: 2,
            degrade: false,
        };
        let out = recover_with(
            &problem,
            &schedule,
            Policy::Ccsa(CcsaOptions::default()),
            &EqualShare,
            &mut exec,
            &config,
        );
        assert!(!out.degraded);
        assert!(out.served_fraction() < 1.0);
        assert!(!out.served[3]);
        assert_eq!(out.rounds.len(), 1 + config.max_rounds);
    }

    #[test]
    fn residual_problem_keeps_demand_and_renumbers_densely() {
        let (problem, _) = setup();
        let unserved = vec![DeviceId::new(6), DeviceId::new(1)];
        let positions = vec![Point::new(10.0, 10.0), Point::new(20.0, 5.0)];
        let residual = residual_problem(&problem, &unserved, &positions);
        assert_eq!(residual.num_devices(), 2);
        assert_eq!(residual.num_chargers(), problem.num_chargers());
        assert_eq!(
            residual.device(DeviceId::new(0)).demand(),
            problem.device(DeviceId::new(6)).demand()
        );
        assert_eq!(residual.device(DeviceId::new(0)).position(), positions[0]);
        assert_eq!(
            residual.device(DeviceId::new(1)).demand(),
            problem.device(DeviceId::new(1)).demand()
        );
    }
}
